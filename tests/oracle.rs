//! Engine correctness against an in-memory oracle.
//!
//! Every engine (PinK, AnyKey, AnyKey+, AnyKey−) is driven with the same
//! randomized stream of PUT/GET/DELETE/SCAN operations while a `BTreeMap`
//! tracks logical truth; every GET's found/not-found outcome and every
//! SCAN's returned key list must match the oracle exactly.

use std::collections::BTreeMap;

use anykey::core::{DeviceConfig, EngineKind, KvEngine};
use anykey::workload::SplitMix64;

fn small_device(kind: EngineKind) -> Box<dyn KvEngine> {
    DeviceConfig::builder()
        .capacity_bytes(16 << 20)
        .page_size(8 << 10)
        .pages_per_block(16)
        .group_pages(8)
        .engine(kind)
        .key_len(20)
        .build()
        .build_engine()
}

fn drive_against_oracle(kind: EngineKind, seed: u64, n_ops: usize) {
    let mut dev = small_device(kind);
    let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();
    let mut rng = SplitMix64::new(seed);
    let keyspace = 4_000u64;

    for i in 0..n_ops {
        let key = rng.next_bounded(keyspace);
        match rng.next_bounded(10) {
            0..=2 => {
                // PUT with a size in 20..=120 bytes.
                let len = 20 + rng.next_bounded(100) as u32;
                dev.put(key, len)
                    .unwrap_or_else(|e| panic!("{kind} put: {e}"));
                oracle.insert(key, len);
            }
            3 => {
                dev.delete(key)
                    .unwrap_or_else(|e| panic!("{kind} delete: {e}"));
                oracle.remove(&key);
            }
            4 if i % 10 == 4 => {
                // SCAN of up to 20 keys.
                let len = 1 + rng.next_bounded(20) as u32;
                let at = dev.horizon();
                let (got, outcome) = dev.scan_keys(key, len, at);
                let want: Vec<u64> = oracle
                    .range(key..)
                    .take(len as usize)
                    .map(|(&k, _)| k)
                    .collect();
                assert_eq!(
                    got, want,
                    "{kind} scan from {key} x{len} diverged at op {i}"
                );
                assert_eq!(outcome.found, !want.is_empty());
            }
            _ => {
                let got = dev.get(key);
                assert_eq!(
                    got.found,
                    oracle.contains_key(&key),
                    "{kind} get({key}) diverged at op {i}"
                );
            }
        }
    }

    // Final sweep: every live key is found, a sample of dead keys is not.
    for (&k, _) in oracle.iter().step_by(7) {
        assert!(dev.get(k).found, "{kind} lost key {k}");
    }
    for k in (0..keyspace).step_by(11) {
        if !oracle.contains_key(&k) {
            assert!(!dev.get(k).found, "{kind} resurrected key {k}");
        }
    }
    dev.check_invariants()
        .unwrap_or_else(|e| panic!("{kind} audit after {n_ops} ops: {e}"));
}

#[test]
fn pink_matches_oracle() {
    drive_against_oracle(EngineKind::Pink, 0xA11CE, 30_000);
}

#[test]
fn anykey_matches_oracle() {
    drive_against_oracle(EngineKind::AnyKey, 0xB0B, 30_000);
}

#[test]
fn anykey_plus_matches_oracle() {
    drive_against_oracle(EngineKind::AnyKeyPlus, 0xCAFE, 30_000);
}

#[test]
fn anykey_no_log_matches_oracle() {
    drive_against_oracle(EngineKind::AnyKeyNoLog, 0xD00D, 30_000);
}

#[test]
fn engines_agree_with_each_other() {
    // All four engines observe the same logical state under one stream.
    let kinds = [
        EngineKind::Pink,
        EngineKind::AnyKey,
        EngineKind::AnyKeyPlus,
        EngineKind::AnyKeyNoLog,
    ];
    let mut devs: Vec<_> = kinds.iter().map(|&k| small_device(k)).collect();
    let mut rng = SplitMix64::new(42);
    for _ in 0..5_000 {
        let key = rng.next_bounded(1_000);
        if rng.next_bounded(4) == 0 {
            for d in &mut devs {
                d.put(key, 64).unwrap();
            }
        } else {
            let answers: Vec<bool> = devs.iter_mut().map(|d| d.get(key).found).collect();
            assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "engines disagree on key {key}: {answers:?}"
            );
        }
    }
}
