//! System-level invariants from the paper's design claims.

use anykey::core::{warm_up, DeviceConfig, EngineKind, KvEngine};
use anykey::flash::OpCause;
use anykey::workload::{spec, WorkloadSpec};

fn device(kind: EngineKind, key_len: u16, capacity: u64) -> Box<dyn KvEngine> {
    DeviceConfig::builder()
        .capacity_bytes(capacity)
        .page_size(8 << 10)
        .pages_per_block(32)
        .engine(kind)
        .key_len(key_len)
        .build()
        .build_engine()
}

fn fill(dev: &mut dyn KvEngine, spec: WorkloadSpec, keyspace: u64) {
    warm_up(dev, spec, keyspace, 5).expect("fill");
}

/// AnyKey's core claim: level lists always fit DRAM, whatever the key
/// size (paper Section 4.5 / Table 1).
#[test]
fn anykey_level_lists_stay_dram_resident_under_low_vk() {
    let w = spec::by_name("Crypto1").unwrap(); // 76B keys > 50B values
    let mut dev = device(EngineKind::AnyKey, w.key_len as u16, 64 << 20);
    fill(dev.as_mut(), w, (24 << 20) / w.pair_bytes());
    let m = dev.metadata();
    assert!(m.level_list_bytes > 0);
    assert_eq!(
        m.level_list_flash_bytes, 0,
        "AnyKey level lists must never spill to flash"
    );
    assert!(m.dram_used <= m.dram_capacity);
}

/// PinK's pathology: under low-v/k the per-pair metadata cannot fit DRAM
/// and spills to flash (paper Section 3).
#[test]
fn pink_metadata_spills_under_low_vk() {
    let w = spec::by_name("Crypto1").unwrap();
    let mut dev = device(EngineKind::Pink, w.key_len as u16, 64 << 20);
    fill(dev.as_mut(), w, (24 << 20) / w.pair_bytes());
    let m = dev.metadata();
    assert!(
        m.meta_segment_flash_bytes > 10 * m.dram_capacity,
        "PinK's meta segments should dwarf DRAM under low-v/k (flash {} vs DRAM {})",
        m.meta_segment_flash_bytes,
        m.dram_capacity
    );
}

/// Figure 11b: AnyKey answers (almost) every GET with at most 2 flash
/// reads plus rare collision/span extras; PinK needs several under
/// low-v/k.
#[test]
fn anykey_needs_fewer_flash_reads_per_get_than_pink() {
    let w = spec::by_name("ZippyDB").unwrap();
    let keyspace = (24 << 20) / w.pair_bytes();
    let mut means = Vec::new();
    for kind in [EngineKind::Pink, EngineKind::AnyKeyPlus] {
        let mut dev = device(kind, w.key_len as u16, 64 << 20);
        fill(dev.as_mut(), w, keyspace);
        let ops = anykey::workload::OpStreamBuilder::new(w, keyspace)
            .write_ratio(0.2)
            .seed(9)
            .build();
        let report = anykey::core::run(dev.as_mut(), ops, 50_000, 64).unwrap();
        means.push(report.mean_reads_per_get());
    }
    assert!(
        means[1] < means[0],
        "AnyKey+ mean reads/GET {} must beat PinK {}",
        means[1],
        means[0]
    );
    assert!(means[1] < 3.0, "AnyKey+ should average <3 reads/GET");
}

/// Table 3's GC column: AnyKey's whole-group invalidation means victim
/// blocks are erased without relocation traffic, while PinK reads victim
/// blocks wholesale.
#[test]
fn anykey_gc_traffic_is_negligible() {
    let w = spec::by_name("Cache15").unwrap();
    let keyspace = (22 << 20) / w.pair_bytes();
    let mut dev = device(EngineKind::AnyKeyPlus, w.key_len as u16, 64 << 20);
    fill(dev.as_mut(), w, keyspace);
    let ops = anykey::workload::OpStreamBuilder::new(w, keyspace)
        .write_ratio(0.3)
        .seed(17)
        .build();
    let report = anykey::core::run(dev.as_mut(), ops, 100_000, 64).unwrap();
    let gc = report.counters.reads(OpCause::GcRead) + report.counters.writes(OpCause::GcWrite);
    let compaction = report.counters.writes(OpCause::CompactionWrite).max(1);
    assert!(
        gc < compaction / 2,
        "AnyKey GC traffic ({gc}) should be small next to compaction ({compaction})"
    );
}

/// Unique-byte accounting is exact: what warm-up inserts is what the
/// engine reports live.
#[test]
fn live_unique_bytes_match_inserted_data() {
    let w = spec::by_name("Dedup").unwrap();
    let keyspace = 50_000u64;
    for kind in [EngineKind::Pink, EngineKind::AnyKeyPlus] {
        let mut dev = device(kind, w.key_len as u16, 64 << 20);
        fill(dev.as_mut(), w, keyspace);
        assert_eq!(dev.metadata().live_unique_bytes, keyspace * w.pair_bytes());
    }
}

/// Virtual time is monotone through a workload: completion never precedes
/// issue, and horizons only grow.
#[test]
fn virtual_time_is_monotone() {
    let mut dev = device(EngineKind::AnyKey, 20, 16 << 20);
    let mut horizon = 0;
    for id in 0..20_000u64 {
        let out = dev.put(id, 60).unwrap();
        assert!(out.done_at >= out.issued_at);
        let h = dev.horizon();
        assert!(h >= horizon, "horizon moved backwards");
        horizon = h;
    }
}

/// The Figure 14 mechanism at test scale: AnyKey+ fits more unique data
/// than PinK before reporting full on a low-v/k workload.
#[test]
fn anykey_fits_more_unique_data_than_pink() {
    let w = spec::by_name("RTDATA").unwrap(); // worst case for PinK: 24B/10B
    let mut fits = Vec::new();
    for kind in [EngineKind::Pink, EngineKind::AnyKeyPlus] {
        let mut dev = device(kind, w.key_len as u16, 64 << 20);
        let mut inserted = 0u64;
        for op in anykey::workload::ops::fill_ops(w, (256 << 20) / w.pair_bytes(), 3) {
            let at = dev.horizon();
            match dev.execute(&op, at) {
                Ok(_) => inserted += 1,
                Err(_) => break,
            }
        }
        fits.push(inserted);
    }
    assert!(
        fits[1] > fits[0],
        "AnyKey+ ({}) must fit more pairs than PinK ({})",
        fits[1],
        fits[0]
    );
}
