//! Property-based tests (proptest) on core invariants.

use std::collections::BTreeMap;

use anykey::core::{hash::xxhash32, DeviceConfig, EngineKind, KvEngine};
use anykey::metrics::LatencyHist;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u8),
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u16>(), 1u8..=200).prop_map(|(k, v)| Action::Put(k % 800, v)),
        any::<u16>().prop_map(|k| Action::Delete(k % 800)),
        any::<u16>().prop_map(|k| Action::Get(k % 800)),
        (any::<u16>(), 1u8..=12).prop_map(|(k, n)| Action::Scan(k % 800, n)),
    ]
}

fn tiny_device(kind: EngineKind) -> Box<dyn KvEngine> {
    DeviceConfig::builder()
        .capacity_bytes(8 << 20)
        .page_size(8 << 10)
        .pages_per_block(16)
        .group_pages(8)
        .engine(kind)
        .key_len(16)
        .build()
        .build_engine()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Get-after-put coherence and scan/oracle agreement for AnyKey+ under
    /// arbitrary operation sequences.
    #[test]
    fn anykey_plus_is_coherent(actions in proptest::collection::vec(action(), 1..400)) {
        let mut dev = tiny_device(EngineKind::AnyKeyPlus);
        let mut oracle: BTreeMap<u64, u8> = BTreeMap::new();
        for a in actions {
            match a {
                Action::Put(k, v) => {
                    dev.put(k as u64, v as u32).unwrap();
                    oracle.insert(k as u64, v);
                }
                Action::Delete(k) => {
                    dev.delete(k as u64).unwrap();
                    oracle.remove(&(k as u64));
                }
                Action::Get(k) => {
                    prop_assert_eq!(dev.get(k as u64).found, oracle.contains_key(&(k as u64)));
                }
                Action::Scan(k, n) => {
                    let at = dev.horizon();
                    let (got, _) = dev.scan_keys(k as u64, n as u32, at);
                    let want: Vec<u64> =
                        oracle.range(k as u64..).take(n as usize).map(|(&x, _)| x).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// The same property for the PinK baseline.
    #[test]
    fn pink_is_coherent(actions in proptest::collection::vec(action(), 1..300)) {
        let mut dev = tiny_device(EngineKind::Pink);
        let mut oracle: BTreeMap<u64, u8> = BTreeMap::new();
        for a in actions {
            match a {
                Action::Put(k, v) => {
                    dev.put(k as u64, v as u32).unwrap();
                    oracle.insert(k as u64, v);
                }
                Action::Delete(k) => {
                    dev.delete(k as u64).unwrap();
                    oracle.remove(&(k as u64));
                }
                Action::Get(k) => {
                    prop_assert_eq!(dev.get(k as u64).found, oracle.contains_key(&(k as u64)));
                }
                Action::Scan(k, n) => {
                    let at = dev.horizon();
                    let (got, _) = dev.scan_keys(k as u64, n as u32, at);
                    let want: Vec<u64> =
                        oracle.range(k as u64..).take(n as usize).map(|(&x, _)| x).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
    }

    /// xxHash32 matches itself across chunked evaluation boundaries and
    /// never varies with extra buffer capacity.
    #[test]
    fn xxhash_is_stable(data in proptest::collection::vec(any::<u8>(), 0..200), seed: u32) {
        let h1 = xxhash32(&data, seed);
        let mut padded = data.clone();
        padded.push(0xFF);
        let h2 = xxhash32(&padded[..data.len()], seed);
        prop_assert_eq!(h1, h2);
    }

    /// Histogram quantiles are order-consistent and bounded by min/max.
    #[test]
    fn histogram_quantiles_are_ordered(samples in proptest::collection::vec(1u64..10_000_000, 1..500)) {
        let mut h = LatencyHist::new();
        for &s in &samples {
            h.record(s);
        }
        let q50 = h.quantile(0.5);
        let q95 = h.quantile(0.95);
        let q99 = h.quantile(0.99);
        prop_assert!(q50 <= q95);
        prop_assert!(q95 <= q99);
        prop_assert!(q99 <= h.max());
        prop_assert!(h.min() <= q50);
    }

    /// Quantile estimates stay within the histogram's designed relative
    /// error (~3% per octave bucket).
    #[test]
    fn histogram_error_is_bounded(samples in proptest::collection::vec(32u64..1_000_000, 50..400)) {
        let mut h = LatencyHist::new();
        let mut sorted = samples.clone();
        for &s in &samples {
            h.record(s);
        }
        sorted.sort_unstable();
        let exact = sorted[(0.95 * (sorted.len() - 1) as f64) as usize];
        let est = h.quantile(0.95);
        let rel = (est as f64 - exact as f64).abs() / exact as f64;
        prop_assert!(rel < 0.10, "rel err {} (est {est}, exact {exact})", rel);
    }
}
