//! Randomized property tests on core invariants, driven by the
//! in-workspace `SplitMix64` generator (hermetic: no external
//! property-testing framework). Each test sweeps a fixed set of seeds so
//! failures reproduce exactly; on failure the seed is part of the panic
//! message.

use std::collections::BTreeMap;

use anykey::core::{hash::xxhash32, DeviceConfig, EngineKind, KvEngine};
use anykey::metrics::LatencyHist;
use anykey::workload::SplitMix64;

#[derive(Debug, Clone, Copy)]
enum Action {
    Put(u64, u32),
    Delete(u64),
    Get(u64),
    Scan(u64, u32),
}

/// Draws a random action over an 800-key space, mirroring the action mix
/// the seed proptest strategy used.
fn draw_action(rng: &mut SplitMix64) -> Action {
    let key = rng.next_bounded(800);
    match rng.next_bounded(4) {
        0 => Action::Put(key, 1 + rng.next_bounded(200) as u32),
        1 => Action::Delete(key),
        2 => Action::Get(key),
        _ => Action::Scan(key, 1 + rng.next_bounded(12) as u32),
    }
}

fn tiny_device(kind: EngineKind) -> Box<dyn KvEngine> {
    DeviceConfig::builder()
        .capacity_bytes(8 << 20)
        .page_size(8 << 10)
        .pages_per_block(16)
        .group_pages(8)
        .engine(kind)
        .key_len(16)
        .build()
        .build_engine()
}

/// Get-after-put coherence and scan/oracle agreement under arbitrary
/// operation sequences, with the structural auditor run at the end of
/// every sequence.
fn engine_is_coherent(kind: EngineKind, seeds: u64, max_actions: u64) {
    for seed in 0..seeds {
        let mut rng = SplitMix64::new(0xC0FFEE ^ seed);
        let n = 1 + rng.next_bounded(max_actions);
        let mut dev = tiny_device(kind);
        let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();
        for step in 0..n {
            match draw_action(&mut rng) {
                Action::Put(k, v) => {
                    dev.put(k, v).unwrap();
                    oracle.insert(k, v);
                }
                Action::Delete(k) => {
                    dev.delete(k).unwrap();
                    oracle.remove(&k);
                }
                Action::Get(k) => {
                    assert_eq!(
                        dev.get(k).found,
                        oracle.contains_key(&k),
                        "{kind:?} get({k}) diverged (seed {seed}, step {step})"
                    );
                }
                Action::Scan(k, cnt) => {
                    let at = dev.horizon();
                    let (got, _) = dev.scan_keys(k, cnt, at);
                    let want: Vec<u64> = oracle
                        .range(k..)
                        .take(cnt as usize)
                        .map(|(&x, _)| x)
                        .collect();
                    assert_eq!(
                        got, want,
                        "{kind:?} scan({k},{cnt}) diverged (seed {seed}, step {step})"
                    );
                }
            }
        }
        dev.check_invariants()
            .unwrap_or_else(|e| panic!("{kind:?} invariants violated (seed {seed}): {e}"));
    }
}

#[test]
fn anykey_plus_is_coherent() {
    engine_is_coherent(EngineKind::AnyKeyPlus, 24, 400);
}

#[test]
fn pink_is_coherent() {
    engine_is_coherent(EngineKind::Pink, 24, 300);
}

/// xxHash32 matches itself across chunked evaluation boundaries and never
/// varies with extra buffer capacity.
#[test]
fn xxhash_is_stable() {
    let mut rng = SplitMix64::new(7);
    for _ in 0..256 {
        let len = rng.next_bounded(200) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let seed = rng.next_u64() as u32;
        let h1 = xxhash32(&data, seed);
        let mut padded = data.clone();
        padded.push(0xFF);
        let h2 = xxhash32(&padded[..data.len()], seed);
        assert_eq!(h1, h2, "hash varied with buffer capacity (len {len})");
    }
}

/// Histogram quantiles are order-consistent and bounded by min/max.
#[test]
fn histogram_quantiles_are_ordered() {
    let mut rng = SplitMix64::new(11);
    for case in 0..64 {
        let n = 1 + rng.next_bounded(500);
        let mut h = LatencyHist::new();
        let mut smallest = u64::MAX;
        for _ in 0..n {
            let s = 1 + rng.next_bounded(10_000_000);
            smallest = smallest.min(s);
            h.record(s);
        }
        let q50 = h.quantile(0.5);
        let q95 = h.quantile(0.95);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q95, "q50 {q50} > q95 {q95} (case {case})");
        assert!(q95 <= q99, "q95 {q95} > q99 {q99} (case {case})");
        assert!(q99 <= h.max(), "q99 {q99} > max {} (case {case})", h.max());
        assert!(h.min() <= q50, "min {} > q50 {q50} (case {case})", h.min());
    }
}

/// Quantile estimates stay within the histogram's designed relative error
/// (~3% per octave bucket; 10% is a comfortable envelope).
#[test]
fn histogram_error_is_bounded() {
    let mut rng = SplitMix64::new(13);
    for case in 0..64 {
        let n = 50 + rng.next_bounded(350) as usize;
        let samples: Vec<u64> = (0..n).map(|_| 32 + rng.next_bounded(1_000_000)).collect();
        let mut h = LatencyHist::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples;
        sorted.sort_unstable();
        let exact = sorted[(0.95 * (sorted.len() - 1) as f64) as usize];
        let est = h.quantile(0.95);
        let rel = (est as f64 - exact as f64).abs() / exact as f64;
        assert!(
            rel < 0.10,
            "rel err {rel} (est {est}, exact {exact}, case {case})"
        );
    }
}
