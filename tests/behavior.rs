//! Behavioural tests for paths the oracle stream rarely exercises:
//! tombstone shadowing across levels, AnyKey− inline operation, read-cost
//! mechanics, queue-depth effects, and device-full semantics.

use anykey::core::runner::DEFAULT_QUEUE_DEPTH;
use anykey::core::{run, warm_up, DeviceConfig, EngineKind, KvEngine, KvError};
use anykey::flash::OpCause;
use anykey::workload::{spec, Op, OpStreamBuilder};

fn tiny(kind: EngineKind) -> Box<dyn KvEngine> {
    DeviceConfig::builder()
        .capacity_bytes(16 << 20)
        .page_size(8 << 10)
        .pages_per_block(16)
        .group_pages(8)
        .engine(kind)
        .key_len(24)
        .build()
        .build_engine()
}

/// Deleting a key that has already been compacted into deep levels must
/// shadow every older version, and re-inserting must resurrect it.
#[test]
fn tombstones_shadow_deep_versions() {
    for kind in [EngineKind::Pink, EngineKind::AnyKeyPlus] {
        let mut dev = tiny(kind);
        // Push key 7 deep by writing lots of other data after it.
        dev.put(7, 80).unwrap();
        for id in 1_000..40_000u64 {
            dev.put(id, 80).unwrap();
        }
        assert!(dev.get(7).found, "{kind}: key lost before delete");
        dev.delete(7).unwrap();
        // Bury the tombstone too.
        for id in 40_000..60_000u64 {
            dev.put(id, 80).unwrap();
        }
        assert!(!dev.get(7).found, "{kind}: tombstone failed to shadow");
        dev.put(7, 33).unwrap();
        assert!(dev.get(7).found, "{kind}: key did not resurrect");
        dev.check_invariants()
            .unwrap_or_else(|e| panic!("{kind}: post-churn audit failed: {e}"));
    }
}

/// AnyKey− (no value log) never touches log causes; AnyKey with a log
/// serves some reads from it.
#[test]
fn value_log_ablation_changes_traffic_shape() {
    let w = spec::by_name("UDB").unwrap();
    let mut log_reads = Vec::new();
    for kind in [EngineKind::AnyKeyPlus, EngineKind::AnyKeyNoLog] {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(kind)
            .key_len(w.key_len as u16)
            .build()
            .build_engine();
        let keyspace = (16 << 20) / w.pair_bytes();
        warm_up(dev.as_mut(), w, keyspace, 3).unwrap();
        let ops = OpStreamBuilder::new(w, keyspace).seed(5).build();
        let report = run(dev.as_mut(), ops, 60_000, DEFAULT_QUEUE_DEPTH).unwrap();
        log_reads.push(
            report.counters.reads(OpCause::LogRead) + report.counters.writes(OpCause::LogWrite),
        );
    }
    assert!(log_reads[0] > 0, "AnyKey+ must exercise the value log");
    assert_eq!(log_reads[1], 0, "AnyKey- must never touch a value log");
}

/// A buffered GET costs zero flash reads; a flushed GET costs at least
/// one; an absent key with resident hash lists costs none (the Section 4.2
/// filter).
#[test]
fn anykey_read_costs_match_the_design() {
    let mut dev = tiny(EngineKind::AnyKeyPlus);
    dev.put(1, 50).unwrap();
    assert_eq!(dev.get(1).flash_reads, 0, "buffer hit must be free");
    // Force flushes.
    for id in 100..40_000u64 {
        dev.put(id, 50).unwrap();
    }
    let flushed = dev.get(1);
    assert!(flushed.found);
    assert!(flushed.flash_reads >= 1, "flushed key needs a group read");
    // Absent key: hash lists for the top levels filter the read.
    let absent = dev.get(77_777_777);
    assert!(!absent.found);
    assert!(
        absent.flash_reads <= 4,
        "absent-key probe did {} reads",
        absent.flash_reads
    );
}

/// Deeper queues raise throughput without breaking latency accounting.
#[test]
fn queue_depth_trades_latency_for_throughput() {
    let w = spec::by_name("Dedup").unwrap();
    let mut iops = Vec::new();
    for qd in [1usize, 64] {
        let mut dev = tiny(EngineKind::AnyKeyPlus);
        let keyspace = 30_000;
        warm_up(dev.as_mut(), w, keyspace, 1).unwrap();
        let ops = OpStreamBuilder::new(w, keyspace).seed(2).build();
        let report = run(dev.as_mut(), ops, 30_000, qd).unwrap();
        iops.push(report.iops());
    }
    assert!(
        iops[1] > iops[0] * 2.0,
        "QD64 ({:.0}) should far outrun QD1 ({:.0})",
        iops[1],
        iops[0]
    );
}

/// Once a device reports full it keeps reporting full (no silent
/// corruption), and reads still work.
#[test]
fn device_full_is_sticky_and_readable() {
    let mut dev = tiny(EngineKind::Pink);
    let mut id = 0u64;
    let full_at = loop {
        match dev.put(id, 200) {
            Ok(_) => id += 1,
            Err(KvError::DeviceFull) => break id,
            Err(e) => panic!("unexpected: {e}"),
        }
    };
    assert!(
        full_at > 10_000,
        "device filled suspiciously early: {full_at}"
    );
    // Reads of previously inserted keys still succeed.
    assert!(dev.get(0).found);
    assert!(dev.get(full_at / 2).found);
    // Even a device that hit full mid-operation must be structurally sound.
    dev.check_invariants().expect("post-device-full audit");
}

/// Key ids beyond the synthesizable range surface KeyTooLarge, not
/// corruption.
#[test]
fn key_too_large_is_reported() {
    let mut dev = DeviceConfig::builder()
        .capacity_bytes(16 << 20)
        .page_size(8 << 10)
        .pages_per_block(16)
        .group_pages(8)
        .engine(EngineKind::AnyKey)
        .key_len(4)
        .build()
        .build_engine();
    let at = dev.horizon();
    let err = dev
        .execute(
            &Op::Put {
                key: 1 << 40,
                value_len: 10,
            },
            at,
        )
        .unwrap_err();
    assert!(matches!(err, KvError::KeyTooLarge { .. }));
}

/// Scans crossing group/segment boundaries return exactly the requested
/// count when enough keys exist.
#[test]
fn long_scans_cross_structure_boundaries() {
    for kind in [EngineKind::Pink, EngineKind::AnyKeyPlus] {
        let mut dev = tiny(kind);
        for id in 0..30_000u64 {
            dev.put(id, 60).unwrap();
        }
        let at = dev.horizon();
        let (keys, outcome) = dev.scan_keys(5_000, 500, at);
        assert_eq!(keys.len(), 500, "{kind}: short scan result");
        assert_eq!(keys[0], 5_000);
        assert_eq!(*keys.last().unwrap(), 5_499);
        assert!(outcome.flash_reads > 0);
        dev.check_invariants()
            .unwrap_or_else(|e| panic!("{kind}: post-scan audit failed: {e}"));
    }
}

/// Counters' `since` snapshots isolate the measured phase.
#[test]
fn counter_snapshots_isolate_phases() {
    let w = spec::by_name("Cache15").unwrap();
    let mut dev = tiny(EngineKind::AnyKeyPlus);
    warm_up(dev.as_mut(), w, 20_000, 9).unwrap();
    // Warm-up reset the counters; a read-only phase must show zero
    // programs outside background work already queued.
    let before = dev.counters();
    for id in 0..500u64 {
        dev.get(id * 7 % 20_000);
    }
    let delta = dev.counters().since(&before);
    assert!(delta.total_reads() > 0);
    assert_eq!(delta.writes(OpCause::CompactionWrite), 0);
}
