//! The bench scheduler's determinism contract: a multi-experiment sweep
//! must produce byte-identical CSVs and an identical `summary.json`
//! (modulo the host wall-time fields) whatever `--jobs` is, identical
//! points must be deduplicated into one execution, and the `bench-diff`
//! tolerance logic must pass clean runs and fail injected regressions.

use std::collections::BTreeMap;
use std::path::Path;

use anykey::metrics::summary::{self, ParsedSummary, RunSummary, DEFAULT_WALL_BAND, WALL_FIELDS};
use anykey_bench::common::{ExpCtx, Scale};
use anykey_bench::experiments;
use anykey_bench::scheduler::{build_summary, run_points, Point, RunKind};

/// A tiny scale so the sweep stays test-sized: the 64 MiB minimum device
/// (one block per chip), lightly filled, with a short measured phase.
/// Output goes under the per-process temp dir `tag`.
fn tiny_ctx(tag: &str) -> ExpCtx {
    let out = std::env::temp_dir().join(format!("anykey_sched_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&out).expect("create test out dir");
    ExpCtx::new(Scale {
        capacity: 64 << 20,
        fill: 0.15,
        ops_factor: 0.1,
        out_dir: out,
        seed: 0xA17_5EED,
        bg_residual_ns: 100_000,
    })
}

/// Reads every regular file under `dir` into a name → bytes map.
fn dir_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read out dir").flatten() {
        let path = entry.path();
        if path.is_file() {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.insert(name, std::fs::read(&path).expect("read result file"));
        }
    }
    out
}

/// A parsed summary with the wall-time fields removed, for exact
/// comparison of everything deterministic.
fn without_wall(parsed: &ParsedSummary) -> ParsedSummary {
    let mut out = parsed.clone();
    out.fields
        .retain(|(n, _)| !WALL_FIELDS.contains(&n.as_str()));
    for p in &mut out.points {
        p.fields.retain(|(n, _)| !WALL_FIELDS.contains(&n.as_str()));
    }
    out
}

/// Runs a multi-experiment sweep end to end (points → schedule → render →
/// summary) at the given parallelism, returning the rendered files and
/// the run summary.
fn sweep(ids: &[&str], jobs: usize, tag: &str) -> (BTreeMap<String, Vec<u8>>, RunSummary) {
    let ctx = tiny_ctx(tag);
    let mut plan = Vec::new();
    let mut points = Vec::new();
    for id in ids {
        let exp = experiments::by_id(id).expect("known experiment");
        let start = points.len();
        points.extend((exp.points)(&ctx));
        plan.push((exp, start..points.len()));
    }
    let run = run_points(&ctx, &points, jobs);
    for (exp, range) in &plan {
        (exp.render)(&ctx, &run.results[range.clone()]);
    }
    let summary = build_summary(&ctx, &points, &run);
    let files = dir_files(&ctx.scale.out_dir);
    let _ = std::fs::remove_dir_all(&ctx.scale.out_dir);
    (files, summary)
}

const SWEEP: [&str; 3] = ["table1", "multitenant", "scalability"];

#[test]
fn sweep_is_byte_identical_across_jobs() {
    let (files1, summary1) = sweep(&SWEEP, 1, "j1");
    let (files4, summary4) = sweep(&SWEEP, 4, "j4");

    // Every rendered CSV must be byte-identical.
    assert_eq!(
        files1.keys().collect::<Vec<_>>(),
        files4.keys().collect::<Vec<_>>(),
        "the two runs rendered different file sets"
    );
    for (name, bytes) in &files1 {
        assert_eq!(
            bytes, &files4[name],
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }

    // The summaries must agree on every deterministic field; only the
    // wall-time fields may differ.
    let p1 = summary::parse(&summary1.to_json()).expect("parse jobs-1 summary");
    let p4 = summary::parse(&summary4.to_json()).expect("parse jobs-4 summary");
    assert_eq!(
        without_wall(&p1),
        without_wall(&p4),
        "summary.json differs beyond wall-time fields"
    );
}

#[test]
fn identical_points_are_deduplicated() {
    let ctx = tiny_ctx("dedup");
    let w = anykey::workload::spec::ALL[0];
    let kind = anykey::core::EngineKind::AnyKey;
    // Two experiments declaring the same simulation (as fig10/fig11 and
    // fig12/fig13 do): one execution, fanned out to both points.
    let points = vec![
        Point::with_key(
            "expA/row".into(),
            "expA",
            kind,
            w,
            RunKind::WarmUpOnly { cfg: None },
        ),
        Point::with_key(
            "expB/row".into(),
            "expB",
            kind,
            w,
            RunKind::WarmUpOnly { cfg: None },
        ),
    ];
    let run = run_points(&ctx, &points, 2);
    assert_eq!(run.executed, 1, "identical points were not deduplicated");
    assert_eq!(run.results.len(), 2);

    let s = build_summary(&ctx, &points, &run);
    let parsed = summary::parse(&s.to_json()).expect("parse dedup summary");
    let strip = |i: usize| {
        let mut p = parsed.points[i].clone();
        p.fields
            .retain(|(n, _)| n != "key" && n != "experiment" && !WALL_FIELDS.contains(&n.as_str()));
        p.key.clear();
        p
    };
    assert_eq!(strip(0), strip(1), "deduplicated results diverge");
    let _ = std::fs::remove_dir_all(&ctx.scale.out_dir);
}

// --- bench-diff tolerance logic -------------------------------------------

fn synthetic(erases: u64, wall: f64) -> ParsedSummary {
    let text = format!(
        "{{\n  \"schema_version\": 1,\n  \"capacity_bytes\": 1024,\n  \"seed\": 7,\n  \
         \"total_wall_secs\": {wall:.6},\n  \"points\": [\n    {{\n      \"key\": \"e/w/s\",\n      \
         \"ops\": 10,\n      \"erases\": {erases},\n      \"wall_secs\": {wall:.6}\n    }}\n  ]\n}}\n"
    );
    summary::parse(&text).expect("parse synthetic summary")
}

#[test]
fn bench_diff_passes_identical_summaries() {
    let d = summary::diff(&synthetic(5, 2.0), &synthetic(5, 2.0), DEFAULT_WALL_BAND);
    assert!(d.pass(), "unexpected failures: {:?}", d.failures);
}

#[test]
fn bench_diff_fails_on_exact_metric_change() {
    let d = summary::diff(&synthetic(5, 2.0), &synthetic(6, 2.0), DEFAULT_WALL_BAND);
    assert!(!d.pass());
    assert!(
        d.failures.iter().any(|f| f.metric == "erases" && !f.banded),
        "expected an exact `erases` failure, got {:?}",
        d.failures
    );
}

#[test]
fn bench_diff_fails_when_wall_band_exceeded() {
    // 2.0s baseline × 5 band = 10s allowance; 11s must fail (and only on
    // the banded wall fields).
    let d = summary::diff(&synthetic(5, 2.0), &synthetic(5, 11.0), DEFAULT_WALL_BAND);
    assert!(!d.pass());
    assert!(d.failures.iter().all(|f| f.banded));
    assert!(d.failures.iter().any(|f| f.metric == "wall_secs"));
}
