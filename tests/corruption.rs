//! Corruption-injection tests: each seeded fault must be caught by
//! `check_invariants` and produce its own, distinguishable diagnostic.
//!
//! The injection hooks (`*_for_test` on the concrete stores) bypass the
//! engines' normal mutation paths, so these tests prove the auditor
//! detects damage rather than merely re-deriving state the engine already
//! trusts.

use anykey::core::anykey::AnyKeyStore;
use anykey::core::pink::PinkStore;
use anykey::core::{AuditError, DeviceConfig, EngineKind, KvEngine};

fn filled_anykey() -> AnyKeyStore {
    let mut s = AnyKeyStore::new(
        DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::AnyKey)
            .key_len(16)
            .build(),
    );
    for id in 0..30_000u64 {
        s.put(id, 60).expect("fill");
    }
    s
}

fn filled_pink() -> PinkStore {
    let mut s = PinkStore::new(
        DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::Pink)
            .key_len(16)
            .build(),
    );
    for id in 0..20_000u64 {
        s.put(id, 60).expect("fill");
    }
    s
}

#[test]
fn out_of_order_level_list_is_detected() {
    let mut s = filled_anykey();
    assert_eq!(
        s.check_invariants(),
        Ok(()),
        "healthy store must audit clean"
    );
    assert!(
        s.corrupt_level_order_for_test(),
        "fill must produce a level with at least two groups"
    );
    let err = s.check_invariants().expect_err("corruption must be caught");
    assert!(matches!(err, AuditError::LevelOrder { .. }), "got {err}");
    assert!(
        err.to_string().contains("out of key order"),
        "diagnostic must name the ordering fault: {err}"
    );
}

#[test]
fn overclaimed_dram_budget_is_detected() {
    let mut s = filled_anykey();
    assert_eq!(
        s.check_invariants(),
        Ok(()),
        "healthy store must audit clean"
    );
    s.overclaim_dram_for_test();
    let err = s.check_invariants().expect_err("corruption must be caught");
    assert!(
        matches!(
            err,
            AuditError::DramMismatch { .. } | AuditError::DramOverBudget { .. }
        ),
        "got {err}"
    );
    assert!(
        err.to_string().contains("DRAM"),
        "diagnostic must name the DRAM fault: {err}"
    );
}

#[test]
fn desynced_flash_counter_is_detected() {
    let mut s = filled_pink();
    assert_eq!(
        s.check_invariants(),
        Ok(()),
        "healthy store must audit clean"
    );
    s.desync_counters_for_test();
    let err = s.check_invariants().expect_err("corruption must be caught");
    assert!(matches!(err, AuditError::CounterSkew { .. }), "got {err}");
    assert!(
        err.to_string().contains("counter skew"),
        "diagnostic must name the counter fault: {err}"
    );
}

#[test]
fn retired_block_with_live_data_is_detected_anykey() {
    let mut s = filled_anykey();
    assert_eq!(
        s.check_invariants(),
        Ok(()),
        "healthy store must audit clean"
    );
    assert!(
        s.retire_live_block_for_test(),
        "fill must produce at least one live group"
    );
    let err = s.check_invariants().expect_err("corruption must be caught");
    assert!(
        matches!(err, AuditError::RetiredBlockLive { .. }),
        "got {err}"
    );
    assert!(
        err.to_string().contains("retired block"),
        "diagnostic must name the retirement fault: {err}"
    );
}

#[test]
fn retired_block_with_live_data_is_detected_pink() {
    let mut s = filled_pink();
    assert_eq!(
        s.check_invariants(),
        Ok(()),
        "healthy store must audit clean"
    );
    assert!(
        s.retire_live_block_for_test(),
        "fill must produce at least one live entry"
    );
    let err = s.check_invariants().expect_err("corruption must be caught");
    assert!(
        matches!(err, AuditError::RetiredBlockLive { .. }),
        "got {err}"
    );
    assert!(
        err.to_string().contains("retired block"),
        "diagnostic must name the retirement fault: {err}"
    );
}

#[test]
fn desynced_retirement_accounting_is_detected() {
    let mut s = filled_anykey();
    assert_eq!(
        s.check_invariants(),
        Ok(()),
        "healthy store must audit clean"
    );
    s.desync_retirement_for_test();
    let err = s.check_invariants().expect_err("corruption must be caught");
    assert!(
        matches!(err, AuditError::RetirementSkew { .. }),
        "got {err}"
    );
    assert!(
        err.to_string().contains("retirement accounting skew"),
        "diagnostic must name the accounting fault: {err}"
    );
}

/// The injected faults must be tellable apart from the diagnostic text
/// alone — an operator reading a log must know *which* structure is
/// damaged.
#[test]
fn injected_faults_have_pairwise_distinct_diagnostics() {
    let mut order = filled_anykey();
    assert!(order.corrupt_level_order_for_test());
    let order_msg = order.check_invariants().expect_err("seeded").to_string();

    let mut dram = filled_anykey();
    dram.overclaim_dram_for_test();
    let dram_msg = dram.check_invariants().expect_err("seeded").to_string();

    let mut skew = filled_pink();
    skew.desync_counters_for_test();
    let skew_msg = skew.check_invariants().expect_err("seeded").to_string();

    let mut retired = filled_anykey();
    assert!(retired.retire_live_block_for_test());
    let retired_msg = retired.check_invariants().expect_err("seeded").to_string();

    let mut rskew = filled_anykey();
    rskew.desync_retirement_for_test();
    let rskew_msg = rskew.check_invariants().expect_err("seeded").to_string();

    let msgs = [order_msg, dram_msg, skew_msg, retired_msg, rskew_msg];
    for i in 0..msgs.len() {
        for j in (i + 1)..msgs.len() {
            assert_ne!(msgs[i], msgs[j], "faults {i} and {j} look alike");
        }
    }
}
