//! The timeline subsystem's determinism contract: timeline files (JSONL
//! and CSV) are byte-identical for any `--jobs` level, sampling is pure
//! observation (a sampling-enabled run produces bit-identical summaries to
//! a disabled one), `--timeline-interval 0` is indistinguishable from
//! never enabling the subsystem, the steady-state fields land in
//! `summary.json` (schema v3), and the final point of every captured
//! cumulative-WAF curve equals the summary's `waf` field token for token.
//!
//! All timestamps in a timeline are virtual nanoseconds; the `xtask lint`
//! `trace-no-wall-clock` rule holds this file to that discipline too.

use anykey::metrics::summary::{self, ParsedSummary, WALL_FIELDS};
use anykey::metrics::timeline::{parse_jsonl, write_csv, write_jsonl, StateSample};
use anykey_bench::common::{ExpCtx, Scale};
use anykey_bench::experiments;
use anykey_bench::scheduler::{build_summary, run_points};

/// A tiny scale so the sweep stays test-sized (same shape as the trace
/// determinism suite). Output goes under the per-process temp dir `tag`.
fn tiny_ctx(tag: &str, interval_ns: u64) -> ExpCtx {
    let out = std::env::temp_dir().join(format!("anykey_tl_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&out).expect("create test out dir");
    let mut ctx = ExpCtx::new(Scale {
        capacity: 64 << 20,
        fill: 0.15,
        ops_factor: 0.1,
        out_dir: out,
        seed: 0x7_1ACE,
        bg_residual_ns: 100_000,
    });
    ctx.timeline_interval_ns = interval_ns;
    ctx
}

/// Runs one experiment's points at the given parallelism, returning the
/// named per-point timelines (representatives only, in declaration order —
/// exactly what `anykey-bench --timeline` exports) and the parsed summary.
fn sampled_sweep(
    jobs: usize,
    tag: &str,
    interval_ns: u64,
) -> (Vec<(String, Vec<StateSample>)>, ParsedSummary) {
    let ctx = tiny_ctx(tag, interval_ns);
    let exp = experiments::by_id("multitenant").expect("known experiment");
    let points = (exp.points)(&ctx);
    let run = run_points(&ctx, &points, jobs);
    let named: Vec<(String, Vec<StateSample>)> = points
        .iter()
        .zip(&run.results)
        .filter_map(|(p, r)| r.timeline.as_ref().map(|t| (p.key.clone(), t.clone())))
        .collect();
    let parsed =
        summary::parse(&build_summary(&ctx, &points, &run).to_json()).expect("parse summary");
    let _ = std::fs::remove_dir_all(&ctx.scale.out_dir);
    (named, parsed)
}

/// A parsed summary with the wall-time fields removed, for exact
/// comparison of everything deterministic.
fn without_wall(parsed: &ParsedSummary) -> ParsedSummary {
    let mut out = parsed.clone();
    out.fields
        .retain(|(n, _)| !WALL_FIELDS.contains(&n.as_str()));
    for p in &mut out.points {
        p.fields.retain(|(n, _)| !WALL_FIELDS.contains(&n.as_str()));
    }
    out
}

const INTERVAL: u64 = 1_000_000; // 1 ms virtual

#[test]
fn timeline_files_are_byte_identical_across_jobs() {
    let (named1, _) = sampled_sweep(1, "j1", INTERVAL);
    let (named4, _) = sampled_sweep(4, "j4", INTERVAL);

    assert!(
        !named1.is_empty() && named1.iter().all(|(_, t)| t.len() >= 2),
        "sampled sweep produced no timelines"
    );
    let (jsonl1, jsonl4) = (write_jsonl(&named1), write_jsonl(&named4));
    assert_eq!(
        jsonl1, jsonl4,
        "JSONL timeline differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        write_csv(&named1),
        write_csv(&named4),
        "CSV timeline differs between --jobs 1 and --jobs 4"
    );

    // The exported document round-trips through the analyzer's parser:
    // parse-then-rewrite reproduces the original bytes.
    let parsed = parse_jsonl(&jsonl1).expect("exported JSONL must parse");
    assert_eq!(parsed.points.len(), named1.len());
    assert_eq!(write_jsonl(&parsed.points), jsonl1);
}

#[test]
fn sampling_is_pure_observation() {
    let (named, sampled) = sampled_sweep(2, "obs_on", INTERVAL);
    assert!(!named.is_empty(), "no timelines captured");

    // The same sweep with interval 0 — the subsystem never engages: no
    // point carries samples, and every deterministic summary field (the
    // steady-state fields included, since they come from the always-on
    // WAF curve) must match token for token.
    let (named_off, plain) = sampled_sweep(2, "obs_off", 0);
    assert!(
        named_off.is_empty(),
        "interval 0 but the scheduler captured samples"
    );
    assert_eq!(
        without_wall(&sampled),
        without_wall(&plain),
        "timeline sampling perturbed measured results"
    );
}

#[test]
fn summary_schema_v3_carries_steady_state_and_p95_fields() {
    let (_, parsed) = sampled_sweep(1, "schema", 0);
    assert_eq!(parsed.field("schema_version"), Some("3"));
    let point = parsed.points.first().expect("at least one point");
    for name in [
        "p95_read_ns",
        "p95_write_ns",
        "converged_waf",
        "burnin_ns",
        "waf",
    ] {
        assert!(
            point.fields.iter().any(|(n, _)| n == name),
            "summary point is missing `{name}`"
        );
    }
    // At this tiny scale the op-stride WAF curve is still climbing, so the
    // detector rightly refuses to call a steady state — but every point
    // must carry well-formed values (convergence itself is asserted on the
    // finer-grained captured timeline below, and on the quick sweep in CI).
    for p in &parsed.points {
        let cw: f64 = p
            .field("converged_waf")
            .and_then(|v| v.parse().ok())
            .expect("converged_waf parses");
        assert!(cw >= 0.0, "negative converged_waf");
        let _: u64 = p
            .field("burnin_ns")
            .and_then(|v| v.parse().ok())
            .expect("burnin_ns parses");
    }
}

#[test]
fn final_timeline_waf_equals_summary_waf_and_counters_are_monotone() {
    let (named, parsed) = sampled_sweep(1, "prop", INTERVAL);
    assert!(!named.is_empty());
    let mut checked = 0;
    for (key, samples) in &named {
        // Cumulative per-cause counters are monotone non-decreasing.
        for w in samples.windows(2) {
            let (p, c) = (&w[0], &w[1]);
            for (name, a, b) in [
                ("host_reads", p.host_reads, c.host_reads),
                ("host_writes", p.host_writes, c.host_writes),
                ("meta_reads", p.meta_reads, c.meta_reads),
                ("meta_writes", p.meta_writes, c.meta_writes),
                ("comp_reads", p.comp_reads, c.comp_reads),
                ("comp_writes", p.comp_writes, c.comp_writes),
                ("gc_reads", p.gc_reads, c.gc_reads),
                ("gc_writes", p.gc_writes, c.gc_writes),
                ("log_reads", p.log_reads, c.log_reads),
                ("log_writes", p.log_writes, c.log_writes),
                ("erases", p.erases, c.erases),
            ] {
                assert!(a <= b, "{key}: cumulative `{name}` decreased ({a} -> {b})");
            }
        }
        // The final sample's cumulative WAF is the summary's WAF, exactly
        // (same integers, same arithmetic, same f64 — same token).
        let last = samples.last().expect("non-empty timeline");
        let point = parsed
            .points
            .iter()
            .find(|p| &p.key == key)
            .expect("summary point for timeline");
        let write_ops: u64 = point
            .field("write_ops")
            .and_then(|v| v.parse().ok())
            .expect("write_ops field");
        if write_ops == 0 {
            continue; // summary substitutes fill bytes; no mid-run analogue
        }
        assert_eq!(
            point.field("waf"),
            Some(format!("{:.6}", last.cum_waf).as_str()),
            "{key}: final timeline WAF diverges from summary waf"
        );
        checked += 1;
    }
    assert!(checked > 0, "no point had measured writes to check");

    // The analyzer finds a steady state on the captured (time-sampled)
    // timelines: at 1 ms resolution every point's WAF curve flattens well
    // within the run, even at this tiny scale.
    let analysis = anykey::metrics::timeline::analyze(
        &parse_jsonl(&write_jsonl(&named)).expect("parse"),
        anykey::metrics::timeline::DEFAULT_STEADY_WINDOW,
        anykey::metrics::timeline::DEFAULT_STEADY_TOL,
    );
    assert!(
        analysis.points.iter().any(|p| p.steady.is_some()),
        "analyzer found no steady state on any captured timeline"
    );
}

#[test]
fn engine_state_fields_are_populated() {
    let (named, _) = sampled_sweep(1, "state", INTERVAL);
    let (key, samples) = named.first().expect("at least one timeline");
    let last = samples.last().expect("non-empty timeline");
    assert!(last.dram_capacity > 0, "{key}: no DRAM capacity sampled");
    assert!(last.dram_used > 0, "{key}: no DRAM usage sampled");
    assert!(!last.levels.is_empty(), "{key}: no level occupancy sampled");
    assert!(last.group_count > 0, "{key}: no placement units sampled");
    assert!(last.free_blocks > 0, "{key}: no free-block depth sampled");
    assert!(
        samples.iter().any(|s| s.interval_ops > 0),
        "{key}: no interval ever recorded ops"
    );
}
