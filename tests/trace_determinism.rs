//! The trace subsystem's determinism contract: trace files (JSONL and
//! Chrome trace-event JSON) are byte-identical for any `--jobs` level,
//! tracing is pure observation (it never changes measured results), the
//! per-phase breakdown lands in `summary.json`, and an engine that never
//! enabled tracing yields no events.
//!
//! All timestamps in a trace are virtual nanoseconds; the `xtask lint`
//! `trace-no-wall-clock` rule holds this file to that discipline too.

use anykey::core::runner::DEFAULT_QUEUE_DEPTH;
use anykey::core::{run, run_traced, DeviceConfig, EngineKind, KvEngine};
use anykey::metrics::summary::{self, ParsedSummary, WALL_FIELDS};
use anykey::metrics::trace::{parse_jsonl, write_chrome, write_jsonl, TraceEvent};
use anykey::workload::{spec, OpStreamBuilder};
use anykey_bench::common::{ExpCtx, Scale};
use anykey_bench::experiments;
use anykey_bench::scheduler::{build_summary, run_points};

/// A tiny scale so the sweep stays test-sized (same shape as the
/// scheduler determinism suite). Output goes under the per-process temp
/// dir `tag`.
fn tiny_ctx(tag: &str, trace: bool) -> ExpCtx {
    let out = std::env::temp_dir().join(format!("anykey_trace_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&out).expect("create test out dir");
    let mut ctx = ExpCtx::new(Scale {
        capacity: 64 << 20,
        fill: 0.15,
        ops_factor: 0.1,
        out_dir: out,
        seed: 0x7_1ACE,
        bg_residual_ns: 100_000,
    });
    ctx.trace = trace;
    ctx
}

/// Runs one experiment's points at the given parallelism with tracing on,
/// returning the named per-point traces (representatives only, in
/// declaration order — exactly what `anykey-bench --trace` exports) and
/// the parsed summary.
fn traced_sweep(jobs: usize, tag: &str) -> (Vec<(String, Vec<TraceEvent>)>, ParsedSummary) {
    let ctx = tiny_ctx(tag, true);
    let exp = experiments::by_id("multitenant").expect("known experiment");
    let points = (exp.points)(&ctx);
    let run = run_points(&ctx, &points, jobs);
    let named: Vec<(String, Vec<TraceEvent>)> = points
        .iter()
        .zip(&run.results)
        .filter_map(|(p, r)| r.trace.as_ref().map(|t| (p.key.clone(), t.clone())))
        .collect();
    let parsed =
        summary::parse(&build_summary(&ctx, &points, &run).to_json()).expect("parse summary");
    let _ = std::fs::remove_dir_all(&ctx.scale.out_dir);
    (named, parsed)
}

/// A parsed summary with the wall-time fields removed, for exact
/// comparison of everything deterministic.
fn without_wall(parsed: &ParsedSummary) -> ParsedSummary {
    let mut out = parsed.clone();
    out.fields
        .retain(|(n, _)| !WALL_FIELDS.contains(&n.as_str()));
    for p in &mut out.points {
        p.fields.retain(|(n, _)| !WALL_FIELDS.contains(&n.as_str()));
    }
    out
}

#[test]
fn trace_files_are_byte_identical_across_jobs() {
    let (named1, _) = traced_sweep(1, "j1");
    let (named4, _) = traced_sweep(4, "j4");

    assert!(
        !named1.is_empty() && named1.iter().any(|(_, t)| !t.is_empty()),
        "traced sweep produced no events"
    );
    let (jsonl1, jsonl4) = (write_jsonl(&named1), write_jsonl(&named4));
    assert_eq!(
        jsonl1, jsonl4,
        "JSONL trace differs between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        write_chrome(&named1),
        write_chrome(&named4),
        "Chrome trace differs between --jobs 1 and --jobs 4"
    );

    // The exported document round-trips through the analyzer's parser.
    let parsed = parse_jsonl(&jsonl1).expect("exported JSONL must parse");
    assert_eq!(parsed.points.len(), named1.len());
}

#[test]
fn tracing_is_pure_observation() {
    let (_, traced) = traced_sweep(2, "obs_on");

    // The same sweep with tracing off: every deterministic summary field
    // must match, and no point may carry a trace buffer.
    let ctx = tiny_ctx("obs_off", false);
    let exp = experiments::by_id("multitenant").expect("known experiment");
    let points = (exp.points)(&ctx);
    let run = run_points(&ctx, &points, 2);
    assert!(
        run.results.iter().all(|r| r.trace.is_none()),
        "tracing disabled but the scheduler captured events"
    );
    let untraced =
        summary::parse(&build_summary(&ctx, &points, &run).to_json()).expect("parse summary");
    let _ = std::fs::remove_dir_all(&ctx.scale.out_dir);

    assert_eq!(
        without_wall(&traced),
        without_wall(&untraced),
        "tracing perturbed measured results"
    );
}

#[test]
fn summary_carries_phase_fields() {
    let (_, parsed) = traced_sweep(1, "schema");
    let field = |p: &ParsedSummary, name: &str| {
        p.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    };
    assert_eq!(field(&parsed, "schema_version").as_deref(), Some("3"));
    let point = parsed.points.first().expect("at least one point");
    for name in [
        "phase_queue_ns",
        "phase_meta_ns",
        "phase_data_ns",
        "phase_log_ns",
        "phase_engine_ns",
        "phase_queue_p99_ns",
        "phase_engine_p99_ns",
    ] {
        assert!(
            point.fields.iter().any(|(n, _)| n == name),
            "summary point is missing `{name}`"
        );
    }
}

fn tiny_engine(kind: EngineKind) -> Box<dyn KvEngine> {
    DeviceConfig::builder()
        .capacity_bytes(16 << 20)
        .page_size(8 << 10)
        .pages_per_block(16)
        .group_pages(8)
        .engine(kind)
        .key_len(24)
        .build()
        .build_engine()
}

#[test]
fn engine_without_tracing_yields_no_events() {
    for kind in [EngineKind::AnyKey, EngineKind::Pink] {
        let mut dev = tiny_engine(kind);
        let ops = OpStreamBuilder::new(spec::ALL[0], 500)
            .seed(1)
            .build()
            .take(200);
        run(dev.as_mut(), ops, 200, DEFAULT_QUEUE_DEPTH).expect("untraced run");
        assert!(
            dev.take_trace().is_empty(),
            "{kind:?} recorded events without set_tracing(true)"
        );
    }
}

#[test]
fn traced_run_report_matches_untraced_run() {
    for kind in [EngineKind::AnyKey, EngineKind::Pink] {
        let mk_ops = || {
            OpStreamBuilder::new(spec::ALL[1], 500)
                .seed(9)
                .build()
                .take(300)
        };
        let mut a = tiny_engine(kind);
        let plain = run(a.as_mut(), mk_ops(), 300, DEFAULT_QUEUE_DEPTH).expect("plain run");
        let mut b = tiny_engine(kind);
        let (traced, events) =
            run_traced(b.as_mut(), mk_ops(), 300, DEFAULT_QUEUE_DEPTH).expect("traced run");
        assert_eq!(plain.ops, traced.ops, "{kind:?}: op count changed");
        assert_eq!(plain.end, traced.end, "{kind:?}: virtual end changed");
        let requests = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Request { .. }))
            .count();
        assert_eq!(requests as u64, traced.ops, "one request event per op");
    }
}
