//! Fault-injection determinism and safety.
//!
//! The fault model is seeded and stateless: two runs with the same seed
//! and the same operation sequence must inject byte-identical faults, do
//! byte-identical recovery work, and land on the same virtual-time
//! horizon. And no injected fault may ever lose a key — reads always
//! recover via retry, failed programs are re-placed, and retired blocks
//! only leave the pool after their live data has moved.

use std::collections::BTreeMap;

use anykey::core::{DeviceConfig, EngineKind, KvEngine};
use anykey::flash::FaultModel;
use anykey::workload::SplitMix64;

/// A small device with plenty of GC churn, so erases (and therefore
/// erase-failure draws) actually happen within a short test run.
fn faulty_device(kind: EngineKind, fault: FaultModel) -> Box<dyn KvEngine> {
    DeviceConfig::builder()
        .capacity_bytes(16 << 20)
        .page_size(8 << 10)
        .pages_per_block(16)
        .group_pages(8)
        .engine(kind)
        .key_len(20)
        .fault(fault)
        .build()
        .build_engine()
}

/// Drives a deterministic PUT/GET/DELETE mix and returns the logical
/// truth (key → value length) at the end.
fn drive(dev: &mut dyn KvEngine, seed: u64, n_ops: usize) -> BTreeMap<u64, u32> {
    let mut oracle: BTreeMap<u64, u32> = BTreeMap::new();
    let mut rng = SplitMix64::new(seed);
    let keyspace = 4_000u64;
    for i in 0..n_ops {
        let key = rng.next_bounded(keyspace);
        match rng.next_bounded(10) {
            0..=3 => {
                let len = 20 + rng.next_bounded(100) as u32;
                dev.put(key, len)
                    .unwrap_or_else(|e| panic!("put at op {i}: {e}"));
                oracle.insert(key, len);
            }
            4 => {
                dev.delete(key)
                    .unwrap_or_else(|e| panic!("delete at op {i}: {e}"));
                oracle.remove(&key);
            }
            _ => {
                let got = dev.get(key);
                assert_eq!(
                    got.found,
                    oracle.contains_key(&key),
                    "get({key}) diverged at op {i}"
                );
            }
        }
    }
    oracle
}

/// Everything a run can externally observe: final virtual time plus every
/// reliability counter. Two identically-seeded runs must agree exactly.
fn fingerprint(dev: &dyn KvEngine) -> (u64, u64, u64, u64, u64, u64) {
    let c = dev.counters();
    let m = dev.metadata();
    (
        dev.horizon(),
        c.total_retry_reads(),
        c.program_fails(),
        c.erase_fails(),
        m.retired_blocks,
        m.free_blocks,
    )
}

/// A harsh profile: every fault class fires often enough to be exercised
/// in a 12k-op run on a 16 MiB device.
fn harsh() -> FaultModel {
    FaultModel {
        seed: 0xFA01_7EED,
        read_error_ppm: 20_000,
        read_error_ppm_per_pe: 500,
        max_read_retries: 7,
        program_fail_ppm: 5_000,
        program_fail_ppm_per_pe: 100,
        erase_fail_ppm: 10_000,
        erase_fail_ppm_per_pe: 100,
        ..FaultModel::disabled()
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    for kind in [EngineKind::Pink, EngineKind::AnyKey, EngineKind::AnyKeyPlus] {
        let mut a = faulty_device(kind, harsh());
        let mut b = faulty_device(kind, harsh());
        drive(a.as_mut(), 7, 12_000);
        drive(b.as_mut(), 7, 12_000);
        let fa = fingerprint(a.as_ref());
        let fb = fingerprint(b.as_ref());
        assert_eq!(fa, fb, "{kind}: identically-seeded runs diverged");
        assert!(fa.1 > 0, "{kind}: harsh profile must cause read retries");
    }
}

#[test]
fn different_fault_seeds_diverge() {
    // Sanity check on the fingerprint itself: a different fault seed must
    // move at least the retry counter, otherwise the determinism test
    // above would pass vacuously.
    let mut a = faulty_device(EngineKind::AnyKeyPlus, harsh());
    let mut b = faulty_device(
        EngineKind::AnyKeyPlus,
        FaultModel {
            seed: 0x0DD5_EED5,
            ..harsh()
        },
    );
    drive(a.as_mut(), 7, 12_000);
    drive(b.as_mut(), 7, 12_000);
    assert_ne!(
        fingerprint(a.as_ref()),
        fingerprint(b.as_ref()),
        "different fault seeds produced identical fingerprints"
    );
}

#[test]
fn no_keys_lost_under_faults() {
    for kind in [EngineKind::Pink, EngineKind::AnyKey, EngineKind::AnyKeyPlus] {
        let mut dev = faulty_device(kind, harsh());
        let oracle = drive(dev.as_mut(), 11, 12_000);
        for (&k, _) in oracle.iter() {
            assert!(dev.get(k).found, "{kind} lost key {k} under faults");
        }
        for k in (0..4_000u64).step_by(13) {
            if !oracle.contains_key(&k) {
                assert!(!dev.get(k).found, "{kind} resurrected key {k}");
            }
        }
        dev.check_invariants()
            .unwrap_or_else(|e| panic!("{kind} failed audit after faulty run: {e}"));
    }
}

#[test]
fn recovery_work_is_visible_in_counters() {
    // Erase failures are the rarest class (one draw per GC erase), so give
    // them a high base rate to observe actual block retirement.
    let model = FaultModel {
        seed: 0xBADB_0B5,
        program_fail_ppm: 50_000,
        erase_fail_ppm: 40_000,
        ..harsh()
    };
    let mut dev = faulty_device(EngineKind::AnyKeyPlus, model);
    // Large values over a small keyspace: total bytes written exceed the
    // device several times over, so GC runs continuously and erases (the
    // only operations that draw erase faults) happen by the hundreds.
    let mut rng = SplitMix64::new(3);
    for i in 0..8_000usize {
        let key = rng.next_bounded(1_000);
        let len = 1_024 + rng.next_bounded(2_048) as u32;
        dev.put(key, len)
            .unwrap_or_else(|e| panic!("put at op {i}: {e}"));
    }
    let c = dev.counters();
    let m = dev.metadata();
    assert!(c.total_retry_reads() > 0, "no read retries recorded");
    assert!(c.program_fails() > 0, "no program failures recorded");
    assert!(c.erase_fails() > 0, "no erase failures recorded");
    assert_eq!(
        c.erase_fails(),
        m.retired_blocks,
        "every erase failure must retire exactly one block"
    );
    dev.check_invariants()
        .unwrap_or_else(|e| panic!("audit failed after retirement: {e}"));
}

#[test]
fn disabled_model_is_byte_identical_to_default() {
    // `FaultModel::disabled()` must be a true zero-cost default: a device
    // built with it explicitly fingerprints identically to one that never
    // mentions faults at all.
    for kind in [EngineKind::Pink, EngineKind::AnyKeyPlus] {
        let mut plain = DeviceConfig::builder()
            .capacity_bytes(16 << 20)
            .page_size(8 << 10)
            .pages_per_block(16)
            .group_pages(8)
            .engine(kind)
            .key_len(20)
            .build()
            .build_engine();
        let mut gated = faulty_device(kind, FaultModel::disabled());
        drive(plain.as_mut(), 5, 8_000);
        drive(gated.as_mut(), 5, 8_000);
        assert_eq!(
            fingerprint(plain.as_ref()),
            fingerprint(gated.as_ref()),
            "{kind}: disabled fault model changed behaviour"
        );
    }
}
