/root/repo/target/release/libanykey_metrics.rlib: /root/repo/crates/metrics/src/hist.rs /root/repo/crates/metrics/src/lib.rs /root/repo/crates/metrics/src/report.rs
