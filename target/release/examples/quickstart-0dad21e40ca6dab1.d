/root/repo/target/release/examples/quickstart-0dad21e40ca6dab1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0dad21e40ca6dab1: examples/quickstart.rs

examples/quickstart.rs:
