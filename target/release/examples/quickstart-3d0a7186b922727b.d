/root/repo/target/release/examples/quickstart-3d0a7186b922727b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3d0a7186b922727b: examples/quickstart.rs

examples/quickstart.rs:
