/root/repo/target/release/deps/anykey-fa14df08de39a23c.d: src/lib.rs

/root/repo/target/release/deps/libanykey-fa14df08de39a23c.rlib: src/lib.rs

/root/repo/target/release/deps/libanykey-fa14df08de39a23c.rmeta: src/lib.rs

src/lib.rs:
