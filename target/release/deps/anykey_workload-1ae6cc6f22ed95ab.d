/root/repo/target/release/deps/anykey_workload-1ae6cc6f22ed95ab.d: crates/workload/src/lib.rs crates/workload/src/ops.rs crates/workload/src/rng.rs crates/workload/src/spec.rs crates/workload/src/zipfian.rs

/root/repo/target/release/deps/libanykey_workload-1ae6cc6f22ed95ab.rlib: crates/workload/src/lib.rs crates/workload/src/ops.rs crates/workload/src/rng.rs crates/workload/src/spec.rs crates/workload/src/zipfian.rs

/root/repo/target/release/deps/libanykey_workload-1ae6cc6f22ed95ab.rmeta: crates/workload/src/lib.rs crates/workload/src/ops.rs crates/workload/src/rng.rs crates/workload/src/spec.rs crates/workload/src/zipfian.rs

crates/workload/src/lib.rs:
crates/workload/src/ops.rs:
crates/workload/src/rng.rs:
crates/workload/src/spec.rs:
crates/workload/src/zipfian.rs:
