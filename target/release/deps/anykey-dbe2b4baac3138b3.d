/root/repo/target/release/deps/anykey-dbe2b4baac3138b3.d: src/lib.rs

/root/repo/target/release/deps/libanykey-dbe2b4baac3138b3.rlib: src/lib.rs

/root/repo/target/release/deps/libanykey-dbe2b4baac3138b3.rmeta: src/lib.rs

src/lib.rs:
