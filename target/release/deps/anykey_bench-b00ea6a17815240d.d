/root/repo/target/release/deps/anykey_bench-b00ea6a17815240d.d: crates/bench/src/main.rs

/root/repo/target/release/deps/anykey_bench-b00ea6a17815240d: crates/bench/src/main.rs

crates/bench/src/main.rs:
