/root/repo/target/release/deps/anykey-28258cf1a7c387c6.d: src/lib.rs

/root/repo/target/release/deps/libanykey-28258cf1a7c387c6.rlib: src/lib.rs

/root/repo/target/release/deps/libanykey-28258cf1a7c387c6.rmeta: src/lib.rs

src/lib.rs:
