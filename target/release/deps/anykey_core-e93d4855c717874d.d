/root/repo/target/release/deps/anykey_core-e93d4855c717874d.d: crates/core/src/lib.rs crates/core/src/anykey/mod.rs crates/core/src/anykey/compaction.rs crates/core/src/anykey/entity.rs crates/core/src/anykey/gc.rs crates/core/src/anykey/group.rs crates/core/src/anykey/level.rs crates/core/src/anykey/valuelog.rs crates/core/src/audit.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/dram.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/hash.rs crates/core/src/key.rs crates/core/src/meta_model.rs crates/core/src/pink/mod.rs crates/core/src/pink/compaction.rs crates/core/src/pink/gc.rs crates/core/src/pink/segment.rs crates/core/src/runner.rs

/root/repo/target/release/deps/libanykey_core-e93d4855c717874d.rlib: crates/core/src/lib.rs crates/core/src/anykey/mod.rs crates/core/src/anykey/compaction.rs crates/core/src/anykey/entity.rs crates/core/src/anykey/gc.rs crates/core/src/anykey/group.rs crates/core/src/anykey/level.rs crates/core/src/anykey/valuelog.rs crates/core/src/audit.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/dram.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/hash.rs crates/core/src/key.rs crates/core/src/meta_model.rs crates/core/src/pink/mod.rs crates/core/src/pink/compaction.rs crates/core/src/pink/gc.rs crates/core/src/pink/segment.rs crates/core/src/runner.rs

/root/repo/target/release/deps/libanykey_core-e93d4855c717874d.rmeta: crates/core/src/lib.rs crates/core/src/anykey/mod.rs crates/core/src/anykey/compaction.rs crates/core/src/anykey/entity.rs crates/core/src/anykey/gc.rs crates/core/src/anykey/group.rs crates/core/src/anykey/level.rs crates/core/src/anykey/valuelog.rs crates/core/src/audit.rs crates/core/src/buffer.rs crates/core/src/config.rs crates/core/src/dram.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/hash.rs crates/core/src/key.rs crates/core/src/meta_model.rs crates/core/src/pink/mod.rs crates/core/src/pink/compaction.rs crates/core/src/pink/gc.rs crates/core/src/pink/segment.rs crates/core/src/runner.rs

crates/core/src/lib.rs:
crates/core/src/anykey/mod.rs:
crates/core/src/anykey/compaction.rs:
crates/core/src/anykey/entity.rs:
crates/core/src/anykey/gc.rs:
crates/core/src/anykey/group.rs:
crates/core/src/anykey/level.rs:
crates/core/src/anykey/valuelog.rs:
crates/core/src/audit.rs:
crates/core/src/buffer.rs:
crates/core/src/config.rs:
crates/core/src/dram.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/hash.rs:
crates/core/src/key.rs:
crates/core/src/meta_model.rs:
crates/core/src/pink/mod.rs:
crates/core/src/pink/compaction.rs:
crates/core/src/pink/gc.rs:
crates/core/src/pink/segment.rs:
crates/core/src/runner.rs:
