/root/repo/target/release/deps/anykey_metrics-64ef108ed5984188.d: crates/metrics/src/lib.rs crates/metrics/src/hist.rs crates/metrics/src/report.rs

/root/repo/target/release/deps/libanykey_metrics-64ef108ed5984188.rlib: crates/metrics/src/lib.rs crates/metrics/src/hist.rs crates/metrics/src/report.rs

/root/repo/target/release/deps/libanykey_metrics-64ef108ed5984188.rmeta: crates/metrics/src/lib.rs crates/metrics/src/hist.rs crates/metrics/src/report.rs

crates/metrics/src/lib.rs:
crates/metrics/src/hist.rs:
crates/metrics/src/report.rs:
