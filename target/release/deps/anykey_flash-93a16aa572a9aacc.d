/root/repo/target/release/deps/anykey_flash-93a16aa572a9aacc.d: crates/flash/src/lib.rs crates/flash/src/address.rs crates/flash/src/allocator.rs crates/flash/src/counters.rs crates/flash/src/geometry.rs crates/flash/src/latency.rs crates/flash/src/sim.rs

/root/repo/target/release/deps/libanykey_flash-93a16aa572a9aacc.rlib: crates/flash/src/lib.rs crates/flash/src/address.rs crates/flash/src/allocator.rs crates/flash/src/counters.rs crates/flash/src/geometry.rs crates/flash/src/latency.rs crates/flash/src/sim.rs

/root/repo/target/release/deps/libanykey_flash-93a16aa572a9aacc.rmeta: crates/flash/src/lib.rs crates/flash/src/address.rs crates/flash/src/allocator.rs crates/flash/src/counters.rs crates/flash/src/geometry.rs crates/flash/src/latency.rs crates/flash/src/sim.rs

crates/flash/src/lib.rs:
crates/flash/src/address.rs:
crates/flash/src/allocator.rs:
crates/flash/src/counters.rs:
crates/flash/src/geometry.rs:
crates/flash/src/latency.rs:
crates/flash/src/sim.rs:
