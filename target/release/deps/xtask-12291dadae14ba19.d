/root/repo/target/release/deps/xtask-12291dadae14ba19.d: xtask/src/main.rs xtask/src/lint.rs

/root/repo/target/release/deps/xtask-12291dadae14ba19: xtask/src/main.rs xtask/src/lint.rs

xtask/src/main.rs:
xtask/src/lint.rs:
