/root/repo/target/debug/examples/cache_cluster-15252f8c65685982.d: examples/cache_cluster.rs

/root/repo/target/debug/examples/cache_cluster-15252f8c65685982: examples/cache_cluster.rs

examples/cache_cluster.rs:
