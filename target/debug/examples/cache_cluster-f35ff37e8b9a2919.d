/root/repo/target/debug/examples/cache_cluster-f35ff37e8b9a2919.d: examples/cache_cluster.rs

/root/repo/target/debug/examples/cache_cluster-f35ff37e8b9a2919: examples/cache_cluster.rs

examples/cache_cluster.rs:
