/root/repo/target/debug/examples/quickstart-1d37920abbd77a61.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1d37920abbd77a61: examples/quickstart.rs

examples/quickstart.rs:
