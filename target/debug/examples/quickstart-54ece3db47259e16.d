/root/repo/target/debug/examples/quickstart-54ece3db47259e16.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-54ece3db47259e16: examples/quickstart.rs

examples/quickstart.rs:
