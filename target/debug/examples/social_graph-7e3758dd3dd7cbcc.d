/root/repo/target/debug/examples/social_graph-7e3758dd3dd7cbcc.d: examples/social_graph.rs

/root/repo/target/debug/examples/social_graph-7e3758dd3dd7cbcc: examples/social_graph.rs

examples/social_graph.rs:
