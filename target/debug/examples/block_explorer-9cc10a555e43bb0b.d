/root/repo/target/debug/examples/block_explorer-9cc10a555e43bb0b.d: examples/block_explorer.rs

/root/repo/target/debug/examples/block_explorer-9cc10a555e43bb0b: examples/block_explorer.rs

examples/block_explorer.rs:
