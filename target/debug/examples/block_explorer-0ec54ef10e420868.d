/root/repo/target/debug/examples/block_explorer-0ec54ef10e420868.d: examples/block_explorer.rs

/root/repo/target/debug/examples/block_explorer-0ec54ef10e420868: examples/block_explorer.rs

examples/block_explorer.rs:
