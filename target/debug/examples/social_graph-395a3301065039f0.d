/root/repo/target/debug/examples/social_graph-395a3301065039f0.d: examples/social_graph.rs

/root/repo/target/debug/examples/social_graph-395a3301065039f0: examples/social_graph.rs

examples/social_graph.rs:
