/root/repo/target/debug/deps/oracle-0cf181d168c75098.d: tests/oracle.rs

/root/repo/target/debug/deps/oracle-0cf181d168c75098: tests/oracle.rs

tests/oracle.rs:
