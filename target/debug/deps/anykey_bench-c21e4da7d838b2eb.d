/root/repo/target/debug/deps/anykey_bench-c21e4da7d838b2eb.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/anykey_bench-c21e4da7d838b2eb: crates/bench/src/main.rs

crates/bench/src/main.rs:
