/root/repo/target/debug/deps/oracle-73a354946d04a874.d: tests/oracle.rs

/root/repo/target/debug/deps/oracle-73a354946d04a874: tests/oracle.rs

tests/oracle.rs:
