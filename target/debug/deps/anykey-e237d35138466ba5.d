/root/repo/target/debug/deps/anykey-e237d35138466ba5.d: src/lib.rs

/root/repo/target/debug/deps/libanykey-e237d35138466ba5.rlib: src/lib.rs

/root/repo/target/debug/deps/libanykey-e237d35138466ba5.rmeta: src/lib.rs

src/lib.rs:
