/root/repo/target/debug/deps/properties-a1ad899734fafe92.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a1ad899734fafe92: tests/properties.rs

tests/properties.rs:
