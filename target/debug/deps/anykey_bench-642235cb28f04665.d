/root/repo/target/debug/deps/anykey_bench-642235cb28f04665.d: crates/bench/src/lib.rs crates/bench/src/common.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/probe.rs crates/bench/src/experiments/multitenant.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table3.rs

/root/repo/target/debug/deps/anykey_bench-642235cb28f04665: crates/bench/src/lib.rs crates/bench/src/common.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig10.rs crates/bench/src/experiments/fig11.rs crates/bench/src/experiments/fig12.rs crates/bench/src/experiments/fig13.rs crates/bench/src/experiments/fig14.rs crates/bench/src/experiments/fig15.rs crates/bench/src/experiments/fig16.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/probe.rs crates/bench/src/experiments/multitenant.rs crates/bench/src/experiments/scalability.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/common.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/fig10.rs:
crates/bench/src/experiments/fig11.rs:
crates/bench/src/experiments/fig12.rs:
crates/bench/src/experiments/fig13.rs:
crates/bench/src/experiments/fig14.rs:
crates/bench/src/experiments/fig15.rs:
crates/bench/src/experiments/fig16.rs:
crates/bench/src/experiments/fig17.rs:
crates/bench/src/experiments/fig18.rs:
crates/bench/src/experiments/fig19.rs:
crates/bench/src/experiments/fig2.rs:
crates/bench/src/experiments/probe.rs:
crates/bench/src/experiments/multitenant.rs:
crates/bench/src/experiments/scalability.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table3.rs:
