/root/repo/target/debug/deps/anykey_workload-415fef29aecd43b1.d: crates/workload/src/lib.rs crates/workload/src/ops.rs crates/workload/src/rng.rs crates/workload/src/spec.rs crates/workload/src/zipfian.rs

/root/repo/target/debug/deps/libanykey_workload-415fef29aecd43b1.rlib: crates/workload/src/lib.rs crates/workload/src/ops.rs crates/workload/src/rng.rs crates/workload/src/spec.rs crates/workload/src/zipfian.rs

/root/repo/target/debug/deps/libanykey_workload-415fef29aecd43b1.rmeta: crates/workload/src/lib.rs crates/workload/src/ops.rs crates/workload/src/rng.rs crates/workload/src/spec.rs crates/workload/src/zipfian.rs

crates/workload/src/lib.rs:
crates/workload/src/ops.rs:
crates/workload/src/rng.rs:
crates/workload/src/spec.rs:
crates/workload/src/zipfian.rs:
