/root/repo/target/debug/deps/anykey_metrics-e77ebcbe7812689a.d: crates/metrics/src/lib.rs crates/metrics/src/hist.rs crates/metrics/src/report.rs

/root/repo/target/debug/deps/anykey_metrics-e77ebcbe7812689a: crates/metrics/src/lib.rs crates/metrics/src/hist.rs crates/metrics/src/report.rs

crates/metrics/src/lib.rs:
crates/metrics/src/hist.rs:
crates/metrics/src/report.rs:
