/root/repo/target/debug/deps/behavior-3473361793c41566.d: tests/behavior.rs

/root/repo/target/debug/deps/behavior-3473361793c41566: tests/behavior.rs

tests/behavior.rs:
