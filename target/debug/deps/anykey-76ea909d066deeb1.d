/root/repo/target/debug/deps/anykey-76ea909d066deeb1.d: src/lib.rs

/root/repo/target/debug/deps/libanykey-76ea909d066deeb1.rlib: src/lib.rs

/root/repo/target/debug/deps/libanykey-76ea909d066deeb1.rmeta: src/lib.rs

src/lib.rs:
