/root/repo/target/debug/deps/anykey_bench-3dc66ab1d27d8465.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/anykey_bench-3dc66ab1d27d8465: crates/bench/src/main.rs

crates/bench/src/main.rs:
