/root/repo/target/debug/deps/behavior-6c3d46b7bae7bed2.d: tests/behavior.rs

/root/repo/target/debug/deps/behavior-6c3d46b7bae7bed2: tests/behavior.rs

tests/behavior.rs:
