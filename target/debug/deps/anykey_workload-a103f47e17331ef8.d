/root/repo/target/debug/deps/anykey_workload-a103f47e17331ef8.d: crates/workload/src/lib.rs crates/workload/src/ops.rs crates/workload/src/rng.rs crates/workload/src/spec.rs crates/workload/src/zipfian.rs

/root/repo/target/debug/deps/anykey_workload-a103f47e17331ef8: crates/workload/src/lib.rs crates/workload/src/ops.rs crates/workload/src/rng.rs crates/workload/src/spec.rs crates/workload/src/zipfian.rs

crates/workload/src/lib.rs:
crates/workload/src/ops.rs:
crates/workload/src/rng.rs:
crates/workload/src/spec.rs:
crates/workload/src/zipfian.rs:
