/root/repo/target/debug/deps/anykey_flash-37405779aef3311f.d: crates/flash/src/lib.rs crates/flash/src/address.rs crates/flash/src/allocator.rs crates/flash/src/counters.rs crates/flash/src/geometry.rs crates/flash/src/latency.rs crates/flash/src/sim.rs

/root/repo/target/debug/deps/libanykey_flash-37405779aef3311f.rlib: crates/flash/src/lib.rs crates/flash/src/address.rs crates/flash/src/allocator.rs crates/flash/src/counters.rs crates/flash/src/geometry.rs crates/flash/src/latency.rs crates/flash/src/sim.rs

/root/repo/target/debug/deps/libanykey_flash-37405779aef3311f.rmeta: crates/flash/src/lib.rs crates/flash/src/address.rs crates/flash/src/allocator.rs crates/flash/src/counters.rs crates/flash/src/geometry.rs crates/flash/src/latency.rs crates/flash/src/sim.rs

crates/flash/src/lib.rs:
crates/flash/src/address.rs:
crates/flash/src/allocator.rs:
crates/flash/src/counters.rs:
crates/flash/src/geometry.rs:
crates/flash/src/latency.rs:
crates/flash/src/sim.rs:
