/root/repo/target/debug/deps/corruption-cf0c8256ffb585b4.d: tests/corruption.rs

/root/repo/target/debug/deps/corruption-cf0c8256ffb585b4: tests/corruption.rs

tests/corruption.rs:
