/root/repo/target/debug/deps/anykey_metrics-29d61ff5475eda98.d: crates/metrics/src/lib.rs crates/metrics/src/hist.rs crates/metrics/src/report.rs

/root/repo/target/debug/deps/libanykey_metrics-29d61ff5475eda98.rlib: crates/metrics/src/lib.rs crates/metrics/src/hist.rs crates/metrics/src/report.rs

/root/repo/target/debug/deps/libanykey_metrics-29d61ff5475eda98.rmeta: crates/metrics/src/lib.rs crates/metrics/src/hist.rs crates/metrics/src/report.rs

crates/metrics/src/lib.rs:
crates/metrics/src/hist.rs:
crates/metrics/src/report.rs:
