/root/repo/target/debug/deps/anykey-8273907b028c85f6.d: src/lib.rs

/root/repo/target/debug/deps/anykey-8273907b028c85f6: src/lib.rs

src/lib.rs:
