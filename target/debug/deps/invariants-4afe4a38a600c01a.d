/root/repo/target/debug/deps/invariants-4afe4a38a600c01a.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-4afe4a38a600c01a: tests/invariants.rs

tests/invariants.rs:
