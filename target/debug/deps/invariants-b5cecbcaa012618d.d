/root/repo/target/debug/deps/invariants-b5cecbcaa012618d.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-b5cecbcaa012618d: tests/invariants.rs

tests/invariants.rs:
