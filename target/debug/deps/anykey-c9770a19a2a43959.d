/root/repo/target/debug/deps/anykey-c9770a19a2a43959.d: src/lib.rs

/root/repo/target/debug/deps/anykey-c9770a19a2a43959: src/lib.rs

src/lib.rs:
