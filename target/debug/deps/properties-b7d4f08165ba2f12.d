/root/repo/target/debug/deps/properties-b7d4f08165ba2f12.d: tests/properties.rs

/root/repo/target/debug/deps/properties-b7d4f08165ba2f12: tests/properties.rs

tests/properties.rs:
