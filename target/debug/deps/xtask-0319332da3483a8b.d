/root/repo/target/debug/deps/xtask-0319332da3483a8b.d: xtask/src/main.rs xtask/src/lint.rs

/root/repo/target/debug/deps/xtask-0319332da3483a8b: xtask/src/main.rs xtask/src/lint.rs

xtask/src/main.rs:
xtask/src/lint.rs:
