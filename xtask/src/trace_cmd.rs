//! `cargo run -p xtask -- trace <trace.jsonl>` — the trace analyzer.
//!
//! Parses a JSONL trace written by `anykey-bench --trace` and prints the
//! phase-breakdown report from [`anykey_metrics::trace::analyze`]:
//! per-phase p50/p99/p999 latency attribution, the top-K longest flash
//! stall windows (ops that waited for a busy chip), and per-cause chip
//! busy/stall totals. Everything is virtual time — the report is
//! byte-identical for any `--jobs` level the trace was captured with.
//!
//! Exit codes: 0 ok, 2 usage/IO/parse error.

use anykey_metrics::trace::{analyze, parse_jsonl};

fn usage() -> i32 {
    eprintln!(
        "usage: cargo run -p xtask -- trace <trace.jsonl> [--top K]\n\
         \n\
         Summarizes a JSONL trace captured with `anykey-bench --trace`:\n\
         per-phase latency attribution (p50/p99/p999), the K longest\n\
         chip-stall windows (default 10), and per-cause interference totals."
    );
    2
}

/// Runs the `trace` subcommand over `args` (everything after the
/// subcommand name). Returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut path: Option<&str> = None;
    let mut top_k = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                top_k = v;
            }
            a if !a.starts_with('-') && path.is_none() => path = Some(a),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(path) = path else {
        return usage();
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace: {path}: {e}");
            return 2;
        }
    };
    let parsed = match parse_jsonl(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("trace: {path}: {e}");
            return 2;
        }
    };
    print!("{}", analyze(&parsed, top_k));
    0
}
