//! `cargo run -p xtask -- <lint|bench-diff> ...` — repo-specific tooling.
//!
//! - [`lint`]: static checks clippy cannot express (panic-freedom of the
//!   engine crates, checked casts in flash address arithmetic,
//!   virtual-clock discipline, public-item documentation, dependency
//!   hermeticity).
//! - [`bench_diff`]: the CI perf-regression gate comparing two
//!   `summary.json` documents from `anykey-bench` with per-metric
//!   tolerance bands.

mod bench_diff;
mod lint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => lint::run_cli(),
        Some("bench-diff") => bench_diff::run_cli(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <command>\n\
                 commands:\n\
                   lint [--deps]                         repo-specific static checks\n\
                   bench-diff <baseline> <candidate>     summary.json regression gate"
            );
            2
        }
    };
    std::process::exit(code)
}
