//! `cargo run -p xtask -- <lint|bench-diff> ...` — repo-specific tooling.
//!
//! - [`lint`]: static checks clippy cannot express (panic-freedom of the
//!   engine crates, checked casts in flash address arithmetic,
//!   virtual-clock discipline, public-item documentation, dependency
//!   hermeticity).
//! - [`bench_diff`]: the CI perf-regression gate comparing two
//!   `summary.json` documents from `anykey-bench` with per-metric
//!   tolerance bands.
//! - [`trace_cmd`]: the virtual-time trace analyzer summarizing JSONL
//!   traces captured with `anykey-bench --trace`.
//! - [`timeline_cmd`]: the timeline analyzer — burn-in/steady-state
//!   detection over JSONL timelines captured with `anykey-bench
//!   --timeline`, with a `--assert-converged` CI gate.

mod bench_diff;
mod lint;
mod timeline_cmd;
mod trace_cmd;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("lint") => lint::run_cli(),
        Some("bench-diff") => bench_diff::run_cli(&args[1..]),
        Some("trace") => trace_cmd::run_cli(&args[1..]),
        Some("timeline") => timeline_cmd::run_cli(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <command>\n\
                 commands:\n\
                   lint [--deps]                         repo-specific static checks\n\
                   bench-diff <baseline> <candidate>     summary.json regression gate\n\
                   trace <trace.jsonl> [--top K]         trace analyzer (phase breakdown)\n\
                   timeline <timeline.jsonl>             timeline analyzer (steady state)"
            );
            2
        }
    };
    std::process::exit(code)
}
