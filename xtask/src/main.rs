//! `cargo run -p xtask -- lint [--deps]` — repo-specific static checks.
//!
//! See the [`lint`] module for the rule set: panic-freedom of the engine
//! crates, checked casts in flash address arithmetic, virtual-clock
//! discipline, public-item documentation, and the dependency hermeticity
//! guard.

mod lint;

fn main() {
    std::process::exit(lint::run_cli());
}
