//! `cargo run -p xtask -- timeline <timeline.jsonl>` — the timeline
//! analyzer.
//!
//! Parses a JSONL timeline written by `anykey-bench --timeline` and prints
//! the report from [`anykey_metrics::timeline::analyze`]: per-point
//! burn-in/steady-state detection (sliding-window WAF-slope test),
//! converged-WAF values, and compaction-storm / GC-debt windows. All
//! timestamps are virtual — the report is byte-identical for any `--jobs`
//! level the timeline was captured with.
//!
//! Exit codes: 0 ok, 1 `--assert-converged` failed, 2 usage/IO/parse
//! error.

use anykey_metrics::timeline::{analyze, parse_jsonl, DEFAULT_STEADY_TOL, DEFAULT_STEADY_WINDOW};

fn usage() -> i32 {
    eprintln!(
        "usage: cargo run -p xtask -- timeline <timeline.jsonl>\n\
         \x20      [--window N] [--tol F] [--assert-converged]\n\
         \n\
         Analyzes a JSONL timeline captured with `anykey-bench --timeline`:\n\
         burn-in/steady-state window per point (a window of N samples is\n\
         steady when cumulative WAF moved < F relative; defaults N=8,\n\
         F=0.05), converged WAF, and compaction-storm / GC-debt windows.\n\
         With --assert-converged, exits 1 unless every point with at least\n\
         one full window of samples reached a steady state (the CI gate)."
    );
    2
}

/// Runs the `timeline` subcommand over `args` (everything after the
/// subcommand name). Returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut path: Option<&str> = None;
    let mut window = DEFAULT_STEADY_WINDOW;
    let mut tol = DEFAULT_STEADY_TOL;
    let mut assert_converged = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--window" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                window = v;
            }
            "--tol" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                tol = v;
            }
            "--assert-converged" => assert_converged = true,
            a if !a.starts_with('-') && path.is_none() => path = Some(a),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(path) = path else {
        return usage();
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("timeline: {path}: {e}");
            return 2;
        }
    };
    let parsed = match parse_jsonl(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("timeline: {path}: {e}");
            return 2;
        }
    };
    let a = analyze(&parsed, window, tol);
    print!("{a}");
    if assert_converged && !a.all_converged() {
        eprintln!(
            "timeline: --assert-converged failed: at least one point never reached steady state"
        );
        return 1;
    }
    0
}
