//! `cargo run -p xtask -- bench-diff <baseline> <candidate>` — the CI
//! perf-regression gate.
//!
//! Compares two `summary.json` documents written by `anykey-bench` using
//! the tolerance model in [`anykey_metrics::summary`]: every metric of the
//! discrete-virtual-time simulation (IOPS, percentiles, WAF, flash op
//! counts, virtual time) must match the baseline **exactly** — any drift
//! is a real behaviour change, not noise — while the host wall-time
//! fields (`wall_secs`, `total_wall_secs`) get a multiplicative tolerance
//! band (`--wall-band`, default 5×; getting faster never fails).
//!
//! Exit codes: 0 pass, 1 regression, 2 usage/IO/parse error.

use anykey_metrics::summary::{diff, parse, DiffReport, ParsedSummary, DEFAULT_WALL_BAND};

fn usage() -> i32 {
    eprintln!(
        "usage: cargo run -p xtask -- bench-diff <baseline.json> <candidate.json> [--wall-band F]\n\
         \n\
         Compares two anykey-bench summary.json files. Deterministic\n\
         simulation metrics must match exactly; wall-time fields pass while\n\
         candidate <= baseline * F (default {DEFAULT_WALL_BAND})."
    );
    2
}

fn load(path: &str) -> Result<ParsedSummary, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn schema_of(s: &ParsedSummary) -> &str {
    s.fields
        .iter()
        .find(|(n, _)| n == "schema_version")
        .map_or("(absent)", |(_, v)| v.as_str())
}

fn print_report(report: &DiffReport, baseline: &str, candidate: &str) {
    if report.pass() {
        println!(
            "bench-diff: PASS — {} metrics compared, no regressions ({candidate} vs {baseline})",
            report.compared
        );
        return;
    }
    for key in &report.missing {
        eprintln!("bench-diff: MISSING point `{key}` (in baseline, not in candidate)");
    }
    for key in &report.extra {
        eprintln!("bench-diff: EXTRA point `{key}` (in candidate, not in baseline)");
    }
    if !report.failures.is_empty() {
        eprintln!(
            "{:<42} {:<14} {:>16} {:>16}  {}",
            "point", "metric", "baseline", "candidate", "mode"
        );
        for f in &report.failures {
            eprintln!(
                "{:<42} {:<14} {:>16} {:>16}  {}",
                if f.key.is_empty() { "(run)" } else { &f.key },
                f.metric,
                f.baseline,
                f.candidate,
                if f.banded { "band" } else { "exact" }
            );
        }
    }
    eprintln!(
        "bench-diff: FAIL — {} failing metric(s), {} missing, {} extra point(s) out of {} compared ({candidate} vs {baseline})",
        report.failures.len(),
        report.missing.len(),
        report.extra.len(),
        report.compared
    );
}

/// Runs the `bench-diff` subcommand over `args` (everything after the
/// subcommand name). Returns the process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut paths: Vec<&str> = Vec::new();
    let mut wall_band = DEFAULT_WALL_BAND;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--wall-band" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                if v.is_nan() || v < 1.0 {
                    eprintln!("bench-diff: --wall-band must be >= 1.0");
                    return 2;
                }
                wall_band = v;
            }
            a if !a.starts_with('-') => paths.push(a),
            _ => return usage(),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths[..] else {
        return usage();
    };

    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench-diff: {r}");
            }
            return 2;
        }
    };

    // Different schema versions are incomparable documents, not a perf
    // regression: fail loudly with the versions rather than drowning the
    // user in per-field noise.
    let (bs, cs) = (schema_of(&baseline), schema_of(&candidate));
    if bs != cs {
        eprintln!(
            "bench-diff: schema_version mismatch — baseline {baseline_path} has {bs}, \
             candidate {candidate_path} has {cs}; regenerate the baseline with the \
             current anykey-bench before comparing"
        );
        return 2;
    }

    let report = diff(&baseline, &candidate, wall_band);
    print_report(&report, baseline_path, candidate_path);
    i32::from(!report.pass())
}
