//! Repo-specific static checks that clippy cannot express.
//!
//! `cargo run -p xtask -- lint` walks `crates/**/*.rs`, `tests/**/*.rs`
//! and `xtask/src/**/*.rs` and enforces:
//!
//! - **no-panic** (`rule a`): no `.unwrap()` / `.expect(` / `panic!` in
//!   non-`#[cfg(test)]` code of `anykey-core` and `anykey-flash`; fallible
//!   paths must surface typed errors.
//! - **no-bare-cast** (`rule b`): no bare `as` numeric casts in the flash
//!   address/geometry/allocator arithmetic — checked conversion helpers
//!   (`From`/`TryFrom`) are required so narrowing bugs cannot hide.
//! - **no-wall-clock** (`rule c`): no `std::time` (`Instant`, `SystemTime`)
//!   anywhere in the simulation crates, the bench harness, or integration
//!   tests; the simulation runs on virtual nanoseconds only. The sole
//!   allowlisted files are the bench scheduler (which owns all wall-time
//!   capture for `summary.json`) and the self-contained `micro` bench.
//! - **doc-public** (`rule d`): every `pub` item in crate sources carries a
//!   doc comment (or an explicit `#[doc...]` attribute).
//! - **deps-hermetic** (`rule e`, also `lint --deps`): no external (registry)
//!   dependency may enter any workspace `Cargo.toml`; everything must be an
//!   in-workspace path dependency.
//! - **trace-no-wall-clock** (`rule f`): any file with `trace` or
//!   `timeline` in its path (recorders, exporters, the analyzers, their
//!   tests — wherever they live, including `xtask`) must never mention
//!   `SystemTime`, `Instant` or `std::time`, even in test code. Trace and
//!   timeline timestamps are virtual `Ns` so both artifacts stay
//!   byte-identical across runs and `--jobs` levels; a single wall-clock
//!   stamp would break that.
//!
//! The scanner is line-based on comment/string-stripped source: precise
//! enough for these rules, fast, and dependency-free. Every rule is
//! unit-tested below against a seeded violation and a clean counterexample.

use std::fmt;
use std::path::{Path, PathBuf};

/// A single lint finding, pointing at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.msg
        )
    }
}

/// The lint rules, named as reported in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!` in non-test engine/flash code.
    NoPanic,
    /// No bare `as` numeric casts in flash address arithmetic.
    NoBareCast,
    /// No `std::time` in simulation crates.
    NoWallClock,
    /// Every public item documented.
    DocPublic,
    /// No external dependencies in any manifest.
    DepsHermetic,
    /// No wall-clock constructs anywhere in trace code (even tests).
    TraceNoWallClock,
}

impl Rule {
    /// Stable diagnostic name for the rule.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoBareCast => "no-bare-cast",
            Rule::NoWallClock => "no-wall-clock",
            Rule::DocPublic => "doc-public",
            Rule::DepsHermetic => "deps-hermetic",
            Rule::TraceNoWallClock => "trace-no-wall-clock",
        }
    }
}

/// Strips `//` comments, block comments and string/char literal contents,
/// preserving line structure so reported line numbers stay exact.
fn strip_noise(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut i = 0;
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let mut st = St::Code;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match st {
            St::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&b'/') {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    continue;
                } else if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                    st = St::Block(1);
                    i += 2;
                    continue;
                } else if c == 'r'
                    && (bytes.get(i + 1) == Some(&b'"') || bytes.get(i + 1) == Some(&b'#'))
                    && !prev_is_ident(&out)
                {
                    // Raw string r"..." or r#"..."#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        out.push('"');
                        i = j + 1;
                        continue;
                    }
                } else if c == '"' {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                    continue;
                } else if c == '\'' {
                    // Char literal or lifetime. A literal closes within a few
                    // bytes ('x', '\n', '\u{...}'); a lifetime has no closing
                    // quote nearby — scan ahead conservatively.
                    if let Some(close) = close_char_literal(bytes, i) {
                        out.push('\'');
                        out.push('\'');
                        i = close + 1;
                        continue;
                    }
                }
                out.push(c);
                i += 1;
            }
            St::Block(depth) => {
                if c == '/' && bytes.get(i + 1) == Some(&b'*') {
                    st = St::Block(depth + 1);
                    i += 2;
                } else if c == '*' && bytes.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    if c == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // A backslash-newline continuation still occupies a
                    // source line: keep the newline so line numbers stay
                    // aligned with the original file.
                    if bytes.get(i + 1) == Some(&b'\n') {
                        out.push('\n');
                    }
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                    i += 1;
                } else {
                    if c == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        out.push('"');
                        i = j;
                        continue;
                    }
                }
                if c == '\n' {
                    out.push('\n');
                }
                i += 1;
            }
        }
    }
    out
}

fn prev_is_ident(out: &str) -> bool {
    out.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `bytes[start]` opens a char literal, returns the index of its closing
/// quote; `None` for lifetimes.
fn close_char_literal(bytes: &[u8], start: usize) -> Option<usize> {
    let mut j = start + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 1;
        // Skip escape body up to a generous bound (\u{10FFFF}).
        let mut k = j;
        while k < bytes.len() && k - j < 10 && bytes[k] != b'\'' {
            k += 1;
        }
        return (bytes.get(k) == Some(&b'\'')).then_some(k);
    }
    // Plain char: exactly one char (possibly multibyte) then a quote.
    let mut k = j + 1;
    while k < bytes.len() && k - j < 4 && bytes[k] & 0xC0 == 0x80 {
        k += 1; // UTF-8 continuation bytes
    }
    (bytes.get(k) == Some(&b'\'')).then_some(k)
}

/// Returns, per line (0-based), whether it sits inside a `#[cfg(test)]`
/// item (the attribute line itself included).
fn test_region_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test") {
            // Mark until the end of the annotated item: brace-match from the
            // first `{` at or after this line (handles `mod tests { ... }`
            // and `#[cfg(test)] fn helper() { ... }`).
            let start = i;
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            'outer: while j < lines.len() {
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 => {
                            // `#[cfg(test)] mod tests;` or use-decl: one item.
                            break 'outer;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(lines.len())).skip(start) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Whether `line` contains a bare `as <numeric-type>` cast.
fn has_bare_numeric_cast(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find(" as ") {
        let after = &rest[pos + 4..];
        let ty: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if NUMERIC_TYPES.contains(&ty.as_str()) {
            return true;
        }
        rest = &rest[pos + 4..];
    }
    false
}

/// Scope of rules to apply to a file, derived from its workspace-relative
/// path.
struct Scope {
    no_panic: bool,
    no_bare_cast: bool,
    no_wall_clock: bool,
    doc_public: bool,
    trace_no_wall_clock: bool,
}

/// The only files allowed to touch `std::time`: wall-clock capture is
/// confined to the bench scheduler (which stamps `wall_secs` into
/// `summary.json`) and the self-contained `micro` bench harness.
const WALL_CLOCK_ALLOWLIST: [&str; 2] = [
    "crates/bench/src/scheduler.rs",
    "crates/bench/benches/micro.rs",
];

fn scope_for(rel: &str) -> Scope {
    // A `tests.rs` module file is pulled in via `#[cfg(test)] mod tests;`
    // in its parent: the cfg marker lives in the parent file, so treat the
    // whole file as test code (wall-clock use is still barred there).
    let whole_file_test = rel.ends_with("/tests.rs");
    let in_core_or_flash = !whole_file_test
        && (rel.starts_with("crates/core/src/") || rel.starts_with("crates/flash/src/"));
    let sim_crate = [
        "crates/core/",
        "crates/flash/",
        "crates/workload/",
        "crates/metrics/",
        "crates/bench/",
    ]
    .iter()
    .any(|p| rel.starts_with(p));
    let cast_files = [
        "crates/flash/src/address.rs",
        "crates/flash/src/geometry.rs",
        "crates/flash/src/allocator.rs",
    ];
    Scope {
        no_panic: in_core_or_flash,
        no_bare_cast: cast_files.contains(&rel),
        no_wall_clock: (sim_crate || rel.starts_with("tests/"))
            && !WALL_CLOCK_ALLOWLIST.contains(&rel),
        doc_public: !whole_file_test && rel.starts_with("crates/") && rel.contains("/src/"),
        // Path-based, not crate-based: trace and timeline code in `xtask`
        // and `tests/` is held to the same virtual-time discipline as the
        // recorders, so neither artifact can ever carry a wall-clock byte.
        trace_no_wall_clock: rel.contains("trace") || rel.contains("timeline"),
    }
}

/// Lints one Rust source file; `rel` is its workspace-relative path with
/// forward slashes.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let scope = scope_for(rel);
    let stripped = strip_noise(src);
    let mask = test_region_mask(&stripped);
    let lines: Vec<&str> = stripped.lines().collect();
    let mut out = Vec::new();
    let mut push = |line: usize, rule: Rule, msg: String| {
        out.push(Violation {
            file: rel.to_string(),
            line: line + 1,
            rule,
            msg,
        });
    };

    for (i, line) in lines.iter().enumerate() {
        let in_test = mask.get(i).copied().unwrap_or(false);
        if scope.no_panic && !in_test {
            for (needle, what) in [
                (".unwrap()", "unwrap()"),
                (".expect(", "expect()"),
                ("panic!", "panic!"),
                ("unreachable!", "unreachable!"),
            ] {
                if line.contains(needle) {
                    push(
                        i,
                        Rule::NoPanic,
                        format!("`{what}` in non-test engine code; return a typed error instead"),
                    );
                }
            }
        }
        if scope.no_bare_cast && !in_test && has_bare_numeric_cast(line) {
            push(
                i,
                Rule::NoBareCast,
                "bare `as` numeric cast in flash address arithmetic; use From/TryFrom helpers"
                    .to_string(),
            );
        }
        if scope.no_wall_clock && line.contains("std::time") {
            push(
                i,
                Rule::NoWallClock,
                "wall-clock time in a simulation crate; use virtual `Ns` timestamps".to_string(),
            );
        }
        // Applies even inside `#[cfg(test)]`: a wall-clock stamp anywhere
        // in trace or timeline code breaks byte-identical artifacts.
        if scope.trace_no_wall_clock
            && ["std::time", "SystemTime", "Instant"]
                .iter()
                .any(|n| line.contains(n))
        {
            push(
                i,
                Rule::TraceNoWallClock,
                "wall-clock construct in trace/timeline code; timestamps must be virtual `Ns`"
                    .to_string(),
            );
        }
    }

    if scope.doc_public {
        let orig_lines: Vec<&str> = src.lines().collect();
        lint_docs(rel, &lines, &orig_lines, &mask, &mut out);
    }
    out
}

/// Flags `pub` items that are not immediately preceded by a doc comment or
/// `#[doc...]` attribute. `pub(crate)`/`pub(super)` items are not public API
/// and are skipped. Items are located in the *stripped* source (so `pub fn`
/// inside doc examples or strings never matches), but doc comments are
/// looked up in the *original* source, where they still exist.
fn lint_docs(
    rel: &str,
    lines: &[&str],
    orig_lines: &[&str],
    mask: &[bool],
    out: &mut Vec<Violation>,
) {
    let pub_starts = [
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub mod ",
        "pub const ",
        "pub static ",
        "pub type ",
        "pub use ",
        "pub unsafe fn ",
        "pub async fn ",
    ];
    for (i, raw) in lines.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = raw.trim_start();
        if !pub_starts.iter().any(|p| t.starts_with(p)) {
            continue;
        }
        // Walk upwards over attributes to the nearest doc comment.
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let prev = orig_lines.get(j).map_or("", |l| l.trim_start());
            if prev.starts_with("///") || prev.starts_with("//!") || prev.starts_with("#[doc") {
                documented = true;
                break;
            }
            if prev.starts_with("#[") || prev.starts_with("#!") {
                continue; // attribute, keep walking
            }
            if prev.ends_with(']') || prev.ends_with(',') || prev.ends_with('(') {
                // Tail or middle of a multi-line attribute such as
                // `#[derive(\n    Debug,\n)]` — keep walking.
                continue;
            }
            break;
        }
        if !documented {
            let name: String = t
                .chars()
                .take_while(|c| *c != '{' && *c != ';' && *c != '(')
                .collect();
            out.push(Violation {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::DocPublic,
                msg: format!("public item `{}` has no doc comment", name.trim()),
            });
        }
    }
}

/// Lints a `Cargo.toml` for external (registry) dependencies. Every entry of
/// a dependency table must be an in-workspace path dependency (`path = ...`
/// or `.workspace = true` resolving to one).
pub fn lint_manifest(rel: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut in_dep_table = false;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            let section = line.trim_matches(['[', ']']);
            in_dep_table = section == "workspace.dependencies"
                || section.ends_with("dependencies")
                || section.contains("dependencies.");
            // `[dependencies.foo]` style table header.
            if section.starts_with("dependencies.")
                || section.starts_with("dev-dependencies.")
                || section.starts_with("build-dependencies.")
            {
                in_dep_table = true;
            }
            continue;
        }
        if !in_dep_table || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ok = (line.contains("path") && line.contains('='))
            || line.contains("workspace = true")
            || line.ends_with(".workspace = true");
        if !ok {
            out.push(Violation {
                file: rel.to_string(),
                line: i + 1,
                rule: Rule::DepsHermetic,
                msg: format!(
                    "external dependency `{}` — only in-workspace path dependencies are allowed",
                    line.split(['=', '.']).next().unwrap_or(line).trim()
                ),
            });
        }
    }
    out
}

/// Recursively collects files under `dir` with the given extension.
fn walk(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                walk(&path, ext, out);
            }
        } else if path.extension().is_some_and(|e| e == ext) {
            out.push(path);
        }
    }
}

/// Runs the source lints (and, with `--deps` or by default, the manifest
/// guard) over the workspace rooted at the parent of `xtask`'s manifest.
/// Returns the process exit code: 0 clean, 1 violations, 2 usage/IO error.
pub fn run_cli() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {}
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--deps]");
            return 2;
        }
    }
    let deps_only = args.iter().any(|a| a == "--deps");

    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: cannot locate workspace root");
            return 2;
        }
    };

    let mut violations: Vec<Violation> = Vec::new();
    if deps_only {
        lint_all_manifests(&root, &mut violations);
    } else {
        let mut files = Vec::new();
        walk(&root.join("crates"), "rs", &mut files);
        walk(&root.join("tests"), "rs", &mut files);
        walk(&root.join("xtask/src"), "rs", &mut files);
        files.sort();
        for path in files {
            let Ok(src) = std::fs::read_to_string(&path) else {
                eprintln!("xtask: unreadable file {}", path.display());
                return 2;
            };
            let rel = rel_path(&root, &path);
            violations.extend(lint_source(&rel, &src));
        }
        lint_all_manifests(&root, &mut violations);
    }

    if violations.is_empty() {
        println!("xtask lint: clean");
        0
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        1
    }
}

fn lint_all_manifests(root: &Path, violations: &mut Vec<Violation>) {
    let mut manifests = vec![root.join("Cargo.toml"), root.join("xtask/Cargo.toml")];
    let mut crate_manifests = Vec::new();
    walk(&root.join("crates"), "toml", &mut crate_manifests);
    manifests.extend(crate_manifests);
    manifests.sort();
    for path in manifests {
        if let Ok(src) = std::fs::read_to_string(&path) {
            violations.extend(lint_manifest(&rel_path(root, &path), &src));
        }
    }
}

fn workspace_root() -> Option<PathBuf> {
    // xtask always lives directly under the workspace root.
    let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    Path::new(&manifest_dir).parent().map(Path::to_path_buf)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(vs: &[Violation]) -> Vec<Rule> {
        vs.iter().map(|v| v.rule).collect()
    }

    // --- rule a: no-panic ------------------------------------------------

    #[test]
    fn whole_file_test_modules_are_exempt() {
        // Included via `#[cfg(test)] mod tests;` in the parent file, so the
        // cfg marker is not visible here.
        let src = "fn helper() {\n    Some(1).unwrap();\n}\n";
        assert!(lint_source("crates/core/src/pink/tests.rs", src).is_empty());
    }

    #[test]
    fn flags_unwrap_in_engine_code() {
        let src = "/// Doc.\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let vs = lint_source("crates/core/src/foo.rs", src);
        assert_eq!(rules(&vs), vec![Rule::NoPanic]);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn flags_expect_and_panic() {
        let src = "fn f() {\n    let _ = g().expect(\"boom\");\n    panic!(\"no\");\n}\n";
        let vs = lint_source("crates/flash/src/sim.rs", src);
        assert_eq!(rules(&vs), vec![Rule::NoPanic, Rule::NoPanic]);
    }

    #[test]
    fn allows_unwrap_inside_cfg_test() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
        assert!(lint_source("crates/core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn allows_unwrap_outside_engine_crates() {
        let src = "fn f() {\n    Some(1).unwrap();\n}\n";
        assert!(lint_source("crates/bench/src/main.rs", src).is_empty());
    }

    #[test]
    fn ignores_unwrap_in_comments_and_strings() {
        let src = "// call .unwrap() here\nfn f() {\n    let _ = \"panic! .unwrap()\";\n}\n";
        assert!(lint_source("crates/core/src/foo.rs", src).is_empty());
    }

    // --- rule b: no-bare-cast --------------------------------------------

    #[test]
    fn flags_bare_cast_in_flash_geometry() {
        let src = "fn f(x: u32) -> u64 {\n    x as u64\n}\n";
        let vs = lint_source("crates/flash/src/geometry.rs", src);
        assert_eq!(rules(&vs), vec![Rule::NoBareCast]);
        assert_eq!(vs[0].line, 2);
    }

    #[test]
    fn allows_checked_conversion_in_flash_geometry() {
        let src = "fn f(x: u32) -> u64 {\n    u64::from(x)\n}\n";
        assert!(lint_source("crates/flash/src/geometry.rs", src).is_empty());
    }

    #[test]
    fn allows_cast_outside_target_files() {
        let src = "fn f(x: u32) -> u64 {\n    x as u64\n}\n";
        assert!(lint_source("crates/flash/src/latency.rs", src)
            .iter()
            .all(|v| v.rule != Rule::NoBareCast));
    }

    #[test]
    fn as_in_identifier_or_import_is_not_a_cast() {
        let src = "use x::y as z;\nfn f() {\n    let assign = 1;\n    let _ = assign;\n}\n";
        assert!(lint_source("crates/flash/src/address.rs", src).is_empty());
    }

    // --- rule c: no-wall-clock -------------------------------------------

    #[test]
    fn flags_std_time_in_simulation_crate() {
        let src = "use std::time::Instant;\n";
        let vs = lint_source("crates/workload/src/lib.rs", src);
        assert_eq!(rules(&vs), vec![Rule::NoWallClock]);
    }

    #[test]
    fn flags_std_time_in_integration_tests() {
        let src = "fn t() {\n    let _ = std::time::SystemTime::now();\n}\n";
        let vs = lint_source("tests/oracle.rs", src);
        assert_eq!(rules(&vs), vec![Rule::NoWallClock]);
    }

    #[test]
    fn flags_std_time_in_bench_harness() {
        // Wall-clock capture must stay confined to the scheduler so CSVs
        // cannot pick up host-timing nondeterminism.
        let src = "use std::time::Instant;\n";
        let vs = lint_source("crates/bench/src/main.rs", src);
        assert_eq!(rules(&vs), vec![Rule::NoWallClock]);
    }

    #[test]
    fn allows_std_time_in_wall_clock_allowlist() {
        let src = "use std::time::Instant;\n";
        for rel in WALL_CLOCK_ALLOWLIST {
            assert!(
                lint_source(rel, src)
                    .iter()
                    .all(|v| v.rule != Rule::NoWallClock),
                "{rel} should be allowlisted"
            );
        }
    }

    // --- rule f: trace-no-wall-clock ---------------------------------------

    #[test]
    fn flags_wall_clock_in_trace_recorder() {
        let src = "fn stamp() -> u64 {\n    let _ = std::time::SystemTime::now();\n    0\n}\n";
        let vs = lint_source("crates/metrics/src/trace.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::TraceNoWallClock));
    }

    #[test]
    fn flags_instant_in_trace_code_even_inside_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = Instant::now();\n    }\n}\n";
        let vs = lint_source("xtask/src/trace_cmd.rs", src);
        assert_eq!(rules(&vs), vec![Rule::TraceNoWallClock]);
        assert_eq!(vs[0].line, 5);
    }

    #[test]
    fn trace_rule_covers_trace_integration_tests() {
        let src = "fn t() {\n    let _ = std::time::Instant::now();\n}\n";
        let vs = lint_source("tests/trace_determinism.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::TraceNoWallClock));
    }

    #[test]
    fn trace_rule_ignores_non_trace_files() {
        let src = "fn t() {\n    let _ = Instant::now();\n}\n";
        assert!(lint_source("xtask/src/bench_diff.rs", src)
            .iter()
            .all(|v| v.rule != Rule::TraceNoWallClock));
    }

    #[test]
    fn clean_trace_code_passes() {
        let src = "/// Virtual stamp.\npub fn ts(at: u64) -> u64 {\n    at\n}\n";
        assert!(lint_source("crates/flash/src/trace.rs", src)
            .iter()
            .all(|v| v.rule != Rule::TraceNoWallClock));
    }

    #[test]
    fn flags_wall_clock_in_timeline_module() {
        let src = "fn stamp() -> u64 {\n    let _ = std::time::SystemTime::now();\n    0\n}\n";
        let vs = lint_source("crates/metrics/src/timeline.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::TraceNoWallClock));
    }

    #[test]
    fn flags_instant_in_timeline_analyzer_even_inside_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let _ = Instant::now();\n    }\n}\n";
        let vs = lint_source("xtask/src/timeline_cmd.rs", src);
        assert_eq!(rules(&vs), vec![Rule::TraceNoWallClock]);
        assert_eq!(vs[0].line, 5);
    }

    #[test]
    fn timeline_rule_covers_timeline_integration_tests() {
        let src = "fn t() {\n    let _ = std::time::Instant::now();\n}\n";
        let vs = lint_source("tests/timeline_determinism.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::TraceNoWallClock));
    }

    #[test]
    fn clean_timeline_code_passes() {
        let src = "/// Virtual stamp.\npub fn ts(at: u64) -> u64 {\n    at\n}\n";
        assert!(lint_source("crates/metrics/src/timeline.rs", src)
            .iter()
            .all(|v| v.rule != Rule::TraceNoWallClock));
    }

    // --- rule d: doc-public ----------------------------------------------

    #[test]
    fn flags_undocumented_public_fn() {
        let src = "pub fn naked() {}\n";
        let vs = lint_source("crates/metrics/src/lib.rs", src);
        assert_eq!(rules(&vs), vec![Rule::DocPublic]);
        assert!(vs[0].msg.contains("naked"));
    }

    #[test]
    fn accepts_documented_public_items() {
        let src = "/// Does a thing.\npub fn documented() {}\n\n/// A type.\n#[derive(Debug)]\npub struct S;\n";
        assert!(lint_source("crates/metrics/src/lib.rs", src).is_empty());
    }

    #[test]
    fn accepts_doc_attribute() {
        let src = "#[doc(hidden)]\npub fn hook() {}\n";
        assert!(lint_source("crates/core/src/audit.rs", src).is_empty());
    }

    #[test]
    fn skips_pub_crate_items() {
        let src = "pub(crate) fn helper() {}\n";
        assert!(lint_source("crates/core/src/foo.rs", src).is_empty());
    }

    // --- rule e: deps-hermetic -------------------------------------------

    #[test]
    fn flags_registry_dependency() {
        let toml = "[package]\nname = \"x\"\n\n[dev-dependencies]\nrand = \"0.8\"\n";
        let vs = lint_manifest("crates/core/Cargo.toml", toml);
        assert_eq!(rules(&vs), vec![Rule::DepsHermetic]);
        assert!(vs[0].msg.contains("rand"));
    }

    #[test]
    fn accepts_path_and_workspace_dependencies() {
        let toml = "[workspace.dependencies]\nanykey-flash = { path = \"crates/flash\" }\n\n[dependencies]\nanykey-flash.workspace = true\n";
        assert!(lint_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[features]\ncriterion = []\n";
        assert!(lint_manifest("crates/bench/Cargo.toml", toml).is_empty());
    }

    // --- infrastructure --------------------------------------------------

    #[test]
    fn test_region_mask_covers_nested_braces() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {\n        if true {}\n    }\n}\nfn c() {}\n";
        let mask = test_region_mask(src);
        assert_eq!(mask, vec![false, true, true, true, true, true, true, false]);
    }

    #[test]
    fn strip_noise_preserves_line_numbers() {
        let src = "a\n/* multi\nline */ b\n\"str\nacross\" c\n";
        let stripped = strip_noise(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_noise_keeps_lines_of_string_continuations() {
        // `"...\` at end of line is a line continuation inside the literal;
        // the newline must survive so later line numbers stay exact.
        let src = "let s = \"a\\\n         b\";\nfn after() {}\n";
        let stripped = strip_noise(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(stripped.lines().nth(2).is_some_and(|l| l.contains("after")));
    }
}
