//! # anykey
//!
//! Facade crate for the AnyKey reproduction workspace. Re-exports the flash
//! simulator substrate, the key-value SSD engines (PinK, AnyKey, AnyKey+),
//! the Table-2 workload generators, and the metrics toolkit under one roof,
//! so examples and downstream users need a single dependency.
//!
//! See the workspace `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map.
//!
//! ```
//! use anykey::core::{DeviceConfig, EngineKind};
//!
//! let cfg = DeviceConfig::builder()
//!     .capacity_bytes(64 << 20)
//!     .engine(EngineKind::AnyKeyPlus)
//!     .build();
//! let mut dev = cfg.build_engine();
//! dev.put(42, 100);
//! assert!(dev.get(42).found);
//! ```

pub use anykey_core as core;
pub use anykey_flash as flash;
pub use anykey_metrics as metrics;
pub use anykey_workload as workload;
