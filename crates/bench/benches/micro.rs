//! Micro-benchmarks for the hot controller-side primitives the simulator
//! models: hashing (paper Section 4.6 measures 79 ns per key on a
//! Cortex-A53), group construction (merge-sort + packing), level-list
//! routing, hash-list membership, and Zipfian sampling.
//!
//! This is a self-contained wall-clock harness (`harness = false`) so the
//! tier-1 verify needs no external benchmarking framework; the off-by-default
//! `criterion` cargo feature is reserved for plugging the external harness
//! back in where registry access is available. Wall-clock time is permitted
//! here — the bench crate is measurement tooling, not part of the
//! virtual-time simulation (which `xtask lint` keeps `std::time`-free).

use std::hint::black_box;
use std::time::Instant;

use anykey_core::anykey::entity::{Entity, ValueLoc};
use anykey_core::anykey::group::GroupContent;
use anykey_core::hash::xxhash32;
use anykey_core::Key;
use anykey_workload::{KeyDist, ZipfianGen};

/// Times `f` over enough iterations to fill ~20 ms, repeats 5 times, and
/// reports the median nanoseconds per iteration.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Calibrate the iteration count on a coarse warm-up pass.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 5 || iters >= 1 << 24 {
            let target_ns = 20_000_000u128;
            let per = (dt.as_nanos() / u128::from(iters)).max(1);
            iters = u64::try_from(target_ns / per)
                .unwrap_or(u64::MAX)
                .clamp(1, 1 << 24);
            break;
        }
        iters = iters.saturating_mul(8);
    }
    let mut runs: Vec<u128> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t0.elapsed().as_nanos() / u128::from(iters)
        })
        .collect();
    runs.sort_unstable();
    println!(
        "{name:<32} {:>10} ns/iter  ({iters} iters x 5 runs)",
        runs[2]
    );
}

fn entities(n: u64) -> Vec<Entity> {
    (0..n)
        .map(|id| {
            let key = Key::new(id, 48).expect("48-byte keys hold any id");
            Entity {
                key,
                hash: key.hash32(),
                value_len: 43,
                loc: ValueLoc::Inline,
                tombstone: false,
                span_extra: 0,
            }
        })
        .collect()
}

fn bench_hash() {
    let key40 = [0x6Bu8; 40];
    bench("xxhash32_40B_key", || xxhash32(black_box(&key40), 0));
    let mut id = 0u64;
    bench("key_synthesis_and_hash", || {
        id = id.wrapping_add(1);
        Key::new(id & 0xFFFF_FFFF, 40)
            .expect("40-byte keys hold any id")
            .hash32()
    });
}

fn bench_group() {
    let ents = entities(2_000);
    bench("group_build_2000_entities", || {
        GroupContent::build(black_box(ents.clone()), 8128)
    });
    let g = GroupContent::build(entities(2_000), 8128);
    let probe = Key::new(1_234, 48).expect("48-byte keys hold any id");
    let h = probe.hash32();
    bench("group_route_and_search", || {
        let p = g.route_page(black_box(h));
        g.search_page(p, h, probe)
    });
    bench("hash_list_membership", || g.contains_hash(black_box(h)));
}

fn bench_zipfian() {
    let mut z = ZipfianGen::new(1_000_000, KeyDist::Zipfian { theta: 0.99 }, 7);
    bench("zipfian_sample", || z.next_key());
}

fn main() {
    // `cargo test` invokes bench binaries to check they run; keep that path
    // instant by only benchmarking when asked.
    if std::env::args().any(|a| a == "--bench") {
        bench_hash();
        bench_group();
        bench_zipfian();
    } else {
        println!("pass --bench to run the micro-benchmarks (cargo bench -p anykey-bench)");
    }
}
