//! Criterion micro-benchmarks for the hot controller-side primitives the
//! simulator models: hashing (paper Section 4.6 measures 79 ns per key on a
//! Cortex-A53), group construction (merge-sort + packing), level-list
//! routing, hash-list membership, and Zipfian sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use anykey_core::anykey::entity::{Entity, ValueLoc};
use anykey_core::anykey::group::GroupContent;
use anykey_core::hash::xxhash32;
use anykey_core::Key;
use anykey_workload::{KeyDist, ZipfianGen};

fn entities(n: u64) -> Vec<Entity> {
    (0..n)
        .map(|id| {
            let key = Key::new(id, 48).unwrap();
            Entity {
                key,
                hash: key.hash32(),
                value_len: 43,
                loc: ValueLoc::Inline,
                tombstone: false,
                span_extra: 0,
            }
        })
        .collect()
}

fn bench_hash(c: &mut Criterion) {
    let key40 = [0x6Bu8; 40];
    c.bench_function("xxhash32_40B_key", |b| {
        b.iter(|| xxhash32(black_box(&key40), 0))
    });
    c.bench_function("key_synthesis_and_hash", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id = id.wrapping_add(1);
            Key::new(id & 0xFFFF_FFFF, 40).unwrap().hash32()
        })
    });
}

fn bench_group(c: &mut Criterion) {
    let ents = entities(2_000);
    c.bench_function("group_build_2000_entities", |b| {
        b.iter(|| GroupContent::build(black_box(ents.clone()), 8128))
    });
    let g = GroupContent::build(entities(2_000), 8128);
    let probe = Key::new(1_234, 48).unwrap();
    let h = probe.hash32();
    c.bench_function("group_route_and_search", |b| {
        b.iter(|| {
            let p = g.route_page(black_box(h));
            g.search_page(p, h, probe)
        })
    });
    c.bench_function("hash_list_membership", |b| {
        b.iter(|| g.contains_hash(black_box(h)))
    });
}

fn bench_zipfian(c: &mut Criterion) {
    let mut z = ZipfianGen::new(1_000_000, KeyDist::Zipfian { theta: 0.99 }, 7);
    c.bench_function("zipfian_sample", |b| b.iter(|| z.next_key()));
}

criterion_group!(benches, bench_hash, bench_group, bench_zipfian);
criterion_main!(benches);
