//! `anykey-bench` — regenerates the AnyKey paper's tables and figures.
//!
//! ```text
//! anykey-bench <experiment|all> [--capacity-mb N] [--fill F]
//!              [--ops-factor F] [--out DIR] [--seed S] [--quick]
//! ```

use std::time::Instant;

use anykey_bench::common::Scale;
use anykey_bench::experiments;
use anykey_bench::ExpCtx;

fn usage() -> ! {
    eprintln!(
        "usage: anykey-bench <experiment|all> [options]\n\
         experiments: {}\n\
         options:\n\
           --capacity-mb N   device capacity in MiB (default 64)\n\
           --fill F          warm-up fill fraction (default 0.55)\n\
           --ops-factor F    measured ops as multiple of capacity (default 2.0)\n\
           --out DIR         CSV output directory (default results/)\n\
           --seed S          RNG seed\n\
           --bg-residual-ns N  residual fg wait after a bg suspend (default 100000)\n\
           --quick           small/fast smoke scale",
        experiments::ALL.join(" ")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--capacity-mb" => {
                i += 1;
                scale.capacity = args
                    .get(i)
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| usage())
                    << 20;
            }
            "--fill" => {
                i += 1;
                scale.fill = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--ops-factor" => {
                i += 1;
                scale.ops_factor = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                scale.out_dir = args.get(i).map(Into::into).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                scale.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--bg-residual-ns" => {
                i += 1;
                scale.bg_residual_ns = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--quick" => scale = scale.clone().quick(),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    let ctx = ExpCtx::new(scale);
    println!(
        "# AnyKey reproduction harness — capacity {} MiB, DRAM {} KiB (0.1%), fill {:.0}%, seed {}\n",
        ctx.scale.capacity >> 20,
        (ctx.scale.capacity / 1024) >> 10,
        ctx.scale.fill * 100.0,
        ctx.scale.seed
    );
    for id in &ids {
        let t0 = Instant::now();
        println!("## {id}");
        if !experiments::dispatch(id, &ctx) {
            eprintln!("unknown experiment '{id}'");
            usage();
        }
        println!("({id} took {:.1}s)\n", t0.elapsed().as_secs_f64());
    }
}
