//! `anykey-bench` — regenerates the AnyKey paper's tables and figures.
//!
//! ```text
//! anykey-bench <experiment|all> [--capacity-mb N] [--fill F]
//!              [--ops-factor F] [--out DIR] [--seed S] [--jobs N] [--quick]
//!              [--trace PATH] [--trace-format jsonl|chrome]
//!              [--timeline PATH] [--timeline-format jsonl|csv]
//!              [--timeline-interval NS]
//! ```
//!
//! Experiments declare [`Point`](anykey_bench::Point)s; the scheduler runs
//! them (optionally in parallel) and hands results back in declaration
//! order, so the rendered CSVs and `summary.json` are byte-identical for
//! any `--jobs` value. Wall-clock timing lives in the scheduler, not here.

use anykey_bench::common::Scale;
use anykey_bench::experiments::{self, Experiment};
use anykey_bench::scheduler::{build_summary, run_points, Point};
use anykey_bench::ExpCtx;

fn usage() -> ! {
    eprintln!(
        "usage: anykey-bench <experiment|all> [options]\n\
         experiments: {} probe\n\
         options:\n\
           --capacity-mb N   device capacity in MiB (default 64)\n\
           --fill F          warm-up fill fraction (default 0.55)\n\
           --ops-factor F    measured ops as multiple of capacity (default 2.0)\n\
           --out DIR         CSV output directory (default results/)\n\
           --seed S          RNG seed\n\
           --jobs N          worker threads for the point scheduler (default 1)\n\
           --bg-residual-ns N  residual fg wait after a bg suspend (default 100000)\n\
           --quick           small/fast smoke scale\n\
           --trace PATH      record measured-phase trace events to PATH\n\
           --trace-format F  trace file format: jsonl (default) or chrome\n\
                             (Chrome trace-event JSON; open in Perfetto)\n\
           --timeline PATH   record periodic state-sample timelines to PATH\n\
           --timeline-format F  timeline file format: jsonl (default) or csv\n\
           --timeline-interval NS  virtual ns between samples (default\n\
                             10000000 with --timeline; 0 disables sampling)",
        experiments::ids().join(" ")
    );
    std::process::exit(2)
}

/// One requested experiment and the slice of the global point list it
/// declared (empty for the imperative `probe`).
struct PlanEntry {
    id: String,
    exp: Option<&'static Experiment>,
    range: std::ops::Range<usize>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::default();
    let mut jobs = 1usize;
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut trace_format = "jsonl".to_string();
    let mut timeline_path: Option<std::path::PathBuf> = None;
    let mut timeline_format = "jsonl".to_string();
    let mut timeline_interval: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--capacity-mb" => {
                i += 1;
                scale.capacity = args
                    .get(i)
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or_else(|| usage())
                    << 20;
            }
            "--fill" => {
                i += 1;
                scale.fill = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--ops-factor" => {
                i += 1;
                scale.ops_factor = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                scale.out_dir = args.get(i).map(Into::into).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                scale.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--bg-residual-ns" => {
                i += 1;
                scale.bg_residual_ns = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--trace-format" => {
                i += 1;
                trace_format = args
                    .get(i)
                    .filter(|f| matches!(f.as_str(), "jsonl" | "chrome"))
                    .cloned()
                    .unwrap_or_else(|| usage());
            }
            "--timeline" => {
                i += 1;
                timeline_path = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--timeline-format" => {
                i += 1;
                timeline_format = args
                    .get(i)
                    .filter(|f| matches!(f.as_str(), "jsonl" | "csv"))
                    .cloned()
                    .unwrap_or_else(|| usage());
            }
            "--timeline-interval" => {
                i += 1;
                timeline_interval = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--quick" => scale = scale.clone().quick(),
            id if !id.starts_with('-') => ids.push(id.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }
    if ids.iter().any(|i| i == "all") {
        ids = experiments::ids().iter().map(|s| s.to_string()).collect();
    }

    let mut ctx = ExpCtx::new(scale);
    ctx.trace = trace_path.is_some();
    // --timeline implies a default sampling interval of 10 ms virtual;
    // --timeline-interval 0 turns sampling off entirely (zero overhead).
    ctx.timeline_interval_ns = match (timeline_interval, &timeline_path) {
        (Some(ns), _) => ns,
        (None, Some(_)) => 10_000_000,
        (None, None) => 0,
    };
    println!(
        "# AnyKey reproduction harness — capacity {} MiB, DRAM {} KiB (0.1%), fill {:.0}%, seed {}\n",
        ctx.scale.capacity >> 20,
        (ctx.scale.capacity / 1024) >> 10,
        ctx.scale.fill * 100.0,
        ctx.scale.seed
    );

    // Gather every selected experiment's declared points into one global
    // list so the scheduler can dedup and balance across all of them.
    let mut plan: Vec<PlanEntry> = Vec::new();
    let mut points: Vec<Point> = Vec::new();
    for id in &ids {
        if id == "probe" {
            plan.push(PlanEntry {
                id: id.clone(),
                exp: None,
                range: points.len()..points.len(),
            });
            continue;
        }
        let Some(exp) = experiments::by_id(id) else {
            eprintln!("unknown experiment '{id}'");
            usage();
        };
        let start = points.len();
        points.extend((exp.points)(&ctx));
        plan.push(PlanEntry {
            id: id.clone(),
            exp: Some(exp),
            range: start..points.len(),
        });
    }

    let run = run_points(&ctx, &points, jobs);

    // Harness notes (keyspace shrinks etc.) surface after the sweep, in
    // declaration order — never interleaved by worker threads.
    for r in &run.results {
        if let Some(note) = &r.note {
            eprintln!("{note}");
        }
    }

    for entry in &plan {
        println!("## {}", entry.id);
        match entry.exp {
            Some(exp) => (exp.render)(&ctx, &run.results[entry.range.clone()]),
            None => experiments::probe::run(&ctx),
        }
    }

    let summary = build_summary(&ctx, &points, &run);
    let path = ctx.scale.out("summary.json");
    match summary.write(&path) {
        Ok(()) => println!("  -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    // Trace export: each unique simulation once (its representative point),
    // in declaration order — byte-identical for any `--jobs` value.
    if let Some(path) = trace_path {
        let named: Vec<(String, Vec<anykey_metrics::TraceEvent>)> = points
            .iter()
            .zip(&run.results)
            .filter_map(|(p, r)| r.trace.as_ref().map(|t| (p.key.clone(), t.clone())))
            .collect();
        let body = match trace_format.as_str() {
            "chrome" => anykey_metrics::trace::write_chrome(&named),
            _ => anykey_metrics::trace::write_jsonl(&named),
        };
        match std::fs::write(&path, body) {
            Ok(()) => println!("  -> {} ({trace_format} trace)", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    // Timeline export: each unique simulation once, in declaration order —
    // byte-identical for any `--jobs` value, like the trace export.
    if let Some(path) = timeline_path {
        let named: Vec<(String, Vec<anykey_metrics::StateSample>)> = points
            .iter()
            .zip(&run.results)
            .filter_map(|(p, r)| r.timeline.as_ref().map(|t| (p.key.clone(), t.clone())))
            .collect();
        let body = match timeline_format.as_str() {
            "csv" => anykey_metrics::timeline::write_csv(&named),
            _ => anykey_metrics::timeline::write_jsonl(&named),
        };
        match std::fs::write(&path, body) {
            Ok(()) => println!("  -> {} ({timeline_format} timeline)", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    println!(
        "\nscheduled {} points ({} unique simulations) on {} jobs in {:.1}s",
        points.len(),
        run.executed,
        run.jobs,
        run.wall_secs
    );
}
