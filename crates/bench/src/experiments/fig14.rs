//! **Figure 14** — storage utilization: how many bytes of unique KV pairs
//! fit before the device reports full.
//!
//! Expected shape: under low-v/k workloads PinK wastes capacity on
//! flash-resident meta segments (a second copy of every key), so AnyKey
//! and AnyKey+ fit substantially more unique data.

use anykey_core::EngineKind;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, ExpCtx};
use crate::scheduler::{Point, PointResult, RunKind};

/// Declares one fill-until-full run per (workload, system).
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for w in spec::ALL {
        for kind in EngineKind::EVALUATED {
            out.push(Point::with_key(
                format!("fig14/{}/{}", w.name, kind.label()),
                "fig14",
                kind,
                w,
                RunKind::FillUntilFull,
            ));
        }
    }
    out
}

/// Renders the storage-utilization table (live unique bytes ÷ raw
/// capacity at the device-full point).
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 14: storage utilization (unique KV bytes / raw capacity)",
        &["workload", "class", "PinK", "AnyKey", "AnyKey+"],
    );
    let mut rows = results.iter();
    for w in spec::ALL {
        let mut u = [0.0f64; 3];
        for slot in u.iter_mut() {
            let meta = &rows.next().expect("fig14 row").summary.meta;
            *slot = meta.live_unique_bytes as f64 / ctx.scale.capacity as f64;
        }
        t.row([
            w.name.to_string(),
            w.category.to_string(),
            format!("{:.2}", u[0]),
            format!("{:.2}", u[1]),
            format!("{:.2}", u[2]),
        ]);
    }
    emit(&t, &ctx.scale.out("fig14.csv"));
}
