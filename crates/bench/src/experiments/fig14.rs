//! **Figure 14** — storage utilization: how many bytes of unique KV pairs
//! fit before the device reports full.
//!
//! Expected shape: under low-v/k workloads PinK wastes capacity on
//! flash-resident meta segments (a second copy of every key), so AnyKey
//! and AnyKey+ fit substantially more unique data.

use anykey_core::{EngineKind, KvError};
use anykey_metrics::Table;
use anykey_workload::{ops::fill_ops, spec, WorkloadSpec};

use crate::common::{emit, ExpCtx};

/// Fills a fresh device with unique pairs until it reports full; returns
/// the achieved utilization (unique bytes / raw capacity).
pub fn fill_until_full(ctx: &ExpCtx, kind: EngineKind, w: WorkloadSpec) -> f64 {
    let cfg = ctx.scale.device(kind, w);
    let mut dev = cfg.build_engine();
    let huge = 4 * ctx.scale.capacity / w.pair_bytes();
    for op in fill_ops(w, huge, ctx.scale.seed) {
        let at = dev.horizon();
        match dev.execute(&op, at) {
            Ok(_) => {}
            Err(KvError::DeviceFull) => break,
            Err(e) => panic!("unexpected error during fill: {e}"),
        }
    }
    dev.metadata().live_unique_bytes as f64 / ctx.scale.capacity as f64
}

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) {
    let mut t = Table::new(
        "Figure 14: storage utilization (unique KV bytes / raw capacity)",
        &["workload", "class", "PinK", "AnyKey", "AnyKey+"],
    );
    for w in spec::ALL {
        let mut u = [0.0f64; 3];
        for (i, kind) in EngineKind::EVALUATED.into_iter().enumerate() {
            u[i] = fill_until_full(ctx, kind, w);
        }
        t.row([
            w.name.to_string(),
            w.category.to_string(),
            format!("{:.2}", u[0]),
            format!("{:.2}", u[1]),
            format!("{:.2}", u[2]),
        ]);
    }
    emit(&t, &ctx.scale.out("fig14.csv"));
}
