//! `probe` — diagnostic single run: dumps latency histograms, flash
//! counters, reads-per-GET and device state for one (workload, system)
//! pair. Not a paper experiment; used to sanity-check the simulator.

use anykey_core::EngineKind;
use anykey_workload::spec;

use crate::common::ExpCtx;

/// Runs the probe for a hard-coded representative pair unless overridden
/// by `PROBE_WORKLOAD` / `PROBE_SYSTEM`.
pub fn run(ctx: &ExpCtx) {
    let wname = std::env::var("PROBE_WORKLOAD").unwrap_or_else(|_| "ZippyDB".into());
    let sname = std::env::var("PROBE_SYSTEM").unwrap_or_else(|_| "anykey+".into());
    let w = spec::by_name(&wname).expect("probe workload");
    let kind = match sname.to_ascii_lowercase().as_str() {
        "pink" => EngineKind::Pink,
        "anykey" => EngineKind::AnyKey,
        "anykey-" => EngineKind::AnyKeyNoLog,
        _ => EngineKind::AnyKeyPlus,
    };
    if std::env::var("PROBE_MODE").as_deref() == Ok("fill") {
        use anykey_core::KvError;
        let cfg = ctx.scale.device(kind, w);
        let mut dev = cfg.build_engine();
        let huge = 4 * ctx.scale.capacity / w.pair_bytes();
        let mut inserted = 0u64;
        for op in anykey_workload::ops::fill_ops(w, huge, ctx.scale.seed) {
            let at = dev.horizon();
            match dev.execute(&op, at) {
                Ok(_) => inserted += 1,
                Err(KvError::DeviceFull) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        let m = dev.metadata();
        println!(
            "fill-to-full: {} {} inserted={} unique={:.3} of capacity",
            w.name,
            kind.label(),
            inserted,
            m.live_unique_bytes as f64 / ctx.scale.capacity as f64
        );
        println!("meta: {m:#?}");
        println!("counters:\n{}", dev.counters());
        return;
    }
    let s = ctx.run_standard(kind, w);
    println!("workload={} system={}", s.workload, s.system);
    println!(
        "ops={} found={} notfound={}",
        s.report.ops, s.report.found, s.report.not_found
    );
    println!(
        "virtual span: {:.3}s  IOPS={:.0}",
        (s.report.end - s.report.start) as f64 / 1e9,
        s.report.iops()
    );
    println!("reads : {}", s.report.reads);
    println!("writes: {}", s.report.writes);
    println!(
        "reads/GET histogram: {:?} mean={:.2}",
        s.report.reads_per_get,
        s.report.mean_reads_per_get()
    );
    println!("counters:\n{}", s.report.counters);
    println!("meta: {:#?}", s.meta);
}
