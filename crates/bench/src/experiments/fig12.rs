//! **Figure 12** — IOPS for all 14 workloads under the three systems.
//!
//! Expected shape (paper): AnyKey ≈ 3.15× PinK on average over the low-v/k
//! workloads; AnyKey+ additionally beats PinK (~1.15×) on the high-v/k
//! workloads where base AnyKey is mixed.

use anykey_core::EngineKind;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, kiops, ExpCtx};
use crate::scheduler::{Point, PointResult};

/// Declares one standard run per (workload, system) over all 14 workloads
/// (shared with Figure 13 via scheduler dedup).
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for w in spec::ALL {
        for kind in EngineKind::EVALUATED {
            out.push(Point::standard("fig12", kind, w));
        }
    }
    out
}

/// Renders the IOPS table with per-class mean speedups.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 12: IOPS (virtual-time kIOPS)",
        &[
            "workload",
            "class",
            "PinK",
            "AnyKey",
            "AnyKey+",
            "AnyKey/PinK",
            "AnyKey+/PinK",
        ],
    );
    let mut low_gain = Vec::new();
    let mut high_gain_plus = Vec::new();
    let mut rows = results.iter();
    for w in spec::ALL {
        let mut iops = [0.0f64; 3];
        for slot in iops.iter_mut() {
            *slot = rows.next().expect("fig12 row").summary.report.iops();
        }
        let r_any = iops[1] / iops[0];
        let r_plus = iops[2] / iops[0];
        match w.category {
            anykey_workload::Category::LowVk => low_gain.push(r_any),
            anykey_workload::Category::HighVk => high_gain_plus.push(r_plus),
        }
        t.row([
            w.name.to_string(),
            w.category.to_string(),
            kiops(iops[0]),
            kiops(iops[1]),
            kiops(iops[2]),
            format!("{r_any:.2}x"),
            format!("{r_plus:.2}x"),
        ]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    t.row([
        "MEAN low-v/k".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.2}x", avg(&low_gain)),
        "-".to_string(),
    ]);
    t.row([
        "MEAN high-v/k".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{:.2}x", avg(&high_gain_plus)),
    ]);
    emit(&t, &ctx.scale.out("fig12.csv"));
}
