//! **Figure 15** — read latencies under varying DRAM sizes.
//!
//! The paper sweeps 32/64/96 MB of DRAM on its 64 GB device (0.05 %,
//! 0.1 %, 0.15 % of capacity); we sweep the same ratios. Expected shape:
//! the low-v/k workloads (Crypto1, ETC) degrade as DRAM shrinks (even
//! AnyKey must drop hash lists), while W-PinK barely notices.

use anykey_core::{DeviceConfig, EngineKind};
use anykey_metrics::{Csv, Table};
use anykey_workload::spec;

use crate::common::{emit, lat, ExpCtx};
use crate::scheduler::{MeasureSpec, Point, PointResult, RunKind};

const WORKLOADS: [&str; 3] = ["Crypto1", "ETC", "W-PinK"];
const DRAM_RATIOS: [(f64, &str); 3] = [(0.0005, "0.5x"), (0.001, "1x"), (0.0015, "1.5x")];

/// Declares one run per (workload, system, DRAM budget).
pub fn points(ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig15 workload");
        for kind in EngineKind::EVALUATED {
            for (ratio, label) in DRAM_RATIOS {
                // The write buffer stays at its default size so only the
                // metadata budget varies, as in the paper.
                let dram = (ctx.scale.capacity as f64 * ratio) as u64;
                let buffer = (ctx.scale.capacity / 2048).min(dram - 1);
                let cfg = DeviceConfig::builder()
                    .capacity_bytes(ctx.scale.capacity)
                    .engine(kind)
                    .key_len(w.key_len as u16)
                    .dram_bytes(dram)
                    .write_buffer_bytes(buffer)
                    .build();
                out.push(Point::with_key(
                    format!("fig15/{name}/{}/dram{label}", kind.label()),
                    "fig15",
                    kind,
                    w,
                    RunKind::Measure(MeasureSpec {
                        cfg: Some(cfg),
                        ..Default::default()
                    }),
                ));
            }
        }
    }
    out
}

/// Renders the p95-vs-DRAM table and CDFs.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 15: p95 read latency vs DRAM size (ratio of the default 0.1%)",
        &["workload", "system", "DRAM 0.5x", "DRAM 1x", "DRAM 1.5x"],
    );
    let mut cdf = Csv::new("workload,system,series,latency_us,cdf");
    let mut rows = results.iter();
    for name in WORKLOADS {
        for kind in EngineKind::EVALUATED {
            let mut cells = vec![name.to_string(), kind.label().to_string()];
            for (_, label) in DRAM_RATIOS {
                let s = &rows.next().expect("fig15 row").summary;
                cells.push(lat(s.report.reads.p95()));
                ctx.dump_cdf(&mut cdf, name, kind.label(), label, &s.report.reads);
            }
            t.row(cells);
        }
    }
    emit(&t, &ctx.scale.out("fig15.csv"));
    cdf.write(ctx.scale.out("fig15_cdf.csv")).ok();
}
