//! **Figure 2** — the motivating observation: PinK's p95 read tail latency
//! and IOPS degrade as the value-to-key ratio shrinks (values 20 B → 1280 B
//! over a fixed 40 B key).

use anykey_core::EngineKind;
use anykey_metrics::{Csv, Table};
use anykey_workload::WorkloadSpec;

use crate::common::{emit, kiops, lat, ExpCtx};
use crate::scheduler::{MeasureSpec, Point, PointResult, RunKind};

const VALUES: [u32; 7] = [20, 40, 80, 160, 320, 640, 1280];

/// Declares one PinK run per value size.
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    VALUES
        .iter()
        .map(|&v| {
            Point::with_key(
                format!("fig2/40-{v}/PinK"),
                "fig2",
                EngineKind::Pink,
                WorkloadSpec::synthetic("vk-sweep", 40, v),
                RunKind::Measure(MeasureSpec::default()),
            )
        })
        .collect()
}

/// Renders the v/k sweep table and latency CDFs.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 2: PinK under varying value-to-key ratios (key = 40B)",
        &["v/k", "p50 read", "p95 read", "p99 read", "kIOPS"],
    );
    let mut cdf = Csv::new("workload,system,series,latency_us,cdf");
    let mut rows = results.iter();
    for v in VALUES {
        let s = &rows.next().expect("fig2 row").summary;
        let label = format!("{}/40", v);
        t.row([
            label.clone(),
            lat(s.report.reads.p50()),
            lat(s.report.reads.p95()),
            lat(s.report.reads.p99()),
            kiops(s.report.iops()),
        ]);
        ctx.dump_cdf(&mut cdf, "vk-sweep", "PinK", &label, &s.report.reads);
    }
    emit(&t, &ctx.scale.out("fig2.csv"));
    cdf.write(ctx.scale.out("fig2_cdf.csv")).ok();
}
