//! One module per paper table/figure. Each exposes
//! `pub fn run(ctx: &ExpCtx)`.

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig2;
pub mod probe;
pub mod multitenant;
pub mod scalability;
pub mod table1;
pub mod table3;

use crate::common::ExpCtx;

/// All experiment ids in paper order.
pub const ALL: [&str; 15] = [
    "table1", "fig2", "table3", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "scalability", "multitenant",
];

/// Dispatches one experiment by id; returns false for unknown ids.
pub fn dispatch(id: &str, ctx: &ExpCtx) -> bool {
    match id {
        "table1" => table1::run(ctx),
        "fig2" => fig2::run(ctx),
        "table3" => table3::run(ctx),
        "fig10" => fig10::run(ctx),
        "fig11" => fig11::run(ctx),
        "fig12" => fig12::run(ctx),
        "fig13" => fig13::run(ctx),
        "fig14" => fig14::run(ctx),
        "fig15" => fig15::run(ctx),
        "fig16" => fig16::run(ctx),
        "fig17" => fig17::run(ctx),
        "fig18" => fig18::run(ctx),
        "fig19" => fig19::run(ctx),
        "scalability" => scalability::run(ctx),
        "multitenant" => multitenant::run(ctx),
        "probe" => probe::run(ctx),
        _ => return false,
    }
    true
}
