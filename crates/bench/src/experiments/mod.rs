//! One module per paper table/figure. Each exposes
//! `pub fn run(ctx: &ExpCtx)`.

/// Media fault-injection sweep: graceful degradation under read/program/
/// erase faults (not a paper figure).
pub mod fault;
/// Figure 10: throughput across the Table 1 workloads.
pub mod fig10;
/// Figure 11: read/write latency distributions.
pub mod fig11;
/// Figure 12: flash reads per GET.
pub mod fig12;
/// Figure 13: total page writes per engine.
pub mod fig13;
/// Figure 14: DRAM hit behaviour under varying budgets.
pub mod fig14;
/// Figure 15: scan throughput.
pub mod fig15;
/// Figure 16: sensitivity to value/key ratio.
pub mod fig16;
/// Figure 17: AnyKey+ log-relief comparison.
pub mod fig17;
/// Figure 18: tail latency under mixed load.
pub mod fig18;
/// Figure 19: capacity-utilisation sweep.
pub mod fig19;
/// Figure 2: motivating metadata-size comparison.
pub mod fig2;
/// Multi-tenant workload mix experiment.
pub mod multitenant;
/// Diagnostic probe runs (not a paper figure).
pub mod probe;
/// Device-size scalability sweep.
pub mod scalability;
/// Table 1: workload characteristics.
pub mod table1;
/// Table 3: compaction/GC flash traffic.
pub mod table3;

use crate::common::ExpCtx;

/// All experiment ids in paper order.
pub const ALL: [&str; 16] = [
    "table1",
    "fig2",
    "table3",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "scalability",
    "multitenant",
    "fault",
];

/// Dispatches one experiment by id; returns false for unknown ids.
pub fn dispatch(id: &str, ctx: &ExpCtx) -> bool {
    match id {
        "table1" => table1::run(ctx),
        "fig2" => fig2::run(ctx),
        "table3" => table3::run(ctx),
        "fig10" => fig10::run(ctx),
        "fig11" => fig11::run(ctx),
        "fig12" => fig12::run(ctx),
        "fig13" => fig13::run(ctx),
        "fig14" => fig14::run(ctx),
        "fig15" => fig15::run(ctx),
        "fig16" => fig16::run(ctx),
        "fig17" => fig17::run(ctx),
        "fig18" => fig18::run(ctx),
        "fig19" => fig19::run(ctx),
        "scalability" => scalability::run(ctx),
        "multitenant" => multitenant::run(ctx),
        "fault" => fault::run(ctx),
        "probe" => probe::run(ctx),
        _ => return false,
    }
    true
}
