//! One module per paper table/figure. Each exposes a declarative
//! [`points`](Experiment::points) list (the simulations it needs) and a
//! [`render`](Experiment::render) pass that turns the scheduled results —
//! delivered in declaration order — into tables and CSVs. The scheduler
//! in [`crate::scheduler`] owns all execution; no experiment runs a
//! simulation inline.

/// Media fault-injection sweep: graceful degradation under read/program/
/// erase faults (not a paper figure).
pub mod fault;
/// Figure 10: throughput across the Table 1 workloads.
pub mod fig10;
/// Figure 11: read/write latency distributions.
pub mod fig11;
/// Figure 12: flash reads per GET.
pub mod fig12;
/// Figure 13: total page writes per engine.
pub mod fig13;
/// Figure 14: DRAM hit behaviour under varying budgets.
pub mod fig14;
/// Figure 15: scan throughput.
pub mod fig15;
/// Figure 16: sensitivity to value/key ratio.
pub mod fig16;
/// Figure 17: AnyKey+ log-relief comparison.
pub mod fig17;
/// Figure 18: tail latency under mixed load.
pub mod fig18;
/// Figure 19: capacity-utilisation sweep.
pub mod fig19;
/// Figure 2: motivating metadata-size comparison.
pub mod fig2;
/// Multi-tenant workload mix experiment.
pub mod multitenant;
/// Diagnostic probe runs (not a paper figure; imperative, not scheduled).
pub mod probe;
/// Device-size scalability sweep.
pub mod scalability;
/// Table 1: workload characteristics.
pub mod table1;
/// Table 3: compaction/GC flash traffic.
pub mod table3;

use crate::common::ExpCtx;
use crate::scheduler::{Point, PointResult};

/// A declarative experiment: a point list plus an order-preserving
/// renderer.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Stable experiment id as used on the command line.
    pub id: &'static str,
    /// Declares the simulations this experiment needs, in row order.
    pub points: fn(&ExpCtx) -> Vec<Point>,
    /// Renders tables/CSVs from the results, which arrive in exactly the
    /// order [`Experiment::points`] declared them.
    pub render: fn(&ExpCtx, &[PointResult]),
}

/// All experiments in paper order.
pub const ALL: [Experiment; 16] = [
    Experiment {
        id: "table1",
        points: table1::points,
        render: table1::render,
    },
    Experiment {
        id: "fig2",
        points: fig2::points,
        render: fig2::render,
    },
    Experiment {
        id: "table3",
        points: table3::points,
        render: table3::render,
    },
    Experiment {
        id: "fig10",
        points: fig10::points,
        render: fig10::render,
    },
    Experiment {
        id: "fig11",
        points: fig11::points,
        render: fig11::render,
    },
    Experiment {
        id: "fig12",
        points: fig12::points,
        render: fig12::render,
    },
    Experiment {
        id: "fig13",
        points: fig13::points,
        render: fig13::render,
    },
    Experiment {
        id: "fig14",
        points: fig14::points,
        render: fig14::render,
    },
    Experiment {
        id: "fig15",
        points: fig15::points,
        render: fig15::render,
    },
    Experiment {
        id: "fig16",
        points: fig16::points,
        render: fig16::render,
    },
    Experiment {
        id: "fig17",
        points: fig17::points,
        render: fig17::render,
    },
    Experiment {
        id: "fig18",
        points: fig18::points,
        render: fig18::render,
    },
    Experiment {
        id: "fig19",
        points: fig19::points,
        render: fig19::render,
    },
    Experiment {
        id: "scalability",
        points: scalability::points,
        render: scalability::render,
    },
    Experiment {
        id: "multitenant",
        points: multitenant::points,
        render: multitenant::render,
    },
    Experiment {
        id: "fault",
        points: fault::points,
        render: fault::render,
    },
];

/// Looks an experiment up by id.
pub fn by_id(id: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.id == id)
}

/// All experiment ids, for usage strings.
pub fn ids() -> Vec<&'static str> {
    ALL.iter().map(|e| e.id).collect()
}
