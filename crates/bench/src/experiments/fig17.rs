//! **Figure 17** — ETC latency under varying key-popularity distributions.
//!
//! Expected shape: as the distribution evens out (lower Zipfian θ, or
//! uniform), more requests land on the lower LSM levels whose metadata
//! PinK keeps in flash, so PinK degrades; AnyKey/AnyKey+ stay uniform
//! because their metadata covers every level from DRAM.

use anykey_core::EngineKind;
use anykey_metrics::{Csv, Table};
use anykey_workload::{spec, KeyDist};

use crate::common::{emit, lat, ExpCtx};
use crate::scheduler::{MeasureSpec, Point, PointResult, RunKind};

const DISTS: [(&str, KeyDist); 4] = [
    ("uniform", KeyDist::Uniform),
    ("zipf-0.6", KeyDist::Zipfian { theta: 0.6 }),
    ("zipf-0.8", KeyDist::Zipfian { theta: 0.8 }),
    ("zipf-0.99", KeyDist::Zipfian { theta: 0.99 }),
];

/// Declares one ETC run per (system, key distribution).
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    let w = spec::by_name("ETC").expect("fig17 workload");
    let mut out = Vec::new();
    for kind in EngineKind::EVALUATED {
        for (label, dist) in DISTS.clone() {
            out.push(Point::with_key(
                format!("fig17/ETC/{}/{label}", kind.label()),
                "fig17",
                kind,
                w,
                RunKind::Measure(MeasureSpec {
                    dist,
                    ..Default::default()
                }),
            ));
        }
    }
    out
}

/// Renders the p95-vs-distribution table and CDFs.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 17: ETC p95 read latency vs key distribution",
        &["system", "uniform", "zipf-0.6", "zipf-0.8", "zipf-0.99"],
    );
    let mut cdf = Csv::new("workload,system,series,latency_us,cdf");
    let mut rows = results.iter();
    for kind in EngineKind::EVALUATED {
        let mut cells = vec![kind.label().to_string()];
        for (label, _) in DISTS.clone() {
            let s = &rows.next().expect("fig17 row").summary;
            cells.push(lat(s.report.reads.p95()));
            ctx.dump_cdf(&mut cdf, "ETC", kind.label(), label, &s.report.reads);
        }
        t.row(cells);
    }
    emit(&t, &ctx.scale.out("fig17.csv"));
    cdf.write(ctx.scale.out("fig17_cdf.csv")).ok();
}
