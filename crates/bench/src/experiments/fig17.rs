//! **Figure 17** — ETC latency under varying key-popularity distributions.
//!
//! Expected shape: as the distribution evens out (lower Zipfian θ, or
//! uniform), more requests land on the lower LSM levels whose metadata
//! PinK keeps in flash, so PinK degrades; AnyKey/AnyKey+ stay uniform
//! because their metadata covers every level from DRAM.

use anykey_core::EngineKind;
use anykey_metrics::{Csv, Table};
use anykey_workload::{spec, KeyDist};

use crate::common::{emit, lat, ExpCtx};

const DISTS: [(&str, KeyDist); 4] = [
    ("uniform", KeyDist::Uniform),
    ("zipf-0.6", KeyDist::Zipfian { theta: 0.6 }),
    ("zipf-0.8", KeyDist::Zipfian { theta: 0.8 }),
    ("zipf-0.99", KeyDist::Zipfian { theta: 0.99 }),
];

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) {
    let w = spec::by_name("ETC").expect("fig17 workload");
    let mut t = Table::new(
        "Figure 17: ETC p95 read latency vs key distribution",
        &["system", "uniform", "zipf-0.6", "zipf-0.8", "zipf-0.99"],
    );
    let mut cdf = Csv::new("workload,system,series,latency_us,cdf");
    for kind in EngineKind::EVALUATED {
        let mut cells = vec![kind.label().to_string()];
        for (label, dist) in DISTS.clone() {
            let s = ctx.run_with(kind, w, dist, 0.2, None);
            cells.push(lat(s.report.reads.quantile(0.95)));
            ctx.dump_cdf(&mut cdf, "ETC", kind.label(), label, &s.report.reads);
        }
        t.row(cells);
    }
    emit(&t, &ctx.scale.out("fig17.csv"));
    cdf.write(ctx.scale.out("fig17_cdf.csv")).ok();
}
