//! **Table 1** — metadata size of PinK vs AnyKey under varying (low)
//! value-to-key ratios, assuming the device is full of KV pairs.
//!
//! The paper evaluates v/k ∈ {4.0 (160 B/40 B), 2.0 (120 B/60 B),
//! 1.0 (80 B/80 B)} on a 64 GB SSD with 64 MB DRAM. We print the analytic
//! model at the paper's scale *and* an empirical measurement from real
//! engine instances at the harness scale, so the model is cross-checked.

use anykey_core::meta_model::MetaModel;
use anykey_core::EngineKind;
use anykey_metrics::Table;
use anykey_workload::WorkloadSpec;

use crate::common::{emit, ExpCtx};
use crate::scheduler::{Point, PointResult, RunKind};

const ROWS: [(&str, u32, u32); 3] = [
    ("4.0 (160B/40B)", 40, 160),
    ("2.0 (120B/60B)", 60, 120),
    ("1.0 (80B/80B)", 80, 80),
];

/// The engines the measured columns compare (AnyKey+ shares AnyKey's
/// metadata layout, so the paper compares two).
const KINDS: [EngineKind; 2] = [EngineKind::Pink, EngineKind::AnyKey];

fn mb(b: u64) -> String {
    format!("{:.1}MB", b as f64 / (1 << 20) as f64)
}

fn kb(b: u64) -> String {
    format!("{:.1}KB", b as f64 / 1024.0)
}

/// Declares the measured-columns points: one warm-up-only run per
/// (v/k row, engine).
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for (_, k, v) in ROWS {
        let spec = WorkloadSpec::synthetic("table1", k, v);
        for kind in KINDS {
            out.push(Point::with_key(
                format!("table1/vk{k}-{v}/{}", kind.label()),
                "table1",
                kind,
                spec,
                RunKind::WarmUpOnly { cfg: None },
            ));
        }
    }
    out
}

/// Renders the analytic model table and the measured table.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    // (a) Analytic model at the paper's scale: 64 GB device, 64 MB DRAM.
    let mut t = Table::new(
        "Table 1 (model @ paper scale 64GB/64MB): metadata demand",
        &[
            "v/k",
            "PinK level lists",
            "PinK meta segments",
            "PinK sum",
            "AnyKey level lists",
            "AnyKey hash lists",
            "AnyKey sum",
        ],
    );
    for (label, k, v) in ROWS {
        let m = MetaModel::paper(64 << 30, k as u64, v as u64);
        let s = m.sizes();
        t.row([
            label.to_string(),
            mb(s.pink_level_lists),
            mb(s.pink_meta_segments),
            mb(s.pink_sum()),
            mb(s.anykey_level_lists),
            mb(s.anykey_hash_lists),
            mb(s.anykey_sum()),
        ]);
    }
    emit(&t, &ctx.scale.out("table1_model.csv"));

    // (b) Empirical check: real engines at harness scale, filled to the
    // standard fraction.
    let mut e = Table::new(
        format!(
            "Table 1 (measured @ {}MB device, {}KB DRAM)",
            ctx.scale.capacity >> 20,
            (ctx.scale.capacity / 1024) >> 10
        ),
        &[
            "v/k",
            "system",
            "level lists",
            "meta segs (DRAM)",
            "meta segs (flash)",
            "hash lists (resident/total)",
            "DRAM used/cap",
        ],
    );
    let mut rows = results.iter();
    for (label, _, _) in ROWS {
        for kind in KINDS {
            let m = &rows.next().expect("table1 row").summary.meta;
            e.row([
                label.to_string(),
                kind.label().to_string(),
                kb(m.level_list_bytes),
                kb(m.meta_segment_dram_bytes),
                kb(m.meta_segment_flash_bytes),
                format!(
                    "{}/{}",
                    kb(m.hash_list_resident_bytes),
                    kb(m.hash_list_total_bytes)
                ),
                format!("{}/{}", kb(m.dram_used), kb(m.dram_capacity)),
            ]);
        }
    }
    emit(&e, &ctx.scale.out("table1_measured.csv"));
}
