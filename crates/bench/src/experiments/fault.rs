//! **Fault sweep** — graceful degradation under injected media faults
//! (not a paper figure; the paper evaluates on FEMU's perfect media).
//!
//! Sweeps the raw read-error rate (program/erase failure rates scale with
//! it — see [`anykey_flash::FaultModel::uniform`]) and reports throughput,
//! read p99, and the reliability counters for PinK and AnyKey+. Expected
//! shape: both engines complete every rate without panicking; retries and
//! retirements grow with the rate; throughput and p99 degrade smoothly
//! rather than falling off a cliff.

use anykey_core::EngineKind;
use anykey_flash::FaultModel;
use anykey_metrics::report::{fmt_count, fmt_ppm};
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, kiops, lat, ExpCtx};

/// Read-error rates swept, in errors per million page reads.
const RATES_PPM: [u32; 5] = [0, 100, 500, 2_000, 10_000];

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) {
    let Some(w) = spec::ALL.iter().copied().find(|w| w.name == "UDB") else {
        eprintln!("fault: UDB workload spec missing");
        return;
    };
    let mut t = Table::new(
        "Fault sweep: throughput and tail latency vs raw read-error rate (UDB)",
        &[
            "system",
            "read-err",
            "kIOPS",
            "p99 read",
            "p99 write",
            "retries",
            "prog-fails",
            "retired",
            "free-blocks",
        ],
    );
    for kind in [EngineKind::Pink, EngineKind::AnyKeyPlus] {
        for ppm in RATES_PPM {
            let fault = if ppm == 0 {
                FaultModel::disabled()
            } else {
                FaultModel::uniform(ctx.scale.seed ^ u64::from(ppm), ppm)
            };
            let cfg = ctx.scale.device_faulty(kind, w, fault);
            let s = ctx.run_with(kind, w, anykey_workload::KeyDist::default(), 0.2, Some(cfg));
            t.row([
                kind.to_string(),
                fmt_ppm(ppm),
                kiops(s.report.iops()),
                lat(s.report.reads.quantile(0.99)),
                lat(s.report.writes.quantile(0.99)),
                fmt_count(s.report.media_retries()),
                fmt_count(s.meta.program_fails),
                fmt_count(s.meta.retired_blocks),
                fmt_count(s.meta.free_blocks),
            ]);
        }
    }
    emit(&t, &ctx.scale.out("fault.csv"));
}
