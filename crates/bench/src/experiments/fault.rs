//! **Fault sweep** — graceful degradation under injected media faults
//! (not a paper figure; the paper evaluates on FEMU's perfect media).
//!
//! Sweeps the raw read-error rate (program/erase failure rates scale with
//! it — see [`anykey_flash::FaultModel::uniform`]) and reports throughput,
//! read p99, and the reliability counters for PinK and AnyKey+. Expected
//! shape: both engines complete every rate without panicking; retries and
//! retirements grow with the rate; throughput and p99 degrade smoothly
//! rather than falling off a cliff.

use anykey_core::EngineKind;
use anykey_flash::FaultModel;
use anykey_metrics::report::{fmt_count, fmt_ppm};
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, kiops, lat, ExpCtx};
use crate::scheduler::{MeasureSpec, Point, PointResult, RunKind};

/// Read-error rates swept, in errors per million page reads.
const RATES_PPM: [u32; 5] = [0, 100, 500, 2_000, 10_000];
const SYSTEMS: [EngineKind; 2] = [EngineKind::Pink, EngineKind::AnyKeyPlus];

/// Declares one UDB run per (system, read-error rate).
pub fn points(ctx: &ExpCtx) -> Vec<Point> {
    let w = spec::by_name("UDB").expect("fault workload");
    let mut out = Vec::new();
    for kind in SYSTEMS {
        for ppm in RATES_PPM {
            let fault = if ppm == 0 {
                FaultModel::disabled()
            } else {
                FaultModel::uniform(ctx.scale.seed ^ u64::from(ppm), ppm)
            };
            let cfg = ctx.scale.device_faulty(kind, w, fault);
            out.push(Point::with_key(
                format!("fault/UDB/{}/{ppm}ppm", kind.label()),
                "fault",
                kind,
                w,
                RunKind::Measure(MeasureSpec {
                    cfg: Some(cfg),
                    ..Default::default()
                }),
            ));
        }
    }
    out
}

/// Renders the degradation table.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Fault sweep: throughput and tail latency vs raw read-error rate (UDB)",
        &[
            "system",
            "read-err",
            "kIOPS",
            "p99 read",
            "p99 write",
            "retries",
            "prog-fails",
            "retired",
            "free-blocks",
        ],
    );
    let mut rows = results.iter();
    for kind in SYSTEMS {
        for ppm in RATES_PPM {
            let s = &rows.next().expect("fault row").summary;
            t.row([
                kind.to_string(),
                fmt_ppm(ppm),
                kiops(s.report.iops()),
                lat(s.report.reads.p99()),
                lat(s.report.writes.p99()),
                fmt_count(s.report.media_retries()),
                fmt_count(s.meta.program_fails),
                fmt_count(s.meta.retired_blocks),
                fmt_count(s.meta.free_blocks),
            ]);
        }
    }
    emit(&t, &ctx.scale.out("fault.csv"));
}
