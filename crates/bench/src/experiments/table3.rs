//! **Table 3** — compaction and GC page reads/writes for two low-v/k
//! workloads (Crypto1, Cache) and two high-v/k workloads (W-PinK, KVSSD)
//! under the three systems.
//!
//! Expected shape (paper): PinK's GC reads dominate everything; AnyKey and
//! AnyKey+ have (near-)zero GC traffic; AnyKey pays extra compaction
//! traffic on high-v/k workloads, which AnyKey+ recovers.

use anykey_core::EngineKind;
use anykey_flash::OpCause;
use anykey_metrics::report::fmt_count;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, ExpCtx};
use crate::scheduler::{Point, PointResult};

const WORKLOADS: [&str; 4] = ["Crypto1", "Cache", "W-PinK", "KVSSD"];

/// Declares one standard run per (workload, system).
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("table3 workload");
        for kind in EngineKind::EVALUATED {
            out.push(Point::standard("table3", kind, w));
        }
    }
    out
}

/// Renders the flash-traffic table.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Table 3: compaction and GC page reads/writes",
        &[
            "workload",
            "system",
            "compaction read",
            "compaction write",
            "gc read",
            "gc write",
            "log read",
            "log write",
            "meta read",
            "erases",
        ],
    );
    let mut rows = results.iter();
    for name in WORKLOADS {
        for kind in EngineKind::EVALUATED {
            let s = &rows.next().expect("table3 row").summary;
            let c = &s.report.counters;
            t.row([
                name.to_string(),
                kind.label().to_string(),
                fmt_count(c.reads(OpCause::CompactionRead)),
                fmt_count(c.writes(OpCause::CompactionWrite)),
                fmt_count(c.reads(OpCause::GcRead)),
                fmt_count(c.writes(OpCause::GcWrite)),
                fmt_count(c.reads(OpCause::LogRead)),
                fmt_count(c.writes(OpCause::LogWrite)),
                fmt_count(c.reads(OpCause::MetaRead)),
                fmt_count(c.erases()),
            ]);
        }
    }
    emit(&t, &ctx.scale.out("table3.csv"));
}
