//! **Table 3** — compaction and GC page reads/writes for two low-v/k
//! workloads (Crypto1, Cache) and two high-v/k workloads (W-PinK, KVSSD)
//! under the three systems.
//!
//! Expected shape (paper): PinK's GC reads dominate everything; AnyKey and
//! AnyKey+ have (near-)zero GC traffic; AnyKey pays extra compaction
//! traffic on high-v/k workloads, which AnyKey+ recovers.

use anykey_core::EngineKind;
use anykey_flash::OpCause;
use anykey_metrics::report::fmt_count;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, ExpCtx};

const WORKLOADS: [&str; 4] = ["Crypto1", "Cache", "W-PinK", "KVSSD"];

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) {
    let mut t = Table::new(
        "Table 3: compaction and GC page reads/writes",
        &[
            "workload",
            "system",
            "compaction read",
            "compaction write",
            "gc read",
            "gc write",
            "log read",
            "log write",
            "meta read",
            "erases",
        ],
    );
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("table3 workload");
        for kind in EngineKind::EVALUATED {
            let s = ctx.run_standard(kind, w);
            let c = &s.report.counters;
            t.row([
                name.to_string(),
                kind.label().to_string(),
                fmt_count(c.reads(OpCause::CompactionRead)),
                fmt_count(c.writes(OpCause::CompactionWrite)),
                fmt_count(c.reads(OpCause::GcRead)),
                fmt_count(c.writes(OpCause::GcWrite)),
                fmt_count(c.reads(OpCause::LogRead)),
                fmt_count(c.writes(OpCause::LogWrite)),
                fmt_count(c.reads(OpCause::MetaRead)),
                fmt_count(c.erases()),
            ]);
        }
    }
    emit(&t, &ctx.scale.out("table3.csv"));
}
