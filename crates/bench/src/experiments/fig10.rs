//! **Figure 10** — CDFs of read latency for the seven representative
//! workloads (five low-v/k, two high-v/k) under the three systems.
//!
//! Expected shape: PinK's tails explode on the low-v/k set (metadata in
//! flash ⇒ extra reads per GET); AnyKey/AnyKey+ collapse them; on the
//! high-v/k set all three are comparable.

use anykey_core::EngineKind;
use anykey_metrics::{Csv, Table};
use anykey_workload::spec;

use crate::common::{emit, lat, ExpCtx};
use crate::scheduler::{Point, PointResult};

/// The paper's Figure 10 workload set, in order (a)–(g).
pub const WORKLOADS: [&str; 7] = [
    "RTDATA", "Crypto1", "ZippyDB", "Cache15", "Cache", "W-PinK", "KVSSD",
];

/// Declares one standard run per (workload, system). These are the same
/// simulations Figure 11 consumes; the scheduler deduplicates them when
/// both experiments are in one sweep.
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig10 workload");
        for kind in EngineKind::EVALUATED {
            out.push(Point::standard("fig10", kind, w));
        }
    }
    out
}

/// Renders the percentile table and the latency CDFs.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 10: read latency percentiles",
        &["workload", "system", "p50", "p90", "p95", "p99", "max"],
    );
    let mut cdf = Csv::new("workload,system,series,latency_us,cdf");
    let mut rows = results.iter();
    for name in WORKLOADS {
        for kind in EngineKind::EVALUATED {
            let s = &rows.next().expect("fig10 row").summary;
            t.row([
                name.to_string(),
                kind.label().to_string(),
                lat(s.report.reads.p50()),
                lat(s.report.reads.quantile(0.90)),
                lat(s.report.reads.p95()),
                lat(s.report.reads.p99()),
                lat(s.report.reads.max()),
            ]);
            ctx.dump_cdf(&mut cdf, name, kind.label(), "read", &s.report.reads);
        }
    }
    emit(&t, &ctx.scale.out("fig10.csv"));
    cdf.write(ctx.scale.out("fig10_cdf.csv")).ok();
}
