//! **Figure 19** — the impact of the value-log size (5 %, 10 %, 15 % of
//! the device) on (a) IOPS and (b) total page writes, plus the AnyKey−
//! (no value log) ablation under a higher write ratio (Section 6.7).
//!
//! Expected shape: workloads with small values (ZippyDB) are insensitive;
//! larger-value workloads (UDB, ETC) gain IOPS and shed page writes with a
//! bigger log (fewer log-triggered compactions). Without a log, IOPS
//! collapses as the write ratio grows.

use anykey_core::{DeviceConfig, EngineKind};
use anykey_metrics::report::fmt_count;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, kiops, ExpCtx};
use crate::scheduler::{MeasureSpec, Point, PointResult, RunKind};

const WORKLOADS: [&str; 3] = ["ZippyDB", "UDB", "ETC"];
const LOG_FRACS: [(f64, &str); 3] = [(0.05, "5%"), (0.10, "10%"), (0.15, "15%")];
const ABLATION_RATIOS: [f64; 2] = [0.2, 0.4];
const ABLATION_KINDS: [EngineKind; 2] = [EngineKind::AnyKeyPlus, EngineKind::AnyKeyNoLog];

/// Declares the log-size sweep (AnyKey+ per workload × log fraction)
/// followed by the Section 6.7 ablation grid.
pub fn points(ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig19 workload");
        for (frac, label) in LOG_FRACS {
            let cfg = DeviceConfig::builder()
                .capacity_bytes(ctx.scale.capacity)
                .engine(EngineKind::AnyKeyPlus)
                .key_len(w.key_len as u16)
                .value_log_bytes((ctx.scale.capacity as f64 * frac) as u64)
                .build();
            out.push(Point::with_key(
                format!("fig19/{name}/AnyKey+/log{label}"),
                "fig19",
                EngineKind::AnyKeyPlus,
                w,
                RunKind::Measure(MeasureSpec {
                    cfg: Some(cfg),
                    ..Default::default()
                }),
            ));
        }
    }
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig19 workload");
        for ratio in ABLATION_RATIOS {
            for kind in ABLATION_KINDS {
                out.push(Point::with_key(
                    format!(
                        "fig19/{name}/{}/w{:02}",
                        kind.label(),
                        (ratio * 100.0) as u32
                    ),
                    "fig19",
                    kind,
                    w,
                    RunKind::Measure(MeasureSpec {
                        write_ratio: ratio,
                        ..Default::default()
                    }),
                ));
            }
        }
    }
    out
}

/// Renders the log-size sweep tables (19a IOPS, 19b page writes) and the
/// ablation table.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut a = Table::new(
        "Figure 19a: AnyKey+ IOPS (kIOPS) vs value-log size",
        &["workload", "log 5%", "log 10%", "log 15%"],
    );
    let mut b = Table::new(
        "Figure 19b: AnyKey+ total page writes vs value-log size",
        &["workload", "log 5%", "log 10%", "log 15%"],
    );
    let mut rows = results.iter();
    for name in WORKLOADS {
        let mut ra = vec![name.to_string()];
        let mut rb = vec![name.to_string()];
        for _ in LOG_FRACS {
            let s = &rows.next().expect("fig19 sweep row").summary;
            ra.push(kiops(s.report.iops()));
            rb.push(fmt_count(s.report.counters.total_writes()));
        }
        a.row(ra);
        b.row(rb);
    }
    emit(&a, &ctx.scale.out("fig19a.csv"));
    emit(&b, &ctx.scale.out("fig19b.csv"));

    // Section 6.7 ablation: AnyKey+ vs AnyKey− at 20% and 40% writes.
    let mut c = Table::new(
        "Section 6.7: value-log ablation (kIOPS)",
        &[
            "workload",
            "AnyKey+ 20%w",
            "AnyKey- 20%w",
            "AnyKey+ 40%w",
            "AnyKey- 40%w",
        ],
    );
    for name in WORKLOADS {
        let mut row = vec![name.to_string()];
        for _ in ABLATION_RATIOS {
            for _ in ABLATION_KINDS {
                let s = &rows.next().expect("fig19 ablation row").summary;
                row.push(kiops(s.report.iops()));
            }
        }
        c.row(row);
    }
    emit(&c, &ctx.scale.out("fig19c_ablation.csv"));
}
