//! **Figure 19** — the impact of the value-log size (5 %, 10 %, 15 % of
//! the device) on (a) IOPS and (b) total page writes, plus the AnyKey−
//! (no value log) ablation under a higher write ratio (Section 6.7).
//!
//! Expected shape: workloads with small values (ZippyDB) are insensitive;
//! larger-value workloads (UDB, ETC) gain IOPS and shed page writes with a
//! bigger log (fewer log-triggered compactions). Without a log, IOPS
//! collapses as the write ratio grows.

use anykey_core::{DeviceConfig, EngineKind};
use anykey_metrics::report::fmt_count;
use anykey_metrics::Table;
use anykey_workload::{spec, KeyDist};

use crate::common::{emit, kiops, ExpCtx};

const WORKLOADS: [&str; 3] = ["ZippyDB", "UDB", "ETC"];
const LOG_FRACS: [(f64, &str); 3] = [(0.05, "5%"), (0.10, "10%"), (0.15, "15%")];

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) {
    let mut a = Table::new(
        "Figure 19a: AnyKey+ IOPS (kIOPS) vs value-log size",
        &["workload", "log 5%", "log 10%", "log 15%"],
    );
    let mut b = Table::new(
        "Figure 19b: AnyKey+ total page writes vs value-log size",
        &["workload", "log 5%", "log 10%", "log 15%"],
    );
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig19 workload");
        let mut ra = vec![name.to_string()];
        let mut rb = vec![name.to_string()];
        for (frac, _) in LOG_FRACS {
            let cfg = DeviceConfig::builder()
                .capacity_bytes(ctx.scale.capacity)
                .engine(EngineKind::AnyKeyPlus)
                .key_len(w.key_len as u16)
                .value_log_bytes((ctx.scale.capacity as f64 * frac) as u64)
                .build();
            let s = ctx.run_with(
                EngineKind::AnyKeyPlus,
                w,
                KeyDist::default(),
                0.2,
                Some(cfg),
            );
            ra.push(kiops(s.report.iops()));
            rb.push(fmt_count(s.report.counters.total_writes()));
        }
        a.row(ra);
        b.row(rb);
    }
    emit(&a, &ctx.scale.out("fig19a.csv"));
    emit(&b, &ctx.scale.out("fig19b.csv"));

    // Section 6.7 ablation: AnyKey+ vs AnyKey− at 20% and 40% writes.
    let mut c = Table::new(
        "Section 6.7: value-log ablation (kIOPS)",
        &[
            "workload",
            "AnyKey+ 20%w",
            "AnyKey- 20%w",
            "AnyKey+ 40%w",
            "AnyKey- 40%w",
        ],
    );
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig19 workload");
        let mut row = vec![name.to_string()];
        for ratio in [0.2, 0.4] {
            for kind in [EngineKind::AnyKeyPlus, EngineKind::AnyKeyNoLog] {
                let s = ctx.run_with(kind, w, KeyDist::default(), ratio, None);
                row.push(kiops(s.report.iops()));
            }
        }
        c.row(row);
    }
    emit(&c, &ctx.scale.out("fig19c_ablation.csv"));
}
