//! **Figure 13** — total page writes (device-lifetime proxy) for all 14
//! workloads under the three systems.
//!
//! Expected shape: AnyKey+ roughly halves PinK's total page writes on
//! average (no GC relocation, no flash-resident metadata rewrite, values
//! moved at most once out of the log).

use anykey_core::EngineKind;
use anykey_metrics::report::fmt_count;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, ExpCtx};
use crate::scheduler::{Point, PointResult};

/// Declares one standard run per (workload, system) over all 14 workloads
/// (shared with Figure 12 via scheduler dedup).
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for w in spec::ALL {
        for kind in EngineKind::EVALUATED {
            out.push(Point::standard("fig13", kind, w));
        }
    }
    out
}

/// Renders the total-page-writes table.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 13: total page writes during the measured phase",
        &["workload", "PinK", "AnyKey", "AnyKey+", "AnyKey+/PinK"],
    );
    let mut ratios = Vec::new();
    let mut rows = results.iter();
    for w in spec::ALL {
        let mut writes = [0u64; 3];
        for slot in writes.iter_mut() {
            *slot = rows
                .next()
                .expect("fig13 row")
                .summary
                .report
                .counters
                .total_writes();
        }
        let ratio = writes[2] as f64 / writes[0].max(1) as f64;
        ratios.push(ratio);
        t.row([
            w.name.to_string(),
            fmt_count(writes[0]),
            fmt_count(writes[1]),
            fmt_count(writes[2]),
            format!("{ratio:.2}x"),
        ]);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    t.row([
        "MEAN".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{mean:.2}x"),
    ]);
    emit(&t, &ctx.scale.out("fig13.csv"));
}
