//! **Figure 13** — total page writes (device-lifetime proxy) for all 14
//! workloads under the three systems.
//!
//! Expected shape: AnyKey+ roughly halves PinK's total page writes on
//! average (no GC relocation, no flash-resident metadata rewrite, values
//! moved at most once out of the log).

use anykey_core::EngineKind;
use anykey_metrics::report::fmt_count;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, ExpCtx};

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) {
    let mut t = Table::new(
        "Figure 13: total page writes during the measured phase",
        &["workload", "PinK", "AnyKey", "AnyKey+", "AnyKey+/PinK"],
    );
    let mut ratios = Vec::new();
    for w in spec::ALL {
        let mut writes = [0u64; 3];
        for (i, kind) in EngineKind::EVALUATED.into_iter().enumerate() {
            writes[i] = ctx.run_standard(kind, w).report.counters.total_writes();
        }
        let ratio = writes[2] as f64 / writes[0].max(1) as f64;
        ratios.push(ratio);
        t.row([
            w.name.to_string(),
            fmt_count(writes[0]),
            fmt_count(writes[1]),
            fmt_count(writes[2]),
            format!("{ratio:.2}x"),
        ]);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    t.row([
        "MEAN".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!("{mean:.2}x"),
    ]);
    emit(&t, &ctx.scale.out("fig13.csv"));
}
