//! **Figure 11** — (a) metadata size and placement (DRAM vs flash) per
//! system, and (b) the distribution of flash accesses per read request.
//!
//! Expected shape: PinK's metadata under low-v/k workloads far exceeds the
//! DRAM line with the overflow in flash; AnyKey's level lists + hash lists
//! exactly fill DRAM. PinK needs 4–7 flash accesses per read on low-v/k;
//! AnyKey/AnyKey+ need ≤ 2 almost always.

use anykey_core::EngineKind;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, ExpCtx};
use crate::scheduler::{Point, PointResult};

use super::fig10::WORKLOADS;

fn kb(b: u64) -> String {
    format!("{:.1}", b as f64 / 1024.0)
}

/// Declares the same standard runs as Figure 10 (deduplicated by the
/// scheduler when both run in one sweep).
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig11 workload");
        for kind in EngineKind::EVALUATED {
            out.push(Point::standard("fig11", kind, w));
        }
    }
    out
}

/// Renders the metadata-placement and reads-per-GET tables.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut a = Table::new(
        "Figure 11a: metadata size and placement (KB)",
        &[
            "workload",
            "system",
            "level lists",
            "lists in flash",
            "meta segs DRAM",
            "meta segs flash",
            "hash lists res",
            "hash lists total",
            "DRAM cap",
        ],
    );
    let mut b = Table::new(
        "Figure 11b: flash accesses per read (% of GETs)",
        &[
            "workload", "system", "0", "1", "2", "3", "4", "5", "6", "7", "8", ">=9", "mean",
        ],
    );
    let mut rows = results.iter();
    for name in WORKLOADS {
        for kind in EngineKind::EVALUATED {
            let s = &rows.next().expect("fig11 row").summary;
            let m = &s.meta;
            a.row([
                name.to_string(),
                kind.label().to_string(),
                kb(m.level_list_bytes),
                kb(m.level_list_flash_bytes),
                kb(m.meta_segment_dram_bytes),
                kb(m.meta_segment_flash_bytes),
                kb(m.hash_list_resident_bytes),
                kb(m.hash_list_total_bytes),
                kb(m.dram_capacity),
            ]);
            let total: u64 = s.report.reads_per_get.iter().sum::<u64>().max(1);
            let mut row = vec![name.to_string(), kind.label().to_string()];
            for c in s.report.reads_per_get {
                row.push(format!("{:.1}", 100.0 * c as f64 / total as f64));
            }
            row.push(format!("{:.2}", s.report.mean_reads_per_get()));
            b.row(row);
        }
    }
    emit(&a, &ctx.scale.out("fig11a.csv"));
    emit(&b, &ctx.scale.out("fig11b.csv"));
}
