//! **Figure 16** — read latencies under varying flash page sizes
//! (4/8/16 KiB).
//!
//! Expected shape: larger pages mean fewer groups, smaller level lists,
//! and a stronger DRAM-residency guarantee, so AnyKey's tails improve
//! with page size (paper Section 6.4).

use anykey_core::{DeviceConfig, EngineKind};
use anykey_metrics::{Csv, Table};
use anykey_workload::spec;

use crate::common::{emit, lat, ExpCtx};
use crate::scheduler::{MeasureSpec, Point, PointResult, RunKind};

const WORKLOADS: [&str; 3] = ["Crypto1", "ETC", "W-PinK"];
/// (page size, pages per block) — block size held at 1 MiB.
const PAGES: [(u32, u32, &str); 3] = [
    (4 << 10, 256, "4KB"),
    (8 << 10, 128, "8KB"),
    (16 << 10, 64, "16KB"),
];

/// Declares one run per (workload, system, page size).
pub fn points(ctx: &ExpCtx) -> Vec<Point> {
    let mut out = Vec::new();
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig16 workload");
        for kind in EngineKind::EVALUATED {
            for (page, ppb, label) in PAGES {
                let cfg = DeviceConfig::builder()
                    .capacity_bytes(ctx.scale.capacity)
                    .engine(kind)
                    .key_len(w.key_len as u16)
                    .page_size(page)
                    .pages_per_block(ppb)
                    .build();
                out.push(Point::with_key(
                    format!("fig16/{name}/{}/page{label}", kind.label()),
                    "fig16",
                    kind,
                    w,
                    RunKind::Measure(MeasureSpec {
                        cfg: Some(cfg),
                        ..Default::default()
                    }),
                ));
            }
        }
    }
    out
}

/// Renders the p95-vs-page-size table and CDFs.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 16: p95 read latency vs flash page size",
        &["workload", "system", "4KB", "8KB", "16KB"],
    );
    let mut cdf = Csv::new("workload,system,series,latency_us,cdf");
    let mut rows = results.iter();
    for name in WORKLOADS {
        for kind in EngineKind::EVALUATED {
            let mut cells = vec![name.to_string(), kind.label().to_string()];
            for (_, _, label) in PAGES {
                let s = &rows.next().expect("fig16 row").summary;
                cells.push(lat(s.report.reads.p95()));
                ctx.dump_cdf(&mut cdf, name, kind.label(), label, &s.report.reads);
            }
            t.row(cells);
        }
    }
    emit(&t, &ctx.scale.out("fig16.csv"));
    cdf.write(ctx.scale.out("fig16_cdf.csv")).ok();
}
