//! **Figure 16** — read latencies under varying flash page sizes
//! (4/8/16 KiB).
//!
//! Expected shape: larger pages mean fewer groups, smaller level lists,
//! and a stronger DRAM-residency guarantee, so AnyKey's tails improve
//! with page size (paper Section 6.4).

use anykey_core::{DeviceConfig, EngineKind};
use anykey_metrics::{Csv, Table};
use anykey_workload::{spec, KeyDist};

use crate::common::{emit, lat, ExpCtx};

const WORKLOADS: [&str; 3] = ["Crypto1", "ETC", "W-PinK"];
/// (page size, pages per block) — block size held at 1 MiB.
const PAGES: [(u32, u32, &str); 3] = [
    (4 << 10, 256, "4KB"),
    (8 << 10, 128, "8KB"),
    (16 << 10, 64, "16KB"),
];

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) {
    let mut t = Table::new(
        "Figure 16: p95 read latency vs flash page size",
        &["workload", "system", "4KB", "8KB", "16KB"],
    );
    let mut cdf = Csv::new("workload,system,series,latency_us,cdf");
    for name in WORKLOADS {
        let w = spec::by_name(name).expect("fig16 workload");
        for kind in EngineKind::EVALUATED {
            let mut cells = vec![name.to_string(), kind.label().to_string()];
            for (page, ppb, label) in PAGES {
                let cfg = DeviceConfig::builder()
                    .capacity_bytes(ctx.scale.capacity)
                    .engine(kind)
                    .key_len(w.key_len as u16)
                    .page_size(page)
                    .pages_per_block(ppb)
                    .build();
                let s = ctx.run_with(kind, w, KeyDist::default(), 0.2, Some(cfg));
                cells.push(lat(s.report.reads.quantile(0.95)));
                ctx.dump_cdf(&mut cdf, name, kind.label(), label, &s.report.reads);
            }
            t.row(cells);
        }
    }
    emit(&t, &ctx.scale.out("fig16.csv"));
    cdf.write(ctx.scale.out("fig16_cdf.csv")).ok();
}
