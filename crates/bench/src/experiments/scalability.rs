//! **Section 6.8** — design scalability: metadata demand at 4 TB.
//!
//! The paper's example: a 4 TB device running Crypto1 would need 25.2 GB of
//! PinK metadata but only ~3.65 GB for AnyKey, which fits a proportionally
//! scaled 4 GB DRAM.

use anykey_core::meta_model::MetaModel;
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, ExpCtx};
use crate::scheduler::{Point, PointResult};

fn gb(b: u64) -> String {
    format!("{:.2}GB", b as f64 / (1u64 << 30) as f64)
}

/// Purely analytic — no simulation points.
pub fn points(_ctx: &ExpCtx) -> Vec<Point> {
    Vec::new()
}

/// Renders the analytic metadata-demand table.
pub fn render(ctx: &ExpCtx, _results: &[PointResult]) {
    let mut t = Table::new(
        "Section 6.8: metadata demand vs device capacity (Crypto1, DRAM = 0.1%)",
        &[
            "capacity",
            "DRAM",
            "PinK demand",
            "PinK fits DRAM",
            "AnyKey level lists",
            "AnyKey sum",
            "AnyKey fits DRAM",
        ],
    );
    let w = spec::by_name("Crypto1").expect("scalability workload");
    for shift in [36u32, 38, 40, 42] {
        // 64 GB, 256 GB, 1 TB, 4 TB
        let cap = 1u64 << shift;
        let m = MetaModel::paper(cap, w.key_len as u64, w.value_len as u64);
        let s = m.sizes();
        t.row([
            gb(cap),
            gb(m.dram_bytes),
            gb(s.pink_sum()),
            (s.pink_sum() <= m.dram_bytes).to_string(),
            gb(s.anykey_level_lists),
            gb(s.anykey_sum()),
            (s.anykey_sum() <= m.dram_bytes).to_string(),
        ]);
    }
    emit(&t, &ctx.scale.out("scalability.csv"));
}
