//! **Figure 18** — UDB scan latencies under varying scan lengths.
//!
//! Expected shape: AnyKey's benefit grows with scan length — consecutive
//! keys live in the pages of one (or few) data segment groups, while
//! PinK's values are scattered wherever the write buffer flushed them.
//! Short scans are comparable.

use anykey_core::EngineKind;
use anykey_metrics::{Csv, Table};
use anykey_workload::spec;

use crate::common::{emit, lat, ExpCtx};
use crate::scheduler::{Point, PointResult, RunKind};

const LENGTHS: [u32; 4] = [10, 100, 150, 200];

/// Declares one UDB scan-heavy run per (system, scan length).
pub fn points(ctx: &ExpCtx) -> Vec<Point> {
    let w = spec::by_name("UDB").expect("fig18 workload");
    let mut out = Vec::new();
    for kind in EngineKind::EVALUATED {
        for len in LENGTHS {
            out.push(Point::with_key(
                format!("fig18/UDB/{}/len{len}", kind.label()),
                "fig18",
                kind,
                w,
                RunKind::Measure(ctx.scan_recipe(w, len)),
            ));
        }
    }
    out
}

/// Renders the scan-p95 table and scan-latency CDFs.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Figure 18: UDB scan latency (p95) vs scan length",
        &["system", "len 10", "len 100", "len 150", "len 200"],
    );
    let mut cdf = Csv::new("workload,system,series,latency_us,cdf");
    let mut rows = results.iter();
    for kind in EngineKind::EVALUATED {
        let mut cells = vec![kind.label().to_string()];
        for len in LENGTHS {
            let s = &rows.next().expect("fig18 row").summary;
            cells.push(lat(s.report.scans.p95()));
            ctx.dump_cdf(
                &mut cdf,
                "UDB",
                kind.label(),
                &format!("len{len}"),
                &s.report.scans,
            );
        }
        t.row(cells);
    }
    emit(&t, &ctx.scale.out("fig18.csv"));
    cdf.write(ctx.scale.out("fig18_cdf.csv")).ok();
}
