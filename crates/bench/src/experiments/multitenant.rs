//! **Section 6.9** — multi-workload execution: the device is split into
//! two equal partitions, each running its own engine instance — one
//! serving W-PinK (high-v/k), one serving ZippyDB (low-v/k).
//!
//! Expected shape: switching both partitions from PinK to AnyKey improves
//! the low-v/k tenant's p95 dramatically and the high-v/k tenant's
//! modestly.
//!
//! Modeling note: partitions are simulated as independent half-capacity
//! devices (half DRAM each); cross-tenant chip contention is not modeled
//! (see EXPERIMENTS.md).

use anykey_core::{DeviceConfig, EngineKind};
use anykey_metrics::Table;
use anykey_workload::spec;

use crate::common::{emit, lat, ExpCtx};
use crate::scheduler::{MeasureSpec, Point, PointResult, RunKind};

const TENANTS: [&str; 2] = ["W-PinK", "ZippyDB"];
const SYSTEMS: [EngineKind; 2] = [EngineKind::Pink, EngineKind::AnyKeyPlus];

/// Declares one half-capacity partition run per (tenant, system).
pub fn points(ctx: &ExpCtx) -> Vec<Point> {
    let half = ctx.scale.capacity / 2;
    let mut out = Vec::new();
    for name in TENANTS {
        let w = spec::by_name(name).expect("multitenant workload");
        for kind in SYSTEMS {
            // Half-capacity partitions need proportionally smaller erase
            // blocks to keep one block per chip.
            let cfg = DeviceConfig::builder()
                .capacity_bytes(half)
                .pages_per_block(64)
                .engine(kind)
                .key_len(w.key_len as u16)
                .build();
            let keyspace =
                ((half as f64 * ctx.scale.fill_for(w)) / w.pair_bytes() as f64 * 0.9) as u64;
            let ops = (half as f64 * ctx.scale.ops_factor / w.pair_bytes() as f64) as u64;
            out.push(Point::with_key(
                format!("multitenant/{name}/{}", kind.label()),
                "multitenant",
                kind,
                w,
                RunKind::Measure(MeasureSpec {
                    cfg: Some(cfg),
                    keyspace: Some(keyspace),
                    ops: Some(ops),
                    seed_salt: 0x7E4A,
                    ..Default::default()
                }),
            ));
        }
    }
    out
}

/// Renders the two-tenant p95 table with the PinK→AnyKey improvement.
pub fn render(ctx: &ExpCtx, results: &[PointResult]) {
    let mut t = Table::new(
        "Section 6.9: two-tenant partitioned device (p95 read latency)",
        &["tenant", "PinK", "AnyKey", "improvement"],
    );
    let mut rows = results.iter();
    for name in TENANTS {
        let mut p95 = [0u64; 2];
        for slot in p95.iter_mut() {
            *slot = rows
                .next()
                .expect("multitenant row")
                .summary
                .report
                .reads
                .p95();
        }
        let improvement = p95[0] as f64 / p95[1].max(1) as f64;
        t.row([
            name.to_string(),
            lat(p95[0]),
            lat(p95[1]),
            format!("{improvement:.2}x"),
        ]);
    }
    emit(&t, &ctx.scale.out("multitenant.csv"));
}
