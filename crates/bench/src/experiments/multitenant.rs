//! **Section 6.9** — multi-workload execution: the device is split into
//! two equal partitions, each running its own engine instance — one
//! serving W-PinK (high-v/k), one serving ZippyDB (low-v/k).
//!
//! Expected shape: switching both partitions from PinK to AnyKey improves
//! the low-v/k tenant's p95 dramatically and the high-v/k tenant's
//! modestly.
//!
//! Modeling note: partitions are simulated as independent half-capacity
//! devices (half DRAM each); cross-tenant chip contention is not modeled
//! (see EXPERIMENTS.md).

use anykey_core::runner::DEFAULT_QUEUE_DEPTH;
use anykey_core::{runner, warm_up, DeviceConfig, EngineKind};
use anykey_metrics::Table;
use anykey_workload::{spec, OpStreamBuilder};

use crate::common::{emit, lat, ExpCtx};

/// Runs the experiment.
pub fn run(ctx: &ExpCtx) {
    let mut t = Table::new(
        "Section 6.9: two-tenant partitioned device (p95 read latency)",
        &["tenant", "PinK", "AnyKey", "improvement"],
    );
    let half = ctx.scale.capacity / 2;
    for name in ["W-PinK", "ZippyDB"] {
        let w = spec::by_name(name).expect("multitenant workload");
        let mut p95 = [0u64; 2];
        for (i, kind) in [EngineKind::Pink, EngineKind::AnyKeyPlus]
            .into_iter()
            .enumerate()
        {
            // Half-capacity partitions need proportionally smaller erase
            // blocks to keep one block per chip.
            let cfg = DeviceConfig::builder()
                .capacity_bytes(half)
                .pages_per_block(64)
                .engine(kind)
                .key_len(w.key_len as u16)
                .build();
            let mut dev = cfg.build_engine();
            let keyspace =
                ((half as f64 * ctx.scale.fill_for(w)) / w.pair_bytes() as f64 * 0.9) as u64;
            warm_up(dev.as_mut(), w, keyspace, ctx.scale.seed).expect("multitenant warm-up");
            let ops = OpStreamBuilder::new(w, keyspace)
                .seed(ctx.scale.seed ^ 0x7E4A)
                .build();
            let n = (half as f64 * ctx.scale.ops_factor / w.pair_bytes() as f64) as u64;
            let report =
                runner::run(dev.as_mut(), ops, n, DEFAULT_QUEUE_DEPTH).expect("multitenant run");
            p95[i] = report.reads.quantile(0.95);
        }
        let improvement = p95[0] as f64 / p95[1].max(1) as f64;
        t.row([
            name.to_string(),
            lat(p95[0]),
            lat(p95[1]),
            format!("{improvement:.2}x"),
        ]);
    }
    emit(&t, &ctx.scale.out("multitenant.csv"));
}
