//! # anykey-bench
//!
//! The experiment harness of the AnyKey reproduction: one module per table
//! or figure of the paper's evaluation (Section 5–6), each regenerating the
//! same rows/series the paper reports — at a scaled-down capacity with the
//! paper's ratios (DRAM = 0.1 % of capacity, 8-channel × 8-chip geometry,
//! Zipfian 0.99, 20 % writes, queue depth 64) so a full sweep runs in
//! minutes instead of the paper's 4–13 hours per workload.
//!
//! Run `anykey-bench all` (or a single experiment id like `fig12`) from the
//! workspace root; tables print to stdout and CSV series land in
//! `results/`.

/// Shared experiment context, scaling, and summaries.
pub mod common;
/// One module per reproduced paper table/figure.
pub mod experiments;
/// Declarative experiment points and the deterministic parallel scheduler.
pub mod scheduler;

/// Experiment context and result summary types.
pub use common::{ExpCtx, Scale, Summary};
/// The scheduler's point model and entry points.
pub use scheduler::{build_summary, run_points, Point, PointResult, RunKind, SchedulerRun};
