//! Shared experiment plumbing: scaled device configurations, standard
//! warm-up/measure runs, and result bookkeeping.

use std::path::{Path, PathBuf};

use anykey_core::{DeviceConfig, EngineKind, MetadataStats, RunReport};
use anykey_metrics::report::fmt_ns;
use anykey_metrics::{Csv, Table};
use anykey_workload::{KeyDist, WorkloadSpec};

/// Experiment scale knobs. Defaults reproduce the paper's ratios on a
/// 128 MiB device (the paper's 64 GB scaled down, DRAM at the same 0.1% ratio).
/// Each workload fills toward PinK's analytic full point (the paper runs
/// the device full, which is what makes PinK's GC pathological), capped so
/// the AnyKey variants' group area also fits; the Figure 14 experiment
/// measures the true full points empirically.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Raw device capacity in bytes.
    pub capacity: u64,
    /// Fraction of raw capacity filled with unique KV pairs during
    /// warm-up.
    pub fill: f64,
    /// Measured requests, as a multiple of `capacity / pair_bytes`
    /// (the paper issues 2× the device capacity).
    pub ops_factor: f64,
    /// Output directory for CSV series.
    pub out_dir: PathBuf,
    /// RNG seed.
    pub seed: u64,
    /// Residual foreground wait after a background suspend, in ns
    /// (formerly the hidden `ANYKEY_BG_RESIDUAL_NS` environment variable;
    /// now an explicit, reproducible knob).
    pub bg_residual_ns: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            capacity: 128 << 20,
            fill: 0.55,
            ops_factor: 2.0,
            out_dir: PathBuf::from("results"),
            seed: 0xA17_5EED,
            bg_residual_ns: 100_000,
        }
    }
}

impl Scale {
    /// A faster, smaller scale for smoke runs (`--quick`): the smallest
    /// capacity with one 1 MiB block per chip on the paper's 64-chip
    /// geometry.
    pub fn quick(mut self) -> Self {
        self.capacity = 64 << 20;
        self.ops_factor = 0.5;
        self.fill = 0.45;
        self
    }

    /// Effective fill fraction for a workload: the paper fills the device,
    /// so we target ~90% of PinK's analytic full point (PinK stores an
    /// extra `(key+6)`-byte meta copy per pair), capped by `fill` so the
    /// AnyKey variants' group area also fits.
    pub fn fill_for(&self, spec: WorkloadSpec) -> f64 {
        let meta_ratio = (spec.key_len as f64 + 6.0) / spec.pair_bytes() as f64;
        (0.72 / (1.0 + meta_ratio)).min(self.fill)
    }

    /// Number of unique keys a workload's warm-up inserts.
    pub fn keyspace(&self, spec: WorkloadSpec) -> u64 {
        ((self.capacity as f64 * self.fill_for(spec)) / spec.pair_bytes() as f64) as u64
    }

    /// Number of measured operations for a workload.
    pub fn measured_ops(&self, spec: WorkloadSpec) -> u64 {
        ((self.capacity as f64 * self.ops_factor) / spec.pair_bytes() as f64) as u64
    }

    /// The standard device configuration for one system under one
    /// workload (paper Section 5.1 ratios).
    pub fn device(&self, kind: EngineKind, spec: WorkloadSpec) -> DeviceConfig {
        DeviceConfig::builder()
            .capacity_bytes(self.capacity)
            .engine(kind)
            .key_len(spec.key_len as u16)
            .bg_residual_ns(self.bg_residual_ns)
            .build()
    }

    /// The standard device configuration with media fault injection
    /// enabled (the `fault` experiment).
    pub fn device_faulty(
        &self,
        kind: EngineKind,
        spec: WorkloadSpec,
        fault: anykey_flash::FaultModel,
    ) -> DeviceConfig {
        DeviceConfig::builder()
            .capacity_bytes(self.capacity)
            .engine(kind)
            .key_len(spec.key_len as u16)
            .bg_residual_ns(self.bg_residual_ns)
            .fault(fault)
            .build()
    }

    /// Joins a file name onto the output directory.
    pub fn out(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }
}

/// One completed (workload, system) run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Workload name.
    pub workload: &'static str,
    /// System under test.
    pub system: EngineKind,
    /// Measured-phase report.
    pub report: RunReport,
    /// Metadata snapshot at the end of the run.
    pub meta: MetadataStats,
}

/// Experiment context: scale plus console/file sinks.
#[derive(Debug, Clone)]
pub struct ExpCtx {
    /// Scale knobs.
    pub scale: Scale,
    /// Record raw trace events during measured phases (`--trace`). Pure
    /// observation: the simulated timings are identical either way.
    pub trace: bool,
    /// Virtual ns between periodic state samples during measured phases
    /// (`--timeline-interval`); 0 disables sampling entirely. Pure
    /// observation, like tracing.
    pub timeline_interval_ns: u64,
}

impl ExpCtx {
    /// A context at the given scale, tracing and timeline sampling off.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            trace: false,
            timeline_interval_ns: 0,
        }
    }

    /// Builds a device, warms it up with the workload's keyspace, runs the
    /// measured phase with the paper's default mix (Zipfian 0.99, 20 %
    /// writes), and returns the summary.
    ///
    /// Serial convenience over [`crate::scheduler::execute_point`] — the
    /// experiment modules declare [`crate::scheduler::Point`]s instead and
    /// let the scheduler run them; this remains for diagnostics (`probe`).
    pub fn run_standard(&self, kind: EngineKind, spec: WorkloadSpec) -> Summary {
        self.run_with(kind, spec, KeyDist::default(), 0.2, None)
    }

    /// `run_standard` with an explicit distribution, write ratio, and
    /// optional device-config override.
    pub fn run_with(
        &self,
        kind: EngineKind,
        spec: WorkloadSpec,
        dist: KeyDist,
        write_ratio: f64,
        cfg_override: Option<DeviceConfig>,
    ) -> Summary {
        let point = crate::scheduler::Point::with_key(
            String::new(),
            "adhoc",
            kind,
            spec,
            crate::scheduler::RunKind::Measure(crate::scheduler::MeasureSpec {
                dist,
                write_ratio,
                cfg: cfg_override,
                ..Default::default()
            }),
        );
        let r = crate::scheduler::execute_point(self, &point);
        if let Some(note) = r.note {
            eprintln!("{note}");
        }
        r.summary
    }

    /// Runs a scan-centric variant (Figure 18): half the requests are
    /// scans of `scan_len` keys, at a reduced op count (scans are heavy).
    pub fn run_scans(&self, kind: EngineKind, spec: WorkloadSpec, scan_len: u32) -> Summary {
        let point = crate::scheduler::Point::with_key(
            String::new(),
            "adhoc",
            kind,
            spec,
            crate::scheduler::RunKind::Measure(self.scan_recipe(spec, scan_len)),
        );
        let r = crate::scheduler::execute_point(self, &point);
        if let Some(note) = r.note {
            eprintln!("{note}");
        }
        r.summary
    }

    /// The Figure 18 scan recipe: 50 % scans of `scan_len` keys, measured
    /// ops reduced 20× (floor 2 000) because scans are heavy.
    pub fn scan_recipe(&self, spec: WorkloadSpec, scan_len: u32) -> crate::scheduler::MeasureSpec {
        crate::scheduler::MeasureSpec {
            scans: Some((0.5, scan_len)),
            ops: Some((self.scale.measured_ops(spec) / 20).max(2_000)),
            seed_salt: 0x5CA7,
            ..Default::default()
        }
    }

    /// Writes one latency CDF as a long-form CSV
    /// (`workload,system,series,latency_us,cdf`).
    pub fn dump_cdf(
        &self,
        csv: &mut Csv,
        workload: &str,
        system: &str,
        series: &str,
        hist: &anykey_metrics::LatencyHist,
    ) {
        for (ns, frac) in hist.cdf() {
            csv.push(format!(
                "{workload},{system},{series},{:.1},{frac:.6}",
                ns as f64 / 1000.0
            ));
        }
    }
}

/// Prints a table to stdout and writes its CSV next to the other results.
pub fn emit(table: &Table, path: &Path) {
    println!("{table}");
    if let Err(e) = table.write_csv(path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  -> {}\n", path.display());
    }
}

/// Formats a latency cell.
pub fn lat(ns: u64) -> String {
    fmt_ns(ns)
}

/// Formats an IOPS cell (virtual-time kIOPS).
pub fn kiops(v: f64) -> String {
    format!("{:.1}", v / 1000.0)
}
