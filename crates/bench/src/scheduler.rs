//! The deterministic parallel experiment scheduler.
//!
//! Every experiment module declares its work as a flat list of [`Point`]s —
//! one isolated discrete-virtual-time simulation each (engine + workload +
//! run recipe + seed salt) — instead of running simulations inline. This
//! module executes those points on a `std::thread::scope` worker pool with
//! a bounded work queue and collects the results **in declaration order**,
//! so `--jobs N` and `--jobs 1` produce byte-identical CSVs: each point is
//! a self-contained simulation with its own seeded RNGs and engine
//! instance, and nothing about thread interleaving can leak into its
//! output. Rendering (tables, CSVs, notes) happens strictly after
//! collection, on the declared order.
//!
//! Identical points are deduplicated before execution: several paper
//! figures re-run the same (engine, workload, recipe) triple (e.g. Figure
//! 10's latency CDFs and Figure 11's reads-per-GET histograms come from
//! the same runs), and determinism guarantees the results are
//! interchangeable, so each unique simulation runs once and its result is
//! fanned back out to every requesting point.
//!
//! Wall-clock timing is confined to this file (and the self-contained
//! `micro` bench): `xtask lint`'s no-wall-clock rule allowlists exactly
//! these, keeping the simulation itself on virtual nanoseconds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use anykey_core::runner::{waf_from, DEFAULT_QUEUE_DEPTH};
use anykey_core::{
    run, run_sampled, run_traced, run_traced_sampled, warm_up, DeviceConfig, EngineKind, KvError,
    MetadataStats, RunReport, SampleCfg,
};
use anykey_metrics::summary::{PointSummary, RunSummary, SCHEMA_VERSION};
use anykey_metrics::timeline::{
    detect_steady_state, StateSample, DEFAULT_STEADY_TOL, DEFAULT_STEADY_WINDOW,
};
use anykey_metrics::trace::TraceEvent;
use anykey_workload::{ops::fill_ops, KeyDist, OpStreamBuilder, WorkloadSpec};

use crate::common::{ExpCtx, Summary};

/// The measured-phase recipe of a [`RunKind::Measure`] point.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureSpec {
    /// Key-popularity distribution of the measured phase.
    pub dist: KeyDist,
    /// Fraction of measured requests that are PUTs.
    pub write_ratio: f64,
    /// Optional scan mix: `(scan_ratio, scan_len)`.
    pub scans: Option<(f64, u32)>,
    /// Device-config override; `None` uses the standard scale config.
    pub cfg: Option<DeviceConfig>,
    /// Warm-up keyspace override; `None` derives it from the scale.
    pub keyspace: Option<u64>,
    /// Measured-op-count override; `None` derives it from the scale.
    pub ops: Option<u64>,
    /// XOR salt applied to the scale seed for the measured op stream.
    pub seed_salt: u64,
}

impl Default for MeasureSpec {
    fn default() -> Self {
        Self {
            dist: KeyDist::default(),
            write_ratio: 0.2,
            scans: None,
            cfg: None,
            keyspace: None,
            ops: None,
            seed_salt: 0xBEEF,
        }
    }
}

/// What a point actually simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum RunKind {
    /// Warm up to the scale keyspace, then drive a measured phase.
    Measure(MeasureSpec),
    /// Warm up only and snapshot metadata (Table 1's measured columns).
    WarmUpOnly {
        /// Device-config override; `None` uses the standard scale config.
        cfg: Option<DeviceConfig>,
    },
    /// Insert unique pairs until the device reports full (Figure 14).
    FillUntilFull,
}

/// One declarative experiment point: a single isolated simulation and the
/// identity of the output row it feeds.
#[derive(Debug, Clone)]
pub struct Point {
    /// Output row key, unique within a run
    /// (`experiment/workload/system[/variant]`).
    pub key: String,
    /// Owning experiment id (`fig10`, `table3`, ...).
    pub experiment: &'static str,
    /// System under test.
    pub kind: EngineKind,
    /// Workload definition.
    pub spec: WorkloadSpec,
    /// The run recipe.
    pub run: RunKind,
}

impl Point {
    /// A standard-recipe point (paper default mix: Zipfian 0.99, 20 %
    /// writes) — the common case.
    pub fn standard(experiment: &'static str, kind: EngineKind, spec: WorkloadSpec) -> Self {
        Self::with_key(
            format!("{experiment}/{}/{}", spec.name, kind.label()),
            experiment,
            kind,
            spec,
            RunKind::Measure(MeasureSpec::default()),
        )
    }

    /// A fully explicit point.
    pub fn with_key(
        key: String,
        experiment: &'static str,
        kind: EngineKind,
        spec: WorkloadSpec,
        run: RunKind,
    ) -> Self {
        Self {
            key,
            experiment,
            kind,
            spec,
            run,
        }
    }

    /// Whether two points describe the *same simulation* (identical
    /// engine, workload, and recipe) and may therefore share one
    /// execution. Keys and owning experiments are display identity and do
    /// not participate.
    pub fn same_work(&self, other: &Point) -> bool {
        self.kind == other.kind && self.spec == other.spec && self.run == other.run
    }
}

/// The outcome of one executed point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Measured-phase report and final metadata snapshot.
    pub summary: Summary,
    /// Write amplification of the point (flash programs ÷ minimal host
    /// data pages; 0 when nothing was written).
    pub waf: f64,
    /// Host wall-clock seconds this point's simulation took. The only
    /// non-deterministic field; never rendered into CSVs.
    pub wall_secs: f64,
    /// Deterministic harness note (e.g. a keyspace shrink), printed after
    /// collection in point order.
    pub note: Option<String>,
    /// Recorded trace events of the measured phase (`--trace` only; `None`
    /// when tracing was off, for non-measure points, and for deduplicated
    /// repeats of the same simulation).
    pub trace: Option<Vec<TraceEvent>>,
    /// Periodic state samples of the measured phase (`--timeline` only;
    /// `None` when sampling was off, for non-measure points, and for
    /// deduplicated repeats of the same simulation).
    pub timeline: Option<Vec<StateSample>>,
    /// Mean cumulative WAF over the detected steady-state window of the
    /// measured phase, from the always-on WAF curve (0 when never settled
    /// or no measured writes).
    pub converged_waf: f64,
    /// Virtual ns of burn-in before the steady-state window (0 when never
    /// settled or not applicable).
    pub burnin_ns: u64,
}

/// A completed scheduled sweep.
#[derive(Debug)]
pub struct SchedulerRun {
    /// One result per requested point, in declaration order.
    pub results: Vec<PointResult>,
    /// Unique simulations actually executed (after deduplication).
    pub executed: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
}

/// Executes `points` on `jobs` worker threads and returns the results in
/// declaration order.
///
/// The work queue is bounded by construction: it is the fixed list of
/// unique points, with a single atomic cursor handing out the next index.
/// Workers never allocate new work and never block on each other; results
/// land in pre-allocated per-point slots, so collection order is the
/// declaration order regardless of completion order.
///
/// # Panics
///
/// Propagates a panic from any point's simulation (a point that cannot
/// complete even at half keyspace panics, exactly as the serial harness
/// did).
pub fn run_points(ctx: &ExpCtx, points: &[Point], jobs: usize) -> SchedulerRun {
    let t0 = Instant::now();

    // Deduplicate identical simulations, preserving first-seen order:
    // `unique[slot]` is the representative point index, `assign[i]` the
    // slot feeding point `i`.
    let mut unique: Vec<usize> = Vec::new();
    let mut assign: Vec<usize> = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        match unique.iter().position(|&u| points[u].same_work(p)) {
            Some(slot) => assign.push(slot),
            None => {
                assign.push(unique.len());
                unique.push(i);
            }
        }
    }

    let jobs = jobs.clamp(1, unique.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PointResult>>> = unique.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&point_idx) = unique.get(i) else {
                    break;
                };
                let result = execute_point(ctx, &points[point_idx]);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(result);
                }
            });
        }
    });

    // Fan results back out to every requesting point; only the first
    // (representative) point of each slot keeps the trace events, so a
    // trace file lists each unique simulation exactly once, in declaration
    // order, independent of `--jobs`.
    let mut first = vec![true; unique.len()];
    let results = assign
        .iter()
        .map(|&slot| {
            let mut r = slots[slot]
                .lock()
                .expect("scheduler slot poisoned")
                .clone()
                .expect("scheduler slot not filled");
            if !std::mem::replace(&mut first[slot], false) {
                r.trace = None;
                r.timeline = None;
            }
            r
        })
        .collect();

    SchedulerRun {
        results,
        executed: unique.len(),
        jobs,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Executes one point's simulation (on the calling thread) and times it.
pub fn execute_point(ctx: &ExpCtx, point: &Point) -> PointResult {
    let t0 = Instant::now();
    let e = match &point.run {
        RunKind::Measure(m) => execute_measure(ctx, point, m),
        RunKind::WarmUpOnly { cfg } => execute_warm_up(ctx, point, cfg.clone()),
        RunKind::FillUntilFull => execute_fill(ctx, point),
    };
    PointResult {
        summary: e.summary,
        waf: e.waf,
        wall_secs: t0.elapsed().as_secs_f64(),
        note: e.note,
        trace: e.trace,
        timeline: e.timeline,
        converged_waf: e.converged_waf,
        burnin_ns: e.burnin_ns,
    }
}

/// An empty measured-phase report anchored at virtual time `at` (used by
/// warm-up-only and fill points, which have no measured phase).
fn empty_report(at: u64) -> RunReport {
    RunReport {
        reads: anykey_metrics::LatencyHist::new(),
        writes: anykey_metrics::LatencyHist::new(),
        scans: anykey_metrics::LatencyHist::new(),
        ops: 0,
        found: 0,
        not_found: 0,
        start: at,
        end: at,
        counters: anykey_flash::FlashCounters::new(),
        reads_per_get: [0; anykey_core::runner::MAX_TRACKED_READS + 1],
        phases: anykey_metrics::trace::PhaseHists::new(),
        waf_curve: Vec::new(),
    }
}

fn waf_of(report: &RunReport, meta: &MetadataStats, spec: WorkloadSpec, cfg: &DeviceConfig) -> f64 {
    let payload = u64::from(cfg.page_payload()).max(1);
    // Minimal pages for the host bytes this point wrote: the measured
    // PUT/DELETE stream when there was one, the live unique bytes for
    // fill/warm-up points.
    let host_bytes = if report.writes.count() > 0 {
        report.writes.count() * spec.pair_bytes()
    } else {
        meta.live_unique_bytes
    };
    let denom = host_bytes.div_ceil(payload);
    if denom == 0 {
        return 0.0;
    }
    report.counters.total_writes() as f64 / denom as f64
}

/// What one point execution produced, before wall-clock timing is added.
struct Executed {
    summary: Summary,
    waf: f64,
    note: Option<String>,
    trace: Option<Vec<TraceEvent>>,
    timeline: Option<Vec<StateSample>>,
    converged_waf: f64,
    burnin_ns: u64,
}

impl Executed {
    /// A measurement-free outcome (warm-up-only and fill points).
    fn bare(summary: Summary, waf: f64) -> Self {
        Self {
            summary,
            waf,
            note: None,
            trace: None,
            timeline: None,
            converged_waf: 0.0,
            burnin_ns: 0,
        }
    }
}

/// Runs the steady-state detector over a report's always-on WAF curve
/// (timestamps rebased to the measured-phase start) and returns
/// `(converged_waf, burnin_ns)` — `(0, 0)` when the curve never settled.
fn steady_metrics(report: &RunReport, pair_bytes: u64, page_payload: u64) -> (f64, u64) {
    let curve: Vec<(u64, f64)> = report
        .waf_curve
        .iter()
        .map(|w| {
            (
                w.ts_ns.saturating_sub(report.start),
                waf_from(w.flash_writes, w.write_ops, pair_bytes, page_payload),
            )
        })
        .collect();
    match detect_steady_state(&curve, DEFAULT_STEADY_WINDOW, DEFAULT_STEADY_TOL) {
        Some(s) => (s.converged_waf, s.start_ns),
        None => (0.0, 0),
    }
}

fn execute_measure(ctx: &ExpCtx, point: &Point, m: &MeasureSpec) -> Executed {
    let spec = point.spec;
    let cfg = m
        .cfg
        .clone()
        .unwrap_or_else(|| ctx.scale.device(point.kind, spec));
    let base_keyspace = m.keyspace.unwrap_or_else(|| ctx.scale.keyspace(spec));
    let n = m.ops.unwrap_or_else(|| ctx.scale.measured_ops(spec));
    // A configuration can sit so close to a system's capacity limit that
    // updates during the measured phase fill the device (that limit is
    // itself a result — Figure 14); rather than abort the whole suite,
    // retry with a slightly smaller keyspace.
    for shrink in [1.0, 0.85, 0.7, 0.5] {
        let mut dev = cfg.build_engine();
        let keyspace = ((base_keyspace as f64 * shrink) as u64).max(1_000);
        if warm_up(dev.as_mut(), spec, keyspace, ctx.scale.seed).is_err() {
            continue;
        }
        let mut builder = OpStreamBuilder::new(spec, keyspace)
            .write_ratio(m.write_ratio)
            .dist(m.dist.clone())
            .seed(ctx.scale.seed ^ m.seed_salt);
        if let Some((ratio, len)) = m.scans {
            builder = builder.scans(ratio, len);
        }
        let ops = builder.build();
        // Tracing and sampling are pure observation (virtual time is
        // untouched), so the report is identical in all four combinations;
        // only what gets recorded on the side differs.
        let sample_cfg = SampleCfg {
            interval_ns: ctx.timeline_interval_ns,
            pair_bytes: spec.pair_bytes(),
            page_payload: u64::from(cfg.page_payload()),
        };
        let outcome = match (ctx.trace, ctx.timeline_interval_ns > 0) {
            (false, false) => {
                run(dev.as_mut(), ops, n, DEFAULT_QUEUE_DEPTH).map(|report| (report, None, None))
            }
            (true, false) => run_traced(dev.as_mut(), ops, n, DEFAULT_QUEUE_DEPTH)
                .map(|(report, events)| (report, Some(events), None)),
            (false, true) => run_sampled(dev.as_mut(), ops, n, DEFAULT_QUEUE_DEPTH, &sample_cfg)
                .map(|(report, samples)| (report, None, Some(samples))),
            (true, true) => {
                run_traced_sampled(dev.as_mut(), ops, n, DEFAULT_QUEUE_DEPTH, &sample_cfg)
                    .map(|(report, events, samples)| (report, Some(events), Some(samples)))
            }
        };
        match outcome {
            Ok((report, trace, timeline)) => {
                let note = (shrink < 1.0).then(|| {
                    format!(
                        "note: {} on {} ran at {:.0}% keyspace (device-full at target fill)",
                        point.kind,
                        spec.name,
                        shrink * 100.0
                    )
                });
                let meta = dev.metadata();
                let waf = waf_of(&report, &meta, spec, &cfg);
                let (converged_waf, burnin_ns) =
                    steady_metrics(&report, spec.pair_bytes(), u64::from(cfg.page_payload()));
                let summary = Summary {
                    workload: spec.name,
                    system: point.kind,
                    report,
                    meta,
                };
                return Executed {
                    summary,
                    waf,
                    note,
                    trace,
                    timeline,
                    converged_waf,
                    burnin_ns,
                };
            }
            Err(_) => continue,
        }
    }
    panic!(
        "{} could not complete {} even at half keyspace",
        point.kind, spec.name
    );
}

fn execute_warm_up(ctx: &ExpCtx, point: &Point, cfg: Option<DeviceConfig>) -> Executed {
    let spec = point.spec;
    let cfg = cfg.unwrap_or_else(|| ctx.scale.device(point.kind, spec));
    let mut dev = cfg.build_engine();
    let keyspace = ctx.scale.keyspace(spec);
    warm_up(dev.as_mut(), spec, keyspace, ctx.scale.seed).expect("warm-up-only point failed");
    let mut report = empty_report(dev.horizon());
    report.counters = dev.counters();
    let meta = dev.metadata();
    let waf = waf_of(&report, &meta, spec, &cfg);
    let summary = Summary {
        workload: spec.name,
        system: point.kind,
        report,
        meta,
    };
    Executed::bare(summary, waf)
}

fn execute_fill(ctx: &ExpCtx, point: &Point) -> Executed {
    let spec = point.spec;
    let cfg = ctx.scale.device(point.kind, spec);
    let mut dev = cfg.build_engine();
    let huge = 4 * ctx.scale.capacity / spec.pair_bytes();
    for op in fill_ops(spec, huge, ctx.scale.seed) {
        let at = dev.horizon();
        match dev.execute(&op, at) {
            Ok(_) => {}
            Err(KvError::DeviceFull) => break,
            Err(e) => panic!("unexpected error during fill: {e}"),
        }
    }
    let mut report = empty_report(dev.horizon());
    report.counters = dev.counters();
    let meta = dev.metadata();
    let waf = waf_of(&report, &meta, spec, &cfg);
    let summary = Summary {
        workload: spec.name,
        system: point.kind,
        report,
        meta,
    };
    Executed::bare(summary, waf)
}

/// Assembles the machine-readable run summary from a scheduled sweep.
/// Point order (and therefore JSON order) is the declaration order.
pub fn build_summary(ctx: &ExpCtx, points: &[Point], run: &SchedulerRun) -> RunSummary {
    use anykey_flash::OpCause;
    let points = points
        .iter()
        .zip(&run.results)
        .map(|(p, r)| {
            let rep = &r.summary.report;
            let c = &rep.counters;
            PointSummary {
                key: p.key.clone(),
                experiment: p.experiment.to_string(),
                workload: p.spec.name.to_string(),
                system: p.kind.label().to_string(),
                ops: rep.ops,
                read_ops: rep.reads.count(),
                write_ops: rep.writes.count(),
                scan_ops: rep.scans.count(),
                virtual_ns: rep.end.saturating_sub(rep.start),
                iops: if rep.ops > 0 { rep.iops() } else { 0.0 },
                p50_read_ns: rep.reads.p50(),
                p95_read_ns: rep.reads.p95(),
                p99_read_ns: rep.reads.p99(),
                p50_write_ns: rep.writes.p50(),
                p95_write_ns: rep.writes.p95(),
                p99_write_ns: rep.writes.p99(),
                waf: r.waf,
                converged_waf: r.converged_waf,
                burnin_ns: r.burnin_ns,
                host_reads: c.reads(OpCause::HostRead),
                host_writes: c.writes(OpCause::HostWrite),
                meta_reads: c.reads(OpCause::MetaRead),
                meta_writes: c.writes(OpCause::MetaWrite),
                comp_reads: c.reads(OpCause::CompactionRead),
                comp_writes: c.writes(OpCause::CompactionWrite),
                gc_reads: c.reads(OpCause::GcRead),
                gc_writes: c.writes(OpCause::GcWrite),
                log_reads: c.reads(OpCause::LogRead),
                log_writes: c.writes(OpCause::LogWrite),
                erases: c.erases(),
                retry_reads: c.total_retry_reads(),
                phase_queue_ns: rep.phases.queue_wait.total(),
                phase_meta_ns: rep.phases.meta_read.total(),
                phase_data_ns: rep.phases.data_read.total(),
                phase_log_ns: rep.phases.log_read.total(),
                phase_engine_ns: rep.phases.engine.total(),
                phase_queue_p99_ns: rep.phases.queue_wait.p99(),
                phase_meta_p99_ns: rep.phases.meta_read.p99(),
                phase_data_p99_ns: rep.phases.data_read.p99(),
                phase_log_p99_ns: rep.phases.log_read.p99(),
                phase_engine_p99_ns: rep.phases.engine.p99(),
                wall_secs: r.wall_secs,
            }
        })
        .collect();
    RunSummary {
        schema_version: SCHEMA_VERSION,
        capacity_bytes: ctx.scale.capacity,
        seed: ctx.scale.seed,
        total_wall_secs: run.wall_secs,
        points,
    }
}
