//! A small, fast, deterministic PRNG.
//!
//! Workload generation must be reproducible across runs and platforms so
//! that every experiment in the harness is replayable; SplitMix64 is the
//! standard tiny generator for that job (and is also what seeds are expanded
//! with in `rand`).

/// SplitMix64 pseudo-random generator (public-domain algorithm by Sebastiano
/// Vigna).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift (Lemire); bias is negligible for simulation use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A stateless 64-bit mix, used to scramble Zipfian ranks over the keyspace
/// (the YCSB "scrambled zipfian" trick) and to synthesize key bytes.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut g = SplitMix64::new(9);
        for _ in 0..10_000 {
            assert!(g.next_bounded(13) < 13);
        }
    }

    #[test]
    fn bounded_hits_all_residues() {
        let mut g = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[g.next_bounded(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Distinct inputs must produce distinct outputs (mix64 is invertible).
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
