//! # anykey-workload
//!
//! Workload generation for the AnyKey reproduction.
//!
//! The paper evaluates 14 real-life key-value workloads (Table 2), each
//! defined by a fixed key size and value size, driven with a
//! Zipfian-distributed key popularity (θ = 0.99 by default), a 20 % write
//! ratio, and — for Figure 18 — range scans of configurable length. This
//! crate provides:
//!
//! * [`WorkloadSpec`]: the 14 named workloads with their key/value sizes and
//!   high-/low-v/k classification,
//! * [`ZipfianGen`]: a YCSB-style (scrambled) Zipfian key generator,
//! * [`OpStream`]: a deterministic, seeded stream of GET/PUT/SCAN operations.
//!
//! ```
//! use anykey_workload::{spec, OpStreamBuilder};
//!
//! let zippy = spec::by_name("ZippyDB").unwrap();
//! let ops: Vec<_> = OpStreamBuilder::new(zippy, 10_000)
//!     .write_ratio(0.2)
//!     .seed(7)
//!     .build()
//!     .take(100)
//!     .collect();
//! assert_eq!(ops.len(), 100);
//! ```

/// Operation streams (gets/puts/deletes/scans) over a keyspace.
pub mod ops;
/// Deterministic pseudo-random number generation.
pub mod rng;
/// The paper's Table 1 workload specifications.
pub mod spec;
/// Zipfian and uniform key-popularity distributions.
pub mod zipfian;

/// A single KV operation and builders for deterministic op streams.
pub use ops::{Op, OpStream, OpStreamBuilder};
/// SplitMix64 PRNG — deterministic and dependency-free.
pub use rng::SplitMix64;
/// Named workload specs and their value/key categories.
pub use spec::{Category, WorkloadSpec};
/// Key-popularity distributions (Zipfian, uniform).
pub use zipfian::{KeyDist, ZipfianGen};
