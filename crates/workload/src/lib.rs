//! # anykey-workload
//!
//! Workload generation for the AnyKey reproduction.
//!
//! The paper evaluates 14 real-life key-value workloads (Table 2), each
//! defined by a fixed key size and value size, driven with a
//! Zipfian-distributed key popularity (θ = 0.99 by default), a 20 % write
//! ratio, and — for Figure 18 — range scans of configurable length. This
//! crate provides:
//!
//! * [`WorkloadSpec`]: the 14 named workloads with their key/value sizes and
//!   high-/low-v/k classification,
//! * [`ZipfianGen`]: a YCSB-style (scrambled) Zipfian key generator,
//! * [`OpStream`]: a deterministic, seeded stream of GET/PUT/SCAN operations.
//!
//! ```
//! use anykey_workload::{spec, OpStreamBuilder};
//!
//! let zippy = spec::by_name("ZippyDB").unwrap();
//! let ops: Vec<_> = OpStreamBuilder::new(zippy, 10_000)
//!     .write_ratio(0.2)
//!     .seed(7)
//!     .build()
//!     .take(100)
//!     .collect();
//! assert_eq!(ops.len(), 100);
//! ```

pub mod ops;
pub mod rng;
pub mod spec;
pub mod zipfian;

pub use ops::{Op, OpStream, OpStreamBuilder};
pub use rng::SplitMix64;
pub use spec::{Category, WorkloadSpec};
pub use zipfian::{KeyDist, ZipfianGen};
