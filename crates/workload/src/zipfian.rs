//! Zipfian and uniform key-popularity distributions.
//!
//! The paper drives every workload with a Zipfian key distribution
//! (θ = 0.99 by default; Figure 17 sweeps θ). We implement the classic
//! YCSB/Gray et al. rejection-free Zipfian generator, with rank scrambling
//! so that popular keys are spread over the whole keyspace instead of
//! clustering at the low ids (which would give LSM levels unrealistic
//! locality).

use crate::rng::{mix64, SplitMix64};

/// Key-popularity distribution over a keyspace of `n` items.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyDist {
    /// Zipfian with parameter θ (YCSB calls this `zipfian constant`).
    Zipfian {
        /// Skew parameter; 0.99 is the paper's default.
        theta: f64,
    },
    /// Every key equally likely.
    Uniform,
}

impl Default for KeyDist {
    fn default() -> Self {
        KeyDist::Zipfian { theta: 0.99 }
    }
}

/// Draws keys in `[0, n)` according to a [`KeyDist`].
///
/// Ranks are scrambled with a 64-bit mix so rank 0 (the hottest key) is an
/// arbitrary id, as in YCSB's `ScrambledZipfianGenerator`.
#[derive(Debug, Clone)]
pub struct ZipfianGen {
    n: u64,
    dist: Dist,
    rng: SplitMix64,
    scramble: bool,
}

#[derive(Debug, Clone)]
enum Dist {
    Zipfian {
        theta: f64,
        alpha: f64,
        zetan: f64,
        eta: f64,
    },
    Uniform,
}

/// Computes the generalized harmonic number ζ(n, θ) = Σ_{i=1..n} 1/i^θ.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl ZipfianGen {
    /// A generator over `n` keys with the given distribution and seed.
    ///
    /// For Zipfian distributions this computes ζ(n, θ) up front, which is
    /// O(n) — a few milliseconds for the multi-million-key spaces used in
    /// the experiments.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or θ is not in `(0, 2)`.
    pub fn new(n: u64, dist: KeyDist, seed: u64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        let dist = match dist {
            KeyDist::Zipfian { theta } => {
                assert!(
                    theta > 0.0 && theta < 2.0 && (theta - 1.0).abs() > 1e-9,
                    "theta must be in (0,2) and != 1, got {theta}"
                );
                let zetan = zeta(n, theta);
                let zeta2 = zeta(2, theta);
                let alpha = 1.0 / (1.0 - theta);
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                Dist::Zipfian {
                    theta,
                    alpha,
                    zetan,
                    eta,
                }
            }
            KeyDist::Uniform => Dist::Uniform,
        };
        Self {
            n,
            dist,
            rng: SplitMix64::new(seed),
            scramble: true,
        }
    }

    /// Disables rank scrambling (rank 0 becomes key 0) — useful in tests
    /// that assert on the popularity of specific ids.
    pub fn without_scramble(mut self) -> Self {
        self.scramble = false;
        self
    }

    /// Number of keys in the keyspace.
    pub fn keyspace(&self) -> u64 {
        self.n
    }

    /// Draws the next key id in `[0, n)`.
    pub fn next_key(&mut self) -> u64 {
        let rank = match &self.dist {
            // Uniform draws need no scrambling (mix64 % n is not a
            // permutation, so scrambling would skew coverage).
            Dist::Uniform => return self.rng.next_bounded(self.n),
            Dist::Zipfian {
                theta,
                alpha,
                zetan,
                eta,
            } => {
                let u = self.rng.next_f64();
                let uz = u * zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(*theta) {
                    1
                } else {
                    let r = (self.n as f64 * (eta * u - eta + 1.0).powf(*alpha)) as u64;
                    r.min(self.n - 1)
                }
            }
        };
        if self.scramble {
            mix64(rank) % self.n
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscrambled_zipfian_prefers_low_ranks() {
        let mut g = ZipfianGen::new(10_000, KeyDist::Zipfian { theta: 0.99 }, 1).without_scramble();
        let mut rank0 = 0usize;
        let draws = 100_000;
        for _ in 0..draws {
            if g.next_key() == 0 {
                rank0 += 1;
            }
        }
        // With theta=0.99 and n=10k, rank 0 gets ~1/zetan ≈ 9-10% of draws.
        let frac = rank0 as f64 / draws as f64;
        assert!(frac > 0.05, "hottest key got only {frac}");
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let hot_mass = |theta: f64| {
            let mut g = ZipfianGen::new(100_000, KeyDist::Zipfian { theta }, 5).without_scramble();
            let mut hot = 0usize;
            for _ in 0..50_000 {
                if g.next_key() < 100 {
                    hot += 1;
                }
            }
            hot
        };
        assert!(hot_mass(1.2) > hot_mass(0.6));
    }

    #[test]
    fn uniform_covers_keyspace_evenly() {
        let mut g = ZipfianGen::new(100, KeyDist::Uniform, 3);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[g.next_key() as usize] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(max < 2 * min, "uniform draw too lumpy: {min}..{max}");
    }

    #[test]
    fn keys_stay_in_range() {
        for dist in [KeyDist::Zipfian { theta: 0.99 }, KeyDist::Uniform] {
            let mut g = ZipfianGen::new(97, dist, 11);
            for _ in 0..10_000 {
                assert!(g.next_key() < 97);
            }
        }
    }

    #[test]
    fn scrambling_moves_the_hot_key() {
        let mut plain =
            ZipfianGen::new(1_000_000, KeyDist::Zipfian { theta: 0.99 }, 2).without_scramble();
        let mut scrambled = ZipfianGen::new(1_000_000, KeyDist::Zipfian { theta: 0.99 }, 2);
        // Most frequent plain key is 0; scrambled generator should rarely
        // produce 0.
        let mut zero_plain = 0;
        let mut zero_scrambled = 0;
        for _ in 0..10_000 {
            if plain.next_key() == 0 {
                zero_plain += 1;
            }
            if scrambled.next_key() == 0 {
                zero_scrambled += 1;
            }
        }
        assert!(zero_plain > 100);
        assert!(zero_scrambled < zero_plain / 10);
    }

    #[test]
    #[should_panic(expected = "keyspace")]
    fn empty_keyspace_panics() {
        let _ = ZipfianGen::new(0, KeyDist::Uniform, 0);
    }

    #[test]
    fn zeta_matches_hand_computation() {
        let z = zeta(3, 1.0_f64.next_down());
        // ~ 1 + 1/2 + 1/3
        assert!((z - 1.8333).abs() < 0.01);
    }
}
