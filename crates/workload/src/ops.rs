//! Operation streams: the request mix the host issues to the device.

use crate::rng::SplitMix64;
use crate::spec::WorkloadSpec;
use crate::zipfian::{KeyDist, ZipfianGen};

/// One host request.
///
/// Keys are abstract 64-bit ids in `[0, keyspace)`; the engine synthesizes
/// the actual key bytes (at the workload's fixed key length) from the id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Point lookup.
    Get {
        /// Key id.
        key: u64,
    },
    /// Insert or update.
    Put {
        /// Key id.
        key: u64,
        /// Value length in bytes.
        value_len: u32,
    },
    /// Remove a key.
    Delete {
        /// Key id.
        key: u64,
    },
    /// Range scan: `len` consecutive keys starting at `start` (in key
    /// order).
    Scan {
        /// First key id of the range.
        start: u64,
        /// Number of consecutive keys to return.
        len: u32,
    },
}

impl Op {
    /// Whether this operation mutates the store.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Put { .. } | Op::Delete { .. })
    }
}

/// Builder for a deterministic [`OpStream`].
///
/// Defaults mirror the paper's Section 5.1 configuration: Zipfian θ = 0.99,
/// 20 % writes, no scans, no deletes.
#[derive(Debug, Clone)]
pub struct OpStreamBuilder {
    spec: WorkloadSpec,
    keyspace: u64,
    write_ratio: f64,
    delete_ratio: f64,
    scan_ratio: f64,
    scan_len: u32,
    dist: KeyDist,
    seed: u64,
}

impl OpStreamBuilder {
    /// Starts a builder for `spec` over `keyspace` keys.
    pub fn new(spec: WorkloadSpec, keyspace: u64) -> Self {
        Self {
            spec,
            keyspace,
            write_ratio: 0.2,
            delete_ratio: 0.0,
            scan_ratio: 0.0,
            scan_len: 100,
            dist: KeyDist::default(),
            seed: 0x5EED,
        }
    }

    /// Fraction of operations that are PUTs (paper default: 0.2).
    pub fn write_ratio(mut self, r: f64) -> Self {
        self.write_ratio = r;
        self
    }

    /// Fraction of operations that are DELETEs.
    pub fn delete_ratio(mut self, r: f64) -> Self {
        self.delete_ratio = r;
        self
    }

    /// Fraction of operations that are SCANs, and their length (Figure 18's
    /// scan-centric UDB workload).
    pub fn scans(mut self, ratio: f64, len: u32) -> Self {
        self.scan_ratio = ratio;
        self.scan_len = len;
        self
    }

    /// Key-popularity distribution (paper default: Zipfian θ = 0.99).
    pub fn dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// RNG seed; identical seeds give identical streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the infinite operation stream.
    ///
    /// # Panics
    ///
    /// Panics if the ratios sum to more than 1.
    pub fn build(self) -> OpStream {
        let total = self.write_ratio + self.delete_ratio + self.scan_ratio;
        assert!(
            (0.0..=1.0).contains(&total),
            "op ratios must sum to at most 1, got {total}"
        );
        OpStream {
            value_len: self.spec.value_len,
            write_ratio: self.write_ratio,
            delete_ratio: self.delete_ratio,
            scan_ratio: self.scan_ratio,
            scan_len: self.scan_len,
            keys: ZipfianGen::new(self.keyspace, self.dist, self.seed),
            mix_rng: SplitMix64::new(self.seed ^ 0xA11C_E5ED),
        }
    }
}

/// An infinite, deterministic stream of [`Op`]s.
#[derive(Debug, Clone)]
pub struct OpStream {
    value_len: u32,
    write_ratio: f64,
    delete_ratio: f64,
    scan_ratio: f64,
    scan_len: u32,
    keys: ZipfianGen,
    mix_rng: SplitMix64,
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let key = self.keys.next_key();
        let roll = self.mix_rng.next_f64();
        let op = if roll < self.write_ratio {
            Op::Put {
                key,
                value_len: self.value_len,
            }
        } else if roll < self.write_ratio + self.delete_ratio {
            Op::Delete { key }
        } else if roll < self.write_ratio + self.delete_ratio + self.scan_ratio {
            Op::Scan {
                start: key,
                len: self.scan_len,
            }
        } else {
            Op::Get { key }
        };
        Some(op)
    }
}

/// The warm-up fill sequence: inserts every key in `[0, keyspace)` exactly
/// once, in an order deterministically shuffled by `seed`.
///
/// The paper's warm-up stage fills the device with all KV pairs and runs
/// compaction/GC until steady state; this provides the insertion order.
pub fn fill_ops(spec: WorkloadSpec, keyspace: u64, seed: u64) -> impl Iterator<Item = Op> {
    // A Feistel-like permutation over [0, keyspace) via cycle-walking on the
    // next power of two, so every key appears exactly once.
    let bits = 64 - keyspace.next_power_of_two().leading_zeros().max(1);
    let mask = (1u64 << bits) - 1;
    let k1 = crate::rng::mix64(seed);
    let k2 = crate::rng::mix64(seed ^ 0xDEAD_BEEF);
    let value_len = spec.value_len;
    (0..keyspace).map(move |i| {
        let mut x = i;
        loop {
            // Two rounds of a tiny Feistel network on `bits` bits.
            let half = bits / 2;
            let (mut l, mut r) = (x >> half, x & ((1 << half) - 1));
            for k in [k1, k2] {
                let f = crate::rng::mix64(r ^ k) & ((1 << half) - 1);
                let nl = r;
                r = l ^ f;
                l = nl;
            }
            x = ((l << half) | r) & mask;
            if x < keyspace {
                break;
            }
        }
        Op::Put { key: x, value_len }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn etc() -> WorkloadSpec {
        spec::by_name("ETC").unwrap()
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<_> = OpStreamBuilder::new(etc(), 1000)
            .seed(1)
            .build()
            .take(500)
            .collect();
        let b: Vec<_> = OpStreamBuilder::new(etc(), 1000)
            .seed(1)
            .build()
            .take(500)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn write_ratio_is_honored() {
        let ops: Vec<_> = OpStreamBuilder::new(etc(), 10_000)
            .write_ratio(0.2)
            .build()
            .take(100_000)
            .collect();
        let writes = ops.iter().filter(|o| o.is_write()).count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.2).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn puts_use_spec_value_len() {
        let op = OpStreamBuilder::new(etc(), 10)
            .write_ratio(1.0)
            .build()
            .next()
            .unwrap();
        assert_eq!(
            op,
            match op {
                Op::Put { key, .. } => Op::Put {
                    key,
                    value_len: 358
                },
                other => other,
            }
        );
    }

    #[test]
    fn scan_stream_produces_scans() {
        let ops: Vec<_> = OpStreamBuilder::new(etc(), 1000)
            .write_ratio(0.0)
            .scans(1.0, 150)
            .build()
            .take(10)
            .collect();
        assert!(ops.iter().all(|o| matches!(o, Op::Scan { len: 150, .. })));
    }

    #[test]
    fn fill_ops_is_a_permutation() {
        use std::collections::HashSet;
        let n = 1000;
        let keys: HashSet<u64> = fill_ops(etc(), n, 7)
            .map(|op| match op {
                Op::Put { key, .. } => key,
                _ => panic!("fill must only produce puts"),
            })
            .collect();
        assert_eq!(keys.len(), n as usize);
        assert!(keys.iter().all(|&k| k < n));
    }

    #[test]
    fn fill_ops_is_shuffled() {
        let first_ten: Vec<u64> = fill_ops(etc(), 1_000_000, 3)
            .take(10)
            .map(|op| match op {
                Op::Put { key, .. } => key,
                _ => unreachable!(),
            })
            .collect();
        assert_ne!(first_ten, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "ratios")]
    fn over_unity_ratios_panic() {
        let _ = OpStreamBuilder::new(etc(), 10)
            .write_ratio(0.8)
            .scans(0.5, 10)
            .build();
    }
}
