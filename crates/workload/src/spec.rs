//! The paper's Table 2: the 14 tested KV workloads.

use std::fmt;

/// Whether a workload's value-to-key ratio puts it in the paper's
/// "high-v/k" (the traditionally-studied kind) or "low-v/k" (the kind that
/// breaks existing KV-SSDs) class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Values much larger than keys (KVSSD, YCSB, W-PinK, Xbox).
    HighVk,
    /// Keys comparable to — or larger than — values (the other ten).
    LowVk,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::HighVk => "high-v/k",
            Category::LowVk => "low-v/k",
        })
    }
}

/// One row of the paper's Table 2: a named workload with fixed key and
/// value sizes (bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadSpec {
    /// Workload name as used throughout the paper.
    pub name: &'static str,
    /// Key size in bytes.
    pub key_len: u32,
    /// Value size in bytes.
    pub value_len: u32,
    /// One-line provenance from Table 2.
    pub description: &'static str,
    /// High- or low-v/k per the paper's classification.
    pub category: Category,
}

impl WorkloadSpec {
    /// The value-to-key ratio that names the two workload classes.
    pub fn vk_ratio(&self) -> f64 {
        self.value_len as f64 / self.key_len as f64
    }

    /// Bytes a single KV pair contributes as user data.
    pub fn pair_bytes(&self) -> u64 {
        self.key_len as u64 + self.value_len as u64
    }

    /// A synthetic spec for parameter sweeps (e.g. Figure 2's v/k sweep
    /// fixes the key at 40 B and varies the value from 20 B to 1280 B).
    pub fn synthetic(name: &'static str, key_len: u32, value_len: u32) -> Self {
        let category = if value_len >= 10 * key_len {
            Category::HighVk
        } else {
            Category::LowVk
        };
        Self {
            name,
            key_len,
            value_len,
            description: "synthetic sweep point",
            category,
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (k={}B, v={}B, {})",
            self.name, self.key_len, self.value_len, self.category
        )
    }
}

/// Table 2, in the paper's order (high-v/k first, then low-v/k by
/// descending ratio).
pub const ALL: [WorkloadSpec; 14] = [
    WorkloadSpec {
        name: "KVSSD",
        key_len: 16,
        value_len: 4096,
        description: "The workload used in Samsung's KV-SSD work",
        category: Category::HighVk,
    },
    WorkloadSpec {
        name: "YCSB",
        key_len: 20,
        value_len: 1000,
        description: "The default key and value sizes of YCSB",
        category: Category::HighVk,
    },
    WorkloadSpec {
        name: "W-PinK",
        key_len: 32,
        value_len: 1024,
        description: "The workload used in PinK",
        category: Category::HighVk,
    },
    WorkloadSpec {
        name: "Xbox",
        key_len: 94,
        value_len: 1200,
        description: "Xbox LIVE Primetime online game",
        category: Category::HighVk,
    },
    WorkloadSpec {
        name: "ETC",
        key_len: 41,
        value_len: 358,
        description: "General-purpose KV store of Facebook",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "UDB",
        key_len: 27,
        value_len: 127,
        description: "Facebook storage layer for the social graph",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "Cache",
        key_len: 42,
        value_len: 188,
        description: "Twitter's cache cluster",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "VAR",
        key_len: 35,
        value_len: 115,
        description: "Server-side browser information of Facebook",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "Crypto2",
        key_len: 37,
        value_len: 110,
        description: "Trezor's KV store for a Bitcoin wallet",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "Dedup",
        key_len: 20,
        value_len: 44,
        description: "DB of Microsoft's storage deduplication engine",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "Cache15",
        key_len: 38,
        value_len: 38,
        description: "15% of the 153 cache clusters at Twitter",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "ZippyDB",
        key_len: 48,
        value_len: 43,
        description: "Object metadata of a Facebook store",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "Crypto1",
        key_len: 76,
        value_len: 50,
        description: "BlockStream's store for a Bitcoin explorer",
        category: Category::LowVk,
    },
    WorkloadSpec {
        name: "RTDATA",
        key_len: 24,
        value_len: 10,
        description: "IBM's real-time data analytics workloads",
        category: Category::LowVk,
    },
];

/// Looks a workload up by its Table-2 name (case-insensitive).
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    ALL.iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .copied()
}

/// The four high-v/k workloads.
pub fn high_vk() -> impl Iterator<Item = WorkloadSpec> {
    ALL.into_iter().filter(|w| w.category == Category::HighVk)
}

/// The ten low-v/k workloads.
pub fn low_vk() -> impl Iterator<Item = WorkloadSpec> {
    ALL.into_iter().filter(|w| w.category == Category::LowVk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_has_fourteen_workloads() {
        assert_eq!(ALL.len(), 14);
        assert_eq!(high_vk().count(), 4);
        assert_eq!(low_vk().count(), 10);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(by_name("zippydb").unwrap().key_len, 48);
        assert_eq!(by_name("W-PINK").unwrap().value_len, 1024);
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn high_vk_ratios_dominate_low_vk() {
        let min_high = high_vk().map(|w| w.vk_ratio()).fold(f64::MAX, f64::min);
        let max_low = low_vk().map(|w| w.vk_ratio()).fold(f64::MIN, f64::max);
        assert!(min_high > max_low);
    }

    #[test]
    fn crypto1_and_rtdata_have_keys_larger_than_values() {
        assert!(by_name("Crypto1").unwrap().vk_ratio() < 1.0);
        assert!(by_name("RTDATA").unwrap().vk_ratio() < 1.0);
    }

    #[test]
    fn names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = ALL.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), ALL.len());
    }

    #[test]
    fn synthetic_classifies_by_ratio() {
        assert_eq!(
            WorkloadSpec::synthetic("s", 40, 1280).category,
            Category::HighVk
        );
        assert_eq!(
            WorkloadSpec::synthetic("s", 40, 20).category,
            Category::LowVk
        );
    }
}
