//! Engine error types.

use std::error::Error;
use std::fmt;

use anykey_flash::FreeError;

use crate::audit::AuditError;

/// Errors surfaced by the KV engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The device cannot accept more data: the flash regions (group/data
    /// area or value log) are exhausted even after compaction and GC.
    ///
    /// This is the signal the Figure-14 storage-utilization experiment
    /// fills toward.
    DeviceFull,
    /// A key id too large for the workload's key length (the synthesized
    /// big-endian id would not fit in the key bytes, breaking ordering).
    KeyTooLarge {
        /// The offending key id.
        id: u64,
        /// The configured key length in bytes.
        key_len: u16,
    },
    /// An engine-internal bookkeeping invariant failed — a state that must
    /// be unreachable in a correct engine (e.g. a peeked iterator entry
    /// vanishing mid-merge, or a spilled segment without a flash location).
    /// `context` names the violated expectation.
    Internal {
        /// The violated expectation, as a static description.
        context: &'static str,
    },
    /// A flash block referenced by engine bookkeeping (value log, group
    /// area, data area) is not tracked by the owning structure.
    UntrackedBlock {
        /// The untracked global block id.
        block: u32,
        /// Which structure was consulted.
        owner: &'static str,
    },
    /// A block allocator rejected a free or retire request (double free,
    /// out-of-range block, or an already-retired block).
    BlockFree(FreeError),
    /// A structural-invariant audit failed (see [`crate::audit`]); raised
    /// at compaction/GC/spill boundaries under the `strict-invariants`
    /// feature.
    Audit(AuditError),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::DeviceFull => f.write_str("device is full"),
            KvError::KeyTooLarge { id, key_len } => {
                write!(f, "key id {id} does not fit in a {key_len}-byte key")
            }
            KvError::Internal { context } => {
                write!(f, "internal invariant violated: {context}")
            }
            KvError::UntrackedBlock { block, owner } => {
                write!(f, "block B{block} is not tracked by the {owner}")
            }
            KvError::BlockFree(e) => write!(f, "block allocator misuse: {e}"),
            KvError::Audit(e) => write!(f, "invariant audit failed: {e}"),
        }
    }
}

impl Error for KvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KvError::BlockFree(e) => Some(e),
            KvError::Audit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AuditError> for KvError {
    fn from(e: AuditError) -> Self {
        KvError::Audit(e)
    }
}

impl From<FreeError> for KvError {
    fn from(e: FreeError) -> Self {
        KvError::BlockFree(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let s = KvError::DeviceFull.to_string();
        assert!(s.chars().next().unwrap().is_lowercase());
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KvError>();
    }
}
