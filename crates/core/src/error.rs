//! Engine error types.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the KV engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The device cannot accept more data: the flash regions (group/data
    /// area or value log) are exhausted even after compaction and GC.
    ///
    /// This is the signal the Figure-14 storage-utilization experiment
    /// fills toward.
    DeviceFull,
    /// A key id too large for the workload's key length (the synthesized
    /// big-endian id would not fit in the key bytes, breaking ordering).
    KeyTooLarge {
        /// The offending key id.
        id: u64,
        /// The configured key length in bytes.
        key_len: u16,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::DeviceFull => f.write_str("device is full"),
            KvError::KeyTooLarge { id, key_len } => {
                write!(f, "key id {id} does not fit in a {key_len}-byte key")
            }
        }
    }
}

impl Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let s = KvError::DeviceFull.to_string();
        assert!(s.chars().next().unwrap().is_lowercase());
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KvError>();
    }
}
