//! The DRAM write buffer (L0).
//!
//! Both engines buffer incoming PUT/DELETE requests in device DRAM and
//! flush them into L1 via an L0→L1 compaction when the buffer reservation
//! fills (paper Section 4.4.2). Lookups check the buffer first — the newest
//! version of a key always wins.

use std::collections::BTreeMap;

use crate::key::Key;

/// Per-entry bookkeeping overhead in the buffer (skip-list node, pointers).
pub const BUFFER_ENTRY_OVERHEAD: u64 = 16;

/// One buffered mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufEntry {
    /// Value length in bytes (0 for tombstones).
    pub value_len: u32,
    /// Whether this entry deletes the key.
    pub tombstone: bool,
}

/// A capacity-bounded, key-ordered write buffer.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    map: BTreeMap<Key, BufEntry>,
    bytes: u64,
    capacity: u64,
}

impl WriteBuffer {
    /// A buffer with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Self {
            map: BTreeMap::new(),
            bytes: 0,
            capacity,
        }
    }

    fn entry_bytes(key: Key, e: BufEntry) -> u64 {
        key.len() as u64 + e.value_len as u64 + BUFFER_ENTRY_OVERHEAD
    }

    /// Inserts or replaces a mutation for `key`.
    pub fn insert(&mut self, key: Key, entry: BufEntry) {
        if let Some(old) = self.map.insert(key, entry) {
            self.bytes -= Self::entry_bytes(key, old);
        }
        self.bytes += Self::entry_bytes(key, entry);
    }

    /// The buffered mutation for `key`, if any.
    pub fn get(&self, key: &Key) -> Option<&BufEntry> {
        self.map.get(key)
    }

    /// Whether the buffer has reached its capacity and must flush.
    pub fn is_full(&self) -> bool {
        self.bytes >= self.capacity
    }

    /// Current buffered bytes (including per-entry overhead).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total value bytes of buffered non-tombstone entries — the log space
    /// an L0 flush will need.
    pub fn pending_value_bytes(&self) -> u64 {
        self.map
            .values()
            .filter(|e| !e.tombstone)
            .map(|e| e.value_len as u64)
            .sum()
    }

    /// Takes all entries (key-ordered), leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<(Key, BufEntry)> {
        self.bytes = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }

    /// Buffered entries with keys in `[start, ..)`, in key order — used by
    /// range scans to merge L0 results.
    pub fn range_from(&self, start: Key) -> impl Iterator<Item = (&Key, &BufEntry)> {
        self.map.range(start..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(id: u64) -> Key {
        Key::new(id, 16).unwrap()
    }

    #[test]
    fn insert_then_get() {
        let mut b = WriteBuffer::new(1000);
        b.insert(
            k(1),
            BufEntry {
                value_len: 100,
                tombstone: false,
            },
        );
        assert_eq!(b.get(&k(1)).unwrap().value_len, 100);
        assert!(b.get(&k(2)).is_none());
    }

    #[test]
    fn replacement_does_not_leak_bytes() {
        let mut b = WriteBuffer::new(1000);
        let e = BufEntry {
            value_len: 100,
            tombstone: false,
        };
        b.insert(k(1), e);
        let once = b.bytes();
        b.insert(k(1), e);
        assert_eq!(b.bytes(), once);
        b.insert(
            k(1),
            BufEntry {
                value_len: 10,
                tombstone: false,
            },
        );
        assert!(b.bytes() < once);
    }

    #[test]
    fn fills_at_capacity() {
        let mut b = WriteBuffer::new(300);
        let e = BufEntry {
            value_len: 100,
            tombstone: false,
        };
        b.insert(k(1), e);
        assert!(!b.is_full());
        b.insert(k(2), e);
        assert!(!b.is_full());
        b.insert(k(3), e);
        assert!(b.is_full());
    }

    #[test]
    fn drain_returns_sorted_and_resets() {
        let mut b = WriteBuffer::new(1000);
        for id in [5u64, 1, 3] {
            b.insert(
                k(id),
                BufEntry {
                    value_len: 10,
                    tombstone: false,
                },
            );
        }
        let drained = b.drain();
        let ids: Vec<u64> = drained.iter().map(|(key, _)| key.id()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }

    #[test]
    fn tombstones_are_buffered() {
        let mut b = WriteBuffer::new(1000);
        b.insert(
            k(9),
            BufEntry {
                value_len: 0,
                tombstone: true,
            },
        );
        assert!(b.get(&k(9)).unwrap().tombstone);
    }

    #[test]
    fn range_from_is_inclusive_and_ordered() {
        let mut b = WriteBuffer::new(1000);
        for id in [1u64, 2, 4, 8] {
            b.insert(
                k(id),
                BufEntry {
                    value_len: 1,
                    tombstone: false,
                },
            );
        }
        let ids: Vec<u64> = b.range_from(k(2)).map(|(key, _)| key.id()).collect();
        assert_eq!(ids, vec![2, 4, 8]);
    }
}
