//! Group-area block management and garbage collection.
//!
//! Compaction invalidates whole data segment groups, and a compaction's
//! output goes to freshly-opened blocks, so blocks overwhelmingly hold
//! groups of a single level and become *entirely* invalid together — the
//! paper's observation (Section 4.4.4) that most victim blocks in AnyKey
//! can be erased without relocating anything. The GC here handles the
//! remainder: it relocates surviving groups wholesale (a unit of multiple
//! pages) and patches the group's PPA in the level list.

use std::collections::HashMap;

use anykey_flash::{BlockAllocator, BlockId, FlashSim, Ns, OpCause, Ppa};

use crate::anykey::AnyKeyStore;
use crate::error::KvError;

/// The erase-block region that data segment groups live in.
#[derive(Debug, Clone)]
pub struct GroupArea {
    alloc: BlockAllocator,
    open: Option<(BlockId, u32)>,
    /// Per block: (valid groups, valid pages). GC victims are chosen by
    /// valid pages, so fragmented blocks are compacted before full ones.
    valid: HashMap<BlockId, (u32, u32)>,
    pages_per_block: u32,
}

impl GroupArea {
    /// An area over the given block range.
    pub fn new(alloc: BlockAllocator, pages_per_block: u32) -> Self {
        Self {
            alloc,
            open: None,
            valid: HashMap::new(),
            pages_per_block,
        }
    }

    /// Number of free blocks remaining.
    pub fn free_blocks(&self) -> usize {
        self.alloc.free_count()
    }

    /// Total blocks in the area.
    pub fn total_blocks(&self) -> usize {
        self.alloc.len()
    }

    /// Reserves `pages` consecutive pages for a group; opens a new block
    /// when the current one cannot fit the group.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when no block is available.
    pub fn place(&mut self, pages: u32) -> Result<Ppa, KvError> {
        if let Some((block, next)) = self.open {
            if self.pages_per_block - next >= pages {
                self.open = Some((block, next + pages));
                let e = self.valid.entry(block).or_insert((0, 0));
                e.0 += 1;
                e.1 += pages;
                return Ok(Ppa { block, page: next });
            }
            self.open = None;
        }
        let block = self.alloc.alloc().ok_or(KvError::DeviceFull)?;
        self.valid.insert(block, (1, pages));
        self.open = Some((block, pages));
        Ok(Ppa { block, page: 0 })
    }

    /// Seals the open block (compaction output boundaries — keeps blocks
    /// single-level).
    pub fn seal(&mut self) {
        self.open = None;
    }

    /// Marks one `pages`-page group of `block` invalid; returns `true`
    /// when the block is now empty and sealed (ready to erase).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::UntrackedBlock`] when `block` is not tracked by
    /// the area — a released group must have been placed here.
    pub fn release(&mut self, block: BlockId, pages: u32) -> Result<bool, KvError> {
        let e = self.valid.get_mut(&block).ok_or(KvError::UntrackedBlock {
            block: block.0,
            owner: "group area",
        })?;
        debug_assert!(e.0 > 0, "group count underflow on {block}");
        e.0 -= 1;
        e.1 = e.1.saturating_sub(pages);
        Ok(e.0 == 0 && self.open.map(|(b, _)| b) != Some(block))
    }

    /// Erases and frees a block that [`Self::release`] reported empty. A
    /// block whose erase fails is retired as a grown bad block instead of
    /// returning to the free pool.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::BlockFree`] if the allocator rejects the free or
    /// retire — an internal accounting bug, not a media condition.
    pub fn erase_empty(
        &mut self,
        flash: &mut FlashSim,
        block: BlockId,
        at: Ns,
    ) -> Result<Ns, KvError> {
        debug_assert_eq!(self.valid.get(&block).map(|e| e.0), Some(0));
        self.valid.remove(&block);
        if self.open.map(|(b, _)| b) == Some(block) {
            self.open = None;
        }
        let r = flash.erase(block, at);
        if r.status.is_ok() {
            self.alloc.free(block)?;
        } else {
            self.alloc.retire(block)?;
        }
        Ok(r.done)
    }

    /// The sealed block with the fewest valid *pages* (but at least one
    /// group) — the GC victim: fragmented blocks compact first. Blocks
    /// with zero valid groups were already erased by [`Self::erase_empty`].
    pub fn victim(&self) -> Option<(BlockId, u32)> {
        let open = self.open.map(|(b, _)| b);
        self.valid
            .iter()
            .filter(|(&b, &(c, _))| Some(b) != open && c > 0)
            .map(|(&b, &(_, pages))| (b, pages))
            .min_by_key(|&(b, pages)| (pages, b))
    }

    /// Number of valid groups tracked for `block` (testing/diagnostics).
    pub fn valid_in(&self, block: BlockId) -> u32 {
        self.valid.get(&block).map(|e| e.0).unwrap_or(0)
    }

    /// Number of blocks retired as grown bad blocks.
    pub fn retired_blocks(&self) -> usize {
        self.alloc.retired_count()
    }

    /// The area's block allocator (reliability stats and audits).
    pub fn allocator(&self) -> &BlockAllocator {
        &self.alloc
    }

    /// Test-only corruption hook: retires `block` regardless of media
    /// state.
    #[doc(hidden)]
    pub fn retire_for_test(&mut self, block: BlockId) {
        let _ = self.alloc.retire(block);
    }

    /// Test-only corruption hook: desynchronizes the allocator's
    /// retired-block count (forwards to
    /// [`anykey_flash::BlockAllocator::desync_retired_for_test`]).
    #[doc(hidden)]
    pub fn desync_retired_for_test(&mut self) {
        self.alloc.desync_retired_for_test();
    }

    /// The first block claiming more valid pages than an erase block
    /// holds, as `(block id, valid pages, pages per block)` — `None` on a
    /// healthy area. Used by the invariant auditor.
    pub fn first_overfull_block(&self) -> Option<(u32, u32, u32)> {
        self.valid
            .iter()
            .find(|(_, &(_, pages))| pages > self.pages_per_block)
            .map(|(&b, &(_, pages))| (b.0, pages, self.pages_per_block))
    }
}

/// Upper bound on consecutive placement retries after program failures;
/// exceeding it means the media is failing essentially every program, and
/// the device gives up with [`KvError::DeviceFull`] rather than spinning.
const MAX_PLACE_ATTEMPTS: usize = 512;

impl AnyKeyStore {
    /// Places a `pages`-page group and programs all of its pages,
    /// re-placing the whole group when any page program fails (groups must
    /// be page-contiguous). Failed spans stay consumed in their block; a
    /// block left with no valid groups by the recovery is erased (or
    /// retired) immediately so it cannot leak.
    pub(crate) fn place_group(
        &mut self,
        pages: u32,
        cause: OpCause,
        at: Ns,
    ) -> Result<(Ppa, Ns), KvError> {
        let mut done = at;
        let mut attempts = 0usize;
        'place: loop {
            attempts += 1;
            if attempts > MAX_PLACE_ATTEMPTS {
                self.debug_full("group placement kept failing");
                return Err(KvError::DeviceFull);
            }
            let first = self.area.place(pages)?;
            for i in 0..pages {
                let r = self.flash.program(first.offset(i), cause, at);
                done = done.max(r.done);
                if !r.status.is_ok() {
                    let sealed_empty = self.area.release(first.block, pages)?;
                    if sealed_empty || self.area.valid_in(first.block) == 0 {
                        done = done.max(self.area.erase_empty(&mut self.flash, first.block, at)?);
                    }
                    continue 'place;
                }
            }
            return Ok((first, done));
        }
    }

    /// Ensures at least `reserve_blocks` free blocks exist in the group
    /// area, relocating valid groups out of the fullest-garbage blocks when
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when GC cannot recover enough
    /// blocks.
    pub(crate) fn gc_if_needed(&mut self, at: Ns) -> Result<Ns, KvError> {
        self.gc_for_headroom(at, 0)
    }

    /// Like [`Self::gc_if_needed`], but clears `extra` additional blocks —
    /// the transient headroom a large compaction needs before its source
    /// blocks free up.
    pub(crate) fn gc_for_headroom(&mut self, at: Ns, extra: usize) -> Result<Ns, KvError> {
        let reserve = self.cfg.reserve_blocks as usize + extra;
        let mut t = at;
        let mut guard = 0usize;
        while self.area.free_blocks() < reserve {
            let Some((victim, _count)) = self.area.victim() else {
                self.debug_full("gc has no victim");
                return Err(KvError::DeviceFull);
            };
            guard += 1;
            if std::env::var("ANYKEY_DEBUG").is_ok() && guard % 16 == 0 {
                eprintln!(
                    "  gc iter {guard}: free={} victim={victim} pages={_count}",
                    self.area.free_blocks()
                );
            }
            if guard > self.area.total_blocks() * 2 {
                self.debug_full(&format!(
                    "gc made no progress: reserve={reserve} last victim {victim} count={_count}"
                ));
                return Err(KvError::DeviceFull);
            }
            t = self.relocate_block(victim, t)?;
        }
        Ok(t)
    }

    pub(crate) fn debug_full(&self, why: &str) {
        if std::env::var("ANYKEY_DEBUG").is_ok() {
            let groups: usize = self.levels.iter().map(|l| l.groups.len()).sum();
            let phys: u64 = self.levels.iter().map(|l| l.phys_bytes).sum();
            eprintln!(
                "AnyKey device-full ({why}): free_blocks={} total={} groups={groups} phys={}MB log_valid={}KB log_free={}KB",
                self.area.free_blocks(),
                self.area.total_blocks(),
                phys >> 20,
                self.log.as_ref().map(|l| l.valid_bytes() >> 10).unwrap_or(0),
                self.log.as_ref().map(|l| l.free_bytes() >> 10).unwrap_or(0),
            );
        }
    }

    /// Relocates every group of `victim` to fresh space and erases it.
    fn relocate_block(&mut self, victim: BlockId, at: Ns) -> Result<Ns, KvError> {
        #[cfg(feature = "trace")]
        let snap = self.span_snapshot();
        // Find the groups living in the victim block.
        let mut homes: Vec<(usize, usize)> = Vec::new();
        for (li, level) in self.levels.iter().enumerate() {
            for (gi, g) in level.groups.iter().enumerate() {
                if g.first_ppa.block == victim {
                    homes.push((li, gi));
                }
            }
        }
        // Read all pages of the relocating groups.
        let mut read_ppas = Vec::new();
        for &(li, gi) in &homes {
            read_ppas.extend(self.levels[li].groups[gi].all_ppas());
        }
        let t_read = self.flash.read_many(read_ppas, OpCause::GcRead, at);

        // Rewrite them and patch the level-list PPAs.
        let mut done = t_read;
        for &(li, gi) in &homes {
            let pages = self.levels[li].groups[gi].content.total_pages();
            let (new_ppa, td) = self.place_group(pages, OpCause::GcWrite, t_read)?;
            done = done.max(td);
            self.levels[li].groups[gi].first_ppa = new_ppa;
            // Deferred: the victim is erased below once all groups are out.
            self.area.release(victim, pages)?;
        }
        debug_assert_eq!(self.area.valid_in(victim), 0);
        done = done.max(self.area.erase_empty(&mut self.flash, victim, done)?);
        #[cfg(feature = "trace")]
        self.push_span(snap, "gc", "relocate", 0, at, done);
        #[cfg(any(test, feature = "strict-invariants"))]
        self.verify_invariants()?;
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(blocks: u32) -> GroupArea {
        GroupArea::new(BlockAllocator::new(0..blocks), 128)
    }

    #[test]
    fn place_packs_groups_into_blocks() {
        let mut a = area(4);
        let p1 = a.place(33).unwrap();
        let p2 = a.place(33).unwrap();
        let p3 = a.place(33).unwrap();
        assert_eq!(p1.block, p2.block);
        assert_eq!(p2.block, p3.block);
        assert_eq!(p3.page, 66);
        // A fourth 33-page group does not fit 128 pages: new block.
        let p4 = a.place(33).unwrap();
        assert_ne!(p4.block, p1.block);
        assert_eq!(a.valid_in(p1.block), 3);
    }

    #[test]
    fn release_reports_empty_only_when_sealed() {
        let mut a = area(3);
        let p = a.place(33).unwrap();
        assert!(
            !a.release(p.block, 33).unwrap(),
            "open block must not be erased"
        );
        let q = a.place(128).unwrap(); // forces a new block, sealing p's
        assert_ne!(p.block, q.block);
    }

    #[test]
    fn seal_then_release_allows_erase() {
        let mut a = area(2);
        let p = a.place(33).unwrap();
        a.seal();
        assert!(a.release(p.block, 33).unwrap());
    }

    #[test]
    fn victim_prefers_fewest_valid_pages() {
        let mut a = area(4);
        let p1 = a.place(64).unwrap();
        let _p2 = a.place(64).unwrap(); // same block, 2 groups = 128 pages
        let q = a.place(64).unwrap(); // new block, 64 pages
        a.seal();
        assert_ne!(p1.block, q.block);
        assert_eq!(a.victim().unwrap().0, q.block);
        // Releasing one group from p1's block drops it to 64 pages: tie;
        // lowest block id wins.
        a.release(p1.block, 64).unwrap();
        let (v, pages) = a.victim().unwrap();
        assert_eq!(pages, 64);
        assert_eq!(v, p1.block.min(q.block));
    }

    #[test]
    fn exhaustion_is_device_full() {
        let mut a = area(1);
        a.place(128).unwrap();
        assert_eq!(a.place(1).unwrap_err(), KvError::DeviceFull);
    }
}
