//! LSM levels of data segment groups.

use crate::anykey::group::Group;
use crate::key::Key;

/// One LSM-tree level: key-range-partitioned data segment groups plus the
/// level's size accounting.
#[derive(Debug, Clone, Default)]
pub struct Level {
    /// Groups sorted by smallest key; key ranges are disjoint.
    pub groups: Vec<Group>,
    /// Logical KV bytes in this level (keys + values, wherever values
    /// live).
    pub kv_bytes: u64,
    /// Physical flash bytes the level's groups occupy — what the
    /// tree-compaction threshold is measured against (so that log-triggered
    /// inlining genuinely grows a level, the situation AnyKey+'s θ guards).
    pub phys_bytes: u64,
    /// Bytes of this level's values that are parked in the value log.
    pub logged_bytes: u64,
    /// Estimated bytes of *invalid* (superseded) values this level still
    /// references in the value log — AnyKey+'s target-selection signal
    /// (Section 4.7).
    pub invalid_logged: u64,
    /// Size threshold that triggers tree compaction out of this level.
    pub threshold: u64,
}

impl Level {
    /// An empty level with the given compaction threshold.
    pub fn new(threshold: u64) -> Self {
        Self {
            threshold,
            ..Self::default()
        }
    }

    /// Index of the group whose key range (`[smallest_i, smallest_{i+1})`)
    /// contains `key` — what the DRAM level-list search yields. `None` when
    /// the key precedes the first group (or the level is empty).
    pub fn candidate(&self, key: Key) -> Option<usize> {
        let idx = self.groups.partition_point(|g| g.content.smallest() <= key);
        idx.checked_sub(1)
    }

    /// Index of the first group that can contain keys ≥ `key` (for scans).
    pub fn scan_start(&self, key: Key) -> usize {
        match self.candidate(key) {
            Some(i) if self.groups[i].content.largest() >= key => i,
            Some(i) => i + 1,
            None => 0,
        }
    }

    /// Whether the level holds no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Whether the level has outgrown its threshold.
    pub fn over_threshold(&self) -> bool {
        self.phys_bytes > self.threshold
    }

    /// Recomputes size accounting from the groups (after compaction
    /// replaces them).
    pub fn recount(&mut self) {
        self.kv_bytes = self.groups.iter().map(|g| g.content.kv_bytes).sum();
        self.phys_bytes = self.groups.iter().map(|g| g.content.phys_bytes).sum();
        self.logged_bytes = self.groups.iter().map(|g| g.content.logged_bytes).sum();
        debug_assert!(
            self.groups
                .windows(2)
                .all(|w| w[0].content.largest() < w[1].content.smallest()),
            "level groups must be disjoint and sorted"
        );
    }

    /// Total level-list bytes this level contributes to DRAM.
    pub fn meta_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.content.meta_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anykey::entity::{Entity, ValueLoc};
    use crate::anykey::group::GroupContent;
    use anykey_flash::Ppa;

    fn group(ids: std::ops::Range<u64>) -> Group {
        let ents: Vec<Entity> = ids
            .map(|id| {
                let key = Key::new(id, 16).unwrap();
                Entity {
                    key,
                    hash: key.hash32(),
                    value_len: 10,
                    loc: ValueLoc::Inline,
                    tombstone: false,
                    span_extra: 0,
                }
            })
            .collect();
        Group::new(GroupContent::build(ents, 8128), Ppa::new(0, 0))
    }

    fn level() -> Level {
        let mut l = Level::new(1 << 20);
        l.groups = vec![group(10..20), group(30..40), group(50..60)];
        l.recount();
        l
    }

    fn k(id: u64) -> Key {
        Key::new(id, 16).unwrap()
    }

    #[test]
    fn candidate_routes_by_smallest_key() {
        let l = level();
        assert_eq!(l.candidate(k(5)), None);
        assert_eq!(l.candidate(k(10)), Some(0));
        assert_eq!(l.candidate(k(25)), Some(0)); // gap: falls in group 0's range
        assert_eq!(l.candidate(k(30)), Some(1));
        assert_eq!(l.candidate(k(99)), Some(2));
    }

    #[test]
    fn scan_start_skips_exhausted_groups() {
        let l = level();
        assert_eq!(l.scan_start(k(5)), 0);
        assert_eq!(l.scan_start(k(15)), 0);
        assert_eq!(l.scan_start(k(25)), 1); // past group 0's largest (19)
        assert_eq!(l.scan_start(k(59)), 2);
        assert_eq!(l.scan_start(k(99)), 3); // past everything
    }

    #[test]
    fn recount_sums_groups() {
        let l = level();
        assert_eq!(l.kv_bytes, 30 * (16 + 10));
        assert_eq!(l.logged_bytes, 0);
        assert!(!l.over_threshold());
    }

    #[test]
    fn meta_bytes_is_group_sum() {
        let l = level();
        let per: u64 = l.groups[0].content.meta_bytes();
        assert_eq!(l.meta_bytes(), 3 * per);
    }
}
