//! Flush, tree-triggered and log-triggered compaction (paper Sections
//! 4.4.2–4.4.3 and the Section 4.7 AnyKey+ enhancement).

use anykey_flash::{Ns, OpCause, Ppa};

use crate::anykey::entity::{Entity, ValueLoc};
use crate::anykey::group::{pack_groups, Group};
use crate::anykey::level::Level;
use crate::anykey::AnyKeyStore;
use crate::error::KvError;

/// What a compaction does with values that live in the value log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum InlinePolicy {
    /// Tree-triggered compaction: pointers are copied, values stay put.
    Keep,
    /// Base AnyKey log-triggered compaction: every logged value of both
    /// levels is merged into the new data segment groups.
    InlineAll,
    /// AnyKey+ log-triggered compaction: inline until the destination
    /// level's physical size reaches the budget (θ × threshold), then write
    /// the remaining values back to the log head so their old blocks still
    /// free up (Figure 9b).
    InlineUntil(u64),
}

/// Where the upper input of a compaction comes from.
pub(crate) enum Source {
    /// An L0 flush: entities assembled from the write buffer.
    Flush(Vec<Entity>),
    /// A whole LSM level.
    Level(usize),
}

impl AnyKeyStore {
    /// Flushes the write buffer into L1 (an L0→L1 compaction), securing
    /// value-log space first and cascading tree compactions afterwards.
    pub(crate) fn flush(&mut self, at: Ns) -> Result<Ns, KvError> {
        if self.buffer.is_empty() {
            return Ok(at);
        }
        #[cfg(feature = "trace")]
        let snap = self.span_snapshot();
        let mut t = self.gc_if_needed(at)?;

        // Secure log space for the incoming values (log-triggered
        // compaction trigger, Section 4.4.3).
        let need = self.buffer.pending_value_bytes();
        if self.log.is_some() && need > 0 {
            let mut rounds = 0usize;
            while self.log.as_ref().is_some_and(|l| l.would_overflow(need)) {
                rounds += 1;
                if rounds > self.levels.len() + 2 {
                    self.debug_full("log relief made no progress");
                    return Err(KvError::DeviceFull);
                }
                // Escalate to unconditional inlining if θ-capped rounds
                // are not reclaiming enough space.
                t = self.log_triggered_compaction(t, rounds > 2)?;
            }
        }

        // Assemble entities; values go to the value log first (Section
        // 4.4.2), or inline for AnyKey−.
        let entries = self.buffer.drain();
        let mut ents = Vec::with_capacity(entries.len());
        let mut t_log = t;
        for (key, be) in entries {
            let loc = match self.log.as_mut() {
                Some(log) if !be.tombstone && be.value_len > 0 => {
                    let (ptr, done) = log.append(&mut self.flash, be.value_len, t)?;
                    t_log = t_log.max(done);
                    ValueLoc::Logged(ptr)
                }
                _ => ValueLoc::Inline,
            };
            ents.push(Entity {
                key,
                hash: key.hash32(),
                value_len: be.value_len,
                loc,
                tombstone: be.tombstone,
                span_extra: 0,
            });
        }
        let t_ack = self.compact(Source::Flush(ents), 0, InlinePolicy::Keep, t_log)?;
        // Deeper tree compactions run pipelined in the background: they
        // consume chip time (and therefore delay future flushes through
        // the background queues), but the buffer is available again once
        // the L0->L1 merge lands.
        self.maintain(t_ack)?;
        #[cfg(feature = "trace")]
        self.push_span(snap, "flush", "buffer", 0, at, t_ack);
        #[cfg(any(test, feature = "strict-invariants"))]
        self.verify_invariants()?;
        Ok(t_ack)
    }

    /// Cascades tree-triggered compactions while any level exceeds its
    /// threshold.
    pub(crate) fn maintain(&mut self, at: Ns) -> Result<Ns, KvError> {
        let mut t = at;
        let mut i = 0;
        while i < self.levels.len() {
            if self.levels[i].over_threshold() {
                self.ensure_next_level(i);
                t = self.compact(Source::Level(i), i + 1, InlinePolicy::Keep, t)?;
            } else {
                i += 1;
            }
        }
        Ok(t)
    }

    fn ensure_next_level(&mut self, i: usize) {
        if i + 1 == self.levels.len() {
            let threshold = self.levels[i].threshold * self.cfg.level_ratio;
            self.levels.push(Level::new(threshold));
        }
    }

    /// Log-triggered compaction (Section 4.4.3): pick a source level, merge
    /// it down with its values inlined, then reclaim fully-invalid log
    /// blocks. AnyKey selects the level with the most *valid* logged bytes;
    /// AnyKey+ the one with the most *invalid* logged bytes, and caps
    /// inlining at θ × threshold to avoid compaction chains (Section 4.7).
    pub(crate) fn log_triggered_compaction(
        &mut self,
        at: Ns,
        escalate: bool,
    ) -> Result<Ns, KvError> {
        let last_idx = self.levels.iter().rposition(|l| !l.is_empty()).unwrap_or(0);
        if self.is_plus() && !escalate {
            // AnyKey+ relieves the log with in-place partial rewrites:
            // every level's pointer-holding groups are rebuilt with their
            // values inlined, deepest (oldest log content) first. No level
            // merge happens, so no destination can overflow its threshold —
            // the compaction chain of Figure 9a is avoided entirely, which
            // is the goal of the paper's θ-capped variant. (The θ-capped
            // merge itself is implemented as InlinePolicy::InlineUntil and
            // exercised by escalated rounds.)
            if self.levels.iter().all(|l| l.logged_bytes == 0) {
                return Err(KvError::DeviceFull);
            }
            let mut t = at;
            let goal = self
                .log
                .as_ref()
                .map(|l| l.capacity_bytes() / 2)
                .unwrap_or(0);
            for li in (0..self.levels.len()).rev() {
                if self.levels[li].logged_bytes > 0 {
                    t = self.inline_rewrite_level(li, t)?;
                    let log = self.log.as_mut().ok_or(KvError::Internal {
                        context: "log-triggered compaction requires a log",
                    })?;
                    let (_, tr) = log.reclaim(&mut self.flash, t)?;
                    t = tr;
                    // Deep levels own the oldest log blocks; stop as soon
                    // as enough space is free so the hot upper-level
                    // values can keep dying in the log instead of being
                    // inlined and re-copied by every tree merge.
                    if self.log.as_ref().is_some_and(|l| l.free_bytes() >= goal) {
                        break;
                    }
                }
            }
            let done = self.maintain(t)?;
            #[cfg(any(test, feature = "strict-invariants"))]
            self.verify_invariants()?;
            return Ok(done);
        }
        let pick = if self.is_plus() {
            // AnyKey+ targets reclaimable log space (Section 4.7): the dead
            // bytes a level's updates stranded in the log, plus the live
            // bytes its θ-capped inlining can actually absorb — a merge
            // whose destination already sits at θ × threshold would inline
            // nothing and reclaim nothing.
            let mut best: Option<(u64, usize)> = None;
            for (i, l) in self.levels.iter().enumerate() {
                if l.logged_bytes == 0 && l.invalid_logged == 0 {
                    continue;
                }
                let inlineable = if i >= last_idx {
                    // In-place partial rewrite of the deepest level: no
                    // threshold interaction.
                    l.logged_bytes
                } else {
                    let dst = &self.levels[i + 1];
                    let room = ((self.cfg.theta * dst.threshold as f64) as u64)
                        .saturating_sub(l.phys_bytes + dst.phys_bytes);
                    room.min(l.logged_bytes + dst.logged_bytes)
                };
                // A level whose live values cannot be absorbed reclaims
                // nothing, however many dead bytes it left in the log.
                if inlineable == 0 {
                    continue;
                }
                let score = inlineable + l.invalid_logged;
                if best.map_or(true, |(s, _)| score > s) {
                    best = Some((score, i));
                }
            }
            best.map(|(_, i)| i)
        } else {
            None
        };
        let fallback = self
            .levels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.logged_bytes > 0)
            .max_by_key(|(_, l)| l.logged_bytes)
            .map(|(i, _)| i);
        // When no θ-capped merge can absorb anything, AnyKey+ falls back to
        // rewriting the most-logged level's affected groups in place — a
        // log-relieving move with no threshold interaction.
        let target = pick.or(fallback);
        let Some(src) = target else {
            // The log is full but no level references it — nothing can be
            // reclaimed.
            return Err(KvError::DeviceFull);
        };
        // Merging the deepest level "down" would deepen the tree with a
        // whole-dataset rewrite; instead, rewrite in place only the groups
        // of that level that still reference the log — same reclaim, a
        // fraction of the work.
        let last = last_idx.max(src.min(last_idx));
        let t = if src >= last {
            if self.is_plus() {
                // AnyKey+ rewrites only the groups that reference the log.
                self.inline_rewrite_level(src, at)?
            } else {
                // Base AnyKey rewrites the whole level — the expensive
                // behaviour that motivates the Section 4.7 enhancement.
                self.compact(Source::Level(src), src, InlinePolicy::InlineAll, at)?
            }
        } else {
            // θ-capped inlining only applies when merging *into* a deeper
            // level (the compaction-chain case); escalated rounds inline
            // everything.
            let policy = if self.is_plus() && !escalate {
                let budget = (self.cfg.theta * self.levels[src + 1].threshold as f64) as u64;
                InlinePolicy::InlineUntil(budget)
            } else {
                InlinePolicy::InlineAll
            };
            self.compact(Source::Level(src), src + 1, policy, at)?
        };
        let log = self.log.as_mut().ok_or(KvError::Internal {
            context: "log-triggered compaction requires a log",
        })?;
        let (freed, t) = log.reclaim(&mut self.flash, t)?;
        if std::env::var("ANYKEY_DEBUG").is_ok() {
            eprintln!(
                "log-triggered: src={src} last={last} escalate={escalate} freed={}KB log_free={}KB levels={}",
                freed >> 10,
                self.log.as_ref().map(|l| l.free_bytes() >> 10).unwrap_or(0),
                self.levels.len()
            );
        }
        // Base AnyKey: the inlined values may push the destination over its
        // threshold, immediately triggering a tree compaction — the
        // "compaction chain" of Figure 9a. AnyKey+'s θ cap makes this a
        // no-op.
        let done = self.maintain(t)?;
        #[cfg(any(test, feature = "strict-invariants"))]
        self.verify_invariants()?;
        Ok(done)
    }

    /// Rewrites, in place, every group of level `li` that references the
    /// value log, inlining those values. Used when the log-triggered
    /// target is the deepest level: untouched groups (the vast majority in
    /// steady state) are not rewritten.
    pub(crate) fn inline_rewrite_level(&mut self, li: usize, at: Ns) -> Result<Ns, KvError> {
        #[cfg(feature = "trace")]
        let snap = self.span_snapshot();
        // Pass 1: collect pages to read.
        let mut read_ppas: Vec<Ppa> = Vec::new();
        for g in &self.levels[li].groups {
            if g.content.logged_bytes > 0 {
                read_ppas.extend(g.all_ppas());
                for e in g.content.pages.iter().flatten() {
                    if let ValueLoc::Logged(ptr) = e.loc {
                        read_ppas.extend(crate::anykey::valuelog::ValueLog::ptr_pages(ptr));
                    }
                }
            }
        }
        if read_ppas.is_empty() {
            return Ok(at);
        }
        read_ppas.sort_unstable();
        read_ppas.dedup();
        let t_read = self.flash.read_many(read_ppas, OpCause::CompactionRead, at);

        // Pass 2: free the touched groups and collect their entities.
        let old = std::mem::take(&mut self.levels[li].groups);
        let mut out: Vec<Group> = Vec::with_capacity(old.len());
        let mut runs: Vec<Vec<Entity>> = Vec::new();
        let mut t_erase = t_read;
        let mut count = 0u64;
        for g in old {
            if g.content.logged_bytes == 0 {
                out.push(g);
                continue;
            }
            let mut ents: Vec<Entity> = g.content.iter_key_order().copied().collect();
            for e in &mut ents {
                if let ValueLoc::Logged(ptr) = e.loc {
                    self.log
                        .as_mut()
                        .ok_or(KvError::Internal {
                            context: "logged value without a log",
                        })?
                        .invalidate(ptr, e.value_len as u64);
                    e.loc = ValueLoc::Inline;
                }
            }
            count += ents.len() as u64;
            let pages = g.content.total_pages();
            runs.push(ents);
            if self.area.release(g.first_ppa.block, pages)? {
                t_erase = t_erase.max(self.area.erase_empty(
                    &mut self.flash,
                    g.first_ppa.block,
                    t_read,
                )?);
            }
        }

        // Pass 3: rebuild and place.
        let mut t_write = t_read;
        for ents in runs {
            for c in pack_groups(ents, self.page_payload, self.cfg.group_pages.max(2)) {
                let (ppa, td) =
                    self.place_group(c.total_pages(), OpCause::CompactionWrite, t_read)?;
                t_write = t_write.max(td);
                out.push(Group::new(c, ppa));
            }
        }
        // No seal: partial rewrites happen every log cycle, and sealing
        // here would strand block tails faster than GC reclaims them.
        out.sort_by(|a, b| a.content.smallest().cmp(&b.content.smallest()));
        self.levels[li].groups = out;
        self.levels[li].recount();
        self.levels[li].invalid_logged = 0;
        self.rebalance_dram();
        let done = t_write.max(t_erase) + count * self.cfg.cpu.sort_ns_per_entity;
        let done = done.max(self.gc_if_needed(done)?);
        #[cfg(feature = "trace")]
        self.push_span(snap, "compaction", "inline-rewrite", li as u32, at, done);
        Ok(done)
    }

    /// Merges `src` into level `dst`, rebuilding `dst`'s data segment
    /// groups.
    pub(crate) fn compact(
        &mut self,
        src: Source,
        dst: usize,
        policy: InlinePolicy,
        at: Ns,
    ) -> Result<Ns, KvError> {
        #[cfg(feature = "trace")]
        let snap = self.span_snapshot();
        #[cfg(feature = "trace")]
        let span_label = match policy {
            InlinePolicy::Keep => "keep",
            InlinePolicy::InlineAll => "inline-all",
            InlinePolicy::InlineUntil(_) => "inline-until",
        };
        // Source blocks are freed before the output is written, so the
        // transient headroom need is modest: room for inlined values plus
        // packing slack.
        let growth_blocks = match &src {
            Source::Flush(ents) => {
                let bytes: u64 = ents.iter().map(Entity::stored_bytes).sum();
                (bytes / self.flash.geometry().block_bytes()) as usize + 2
            }
            Source::Level(si) => {
                (self.levels[*si].logged_bytes / self.flash.geometry().block_bytes()) as usize + 2
            }
        };
        let at = self.gc_for_headroom(at, growth_blocks)?.max(at);

        // --- 1. Gather inputs and their flash pages. -------------------
        let mut read_ppas: Vec<Ppa> = Vec::new();
        let (upper, src_groups, src_idx, src_inv) = match src {
            Source::Flush(ents) => (ents, None, None, 0),
            Source::Level(si) => {
                let groups = std::mem::take(&mut self.levels[si].groups);
                for g in &groups {
                    read_ppas.extend(g.all_ppas());
                }
                let ents: Vec<Entity> = groups
                    .iter()
                    .flat_map(|g| g.content.iter_key_order().copied())
                    .collect();
                let inv = std::mem::take(&mut self.levels[si].invalid_logged);
                (ents, Some(groups), Some(si), inv)
            }
        };
        // For an in-place rewrite of the deepest level, the "lower" input
        // is empty (its groups were already taken as the upper input).
        let dst_groups = if src_idx == Some(dst) {
            Vec::new()
        } else {
            std::mem::take(&mut self.levels[dst].groups)
        };
        for g in &dst_groups {
            read_ppas.extend(g.all_ppas());
        }
        let lower: Vec<Entity> = dst_groups
            .iter()
            .flat_map(|g| g.content.iter_key_order().copied())
            .collect();
        let dst_inv = std::mem::take(&mut self.levels[dst].invalid_logged);
        let t_read = self.flash.read_many(read_ppas, OpCause::CompactionRead, at);

        // --- 2. Merge, newest-wins, tombstone elimination at the bottom. -
        let is_bottom = self.levels[dst + 1..].iter().all(Level::is_empty);
        let mut discarded_logged = 0u64;
        let invalidate = |store_log: &mut Option<crate::anykey::valuelog::ValueLog>,
                          e: &Entity,
                          discarded: &mut u64| {
            if let ValueLoc::Logged(ptr) = e.loc {
                if let Some(log) = store_log.as_mut() {
                    log.invalidate(ptr, e.value_len as u64);
                }
                *discarded += e.value_len as u64;
            }
        };
        let mut merged: Vec<Entity> = Vec::with_capacity(upper.len() + lower.len());
        {
            let mut ui = upper.into_iter().peekable();
            let mut li = lower.into_iter().peekable();
            loop {
                let take_upper = match (ui.peek(), li.peek()) {
                    (Some(u), Some(l)) => {
                        if u.key == l.key {
                            // Newest wins; the lower copy dies here.
                            let dead = li.next().ok_or(KvError::Internal {
                                context: "peeked merge entry vanished",
                            })?;
                            invalidate(&mut self.log, &dead, &mut discarded_logged);
                            true
                        } else {
                            u.key < l.key
                        }
                    }
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let e = if take_upper {
                    ui.next().ok_or(KvError::Internal {
                        context: "peeked merge entry vanished",
                    })?
                } else {
                    li.next().ok_or(KvError::Internal {
                        context: "peeked merge entry vanished",
                    })?
                };
                if e.tombstone && is_bottom {
                    continue; // nothing below to shadow
                }
                merged.push(e);
            }
        }

        // --- 3. Apply the inline policy. -------------------------------
        let mut log_read_ppas: Vec<Ppa> = Vec::new();
        let mut t_wb = t_read;
        match policy {
            InlinePolicy::Keep => {}
            InlinePolicy::InlineAll => {
                for e in &mut merged {
                    if let ValueLoc::Logged(ptr) = e.loc {
                        log_read_ppas.extend(crate::anykey::valuelog::ValueLog::ptr_pages(ptr));
                        self.log
                            .as_mut()
                            .ok_or(KvError::Internal {
                                context: "logged value without a log",
                            })?
                            .invalidate(ptr, e.value_len as u64);
                        e.loc = ValueLoc::Inline;
                    }
                }
            }
            InlinePolicy::InlineUntil(budget) => {
                // Estimate the destination's physical size as we walk the
                // merged run in key order; stop inlining at θ × threshold.
                let mut phys = 0u64;
                for e in &mut merged {
                    if let ValueLoc::Logged(ptr) = e.loc {
                        if phys < budget {
                            log_read_ppas.extend(crate::anykey::valuelog::ValueLog::ptr_pages(ptr));
                            self.log
                                .as_mut()
                                .ok_or(KvError::Internal {
                                    context: "logged value without a log",
                                })?
                                .invalidate(ptr, e.value_len as u64);
                            e.loc = ValueLoc::Inline;
                        } else {
                            // Write the value back to the log head so the
                            // old block can still be reclaimed; keep the
                            // old pointer if the log has no room.
                            let log = self.log.as_mut().ok_or(KvError::Internal {
                                context: "logged value without a log",
                            })?;
                            if let Ok((new_ptr, done)) =
                                log.append(&mut self.flash, e.value_len, t_read)
                            {
                                log_read_ppas
                                    .extend(crate::anykey::valuelog::ValueLog::ptr_pages(ptr));
                                log.invalidate(ptr, e.value_len as u64);
                                e.loc = ValueLoc::Logged(new_ptr);
                                t_wb = t_wb.max(done);
                            }
                        }
                    }
                    phys += e.stored_bytes() + 4; // + directory entry
                }
            }
        }
        log_read_ppas.sort_unstable();
        log_read_ppas.dedup();
        // Value reads on behalf of a compaction are compaction traffic
        // (Table 3 semantics) and run at background priority.
        let t_log = self
            .flash
            .read_many(log_read_ppas, OpCause::CompactionRead, t_read);
        let t_inputs = t_read.max(t_log).max(t_wb);

        // --- 4. Free the source blocks before writing output. ----------
        let mut t_erase = t_inputs;
        let free_groups =
            |store: &mut AnyKeyStore, groups: Vec<Group>, t: Ns| -> Result<Ns, KvError> {
                let mut done = t;
                for g in groups {
                    let pages = g.content.total_pages();
                    if store.area.release(g.first_ppa.block, pages)? {
                        done = done.max(store.area.erase_empty(
                            &mut store.flash,
                            g.first_ppa.block,
                            t,
                        )?);
                    }
                }
                Ok(done)
            };
        if let Some(groups) = src_groups {
            t_erase = t_erase.max(free_groups(self, groups, t_inputs)?);
        }
        t_erase = t_erase.max(free_groups(self, dst_groups, t_inputs)?);

        // --- 5. Build and place the new groups. ------------------------
        let merged_count = merged.len() as u64;
        let contents = pack_groups(merged, self.page_payload, self.cfg.group_pages.max(2));
        let mut t_write = t_inputs;
        let mut new_groups = Vec::with_capacity(contents.len());
        for c in contents {
            let (ppa, td) =
                self.place_group(c.total_pages(), OpCause::CompactionWrite, t_inputs)?;
            t_write = t_write.max(td);
            new_groups.push(Group::new(c, ppa));
        }
        self.area.seal(); // keep blocks single-level (Section 4.4.4)

        // --- 6. Update the level and its accounting. -------------------
        self.levels[dst].groups = new_groups;
        self.levels[dst].recount();
        let remaining_logged = self.levels[dst].logged_bytes;
        self.levels[dst].invalid_logged = (src_inv + dst_inv)
            .saturating_sub(discarded_logged)
            .min(remaining_logged);
        if let Some(si) = src_idx {
            self.levels[si].recount();
        }
        self.rebalance_dram();

        // --- 7. CPU merge-sort cost and GC headroom. --------------------
        let done = t_write.max(t_erase) + merged_count * self.cfg.cpu.sort_ns_per_entity;
        let done = done.max(self.gc_if_needed(done)?);
        #[cfg(feature = "trace")]
        self.push_span(snap, "compaction", span_label, dst as u32, at, done);
        Ok(done)
    }
}
