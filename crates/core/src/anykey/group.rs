//! Data segment groups (paper Section 4.1).
//!
//! A group is a set of physically-consecutive flash pages inside one erase
//! block. Across groups, a level is partitioned by key range; *within* a
//! group, KV entities are sorted by the 32-bit xxHash of their key. The
//! first page(s) of a group hold a key-sorted `{page, offset}` directory so
//! range queries can walk keys in order without re-sorting (Section 4.4.5).
//!
//! The level-list entry for a group (what lives in DRAM) is: the group's
//! smallest key, the PPA of its first page, a 16-bit hash prefix of the
//! first key of every data page, and 2 hash-collision bits per page
//! (Figure 7).

use anykey_flash::Ppa;

use crate::anykey::entity::Entity;
use crate::key::Key;

/// Bytes per directory entry in the group's first page(s): target page +
/// page offset.
pub const DIR_ENTRY_BYTES: u64 = 4;

/// The two hash-collision bits of a data page (Figure 7): whether the last
/// hash value of this page continues into the next page, and whether the
/// first hash continues from the previous page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollisionBits {
    /// `01`: the page's last hash value continues into the next page.
    pub continues_next: bool,
    /// `10`: the page's first hash value continues from the previous page.
    pub continued_prev: bool,
}

/// The content of a data segment group, before (or after) placement in
/// flash.
#[derive(Debug, Clone)]
pub struct GroupContent {
    /// Data pages; concatenated they are sorted by `(hash, key)`.
    pub pages: Vec<Vec<Entity>>,
    /// Key-sorted directory: `(data_page, slot)` per entity.
    pub dir: Vec<(u16, u16)>,
    /// Number of leading pages holding the directory.
    pub dir_pages: u32,
    /// 16-bit hash prefix of each data page's first entity (the DRAM
    /// routing metadata).
    pub page_first_hash16: Vec<u16>,
    /// Full first hash per data page (page *content*, read from flash; a
    /// spill-only page carries its owner's hash).
    pub page_first_hash: Vec<u32>,
    /// Collision bits per data page.
    pub collision: Vec<CollisionBits>,
    /// Sorted hashes of every entity (the hash-list content).
    pub hashes: Vec<u32>,
    /// Logical KV bytes (keys + values) in this group.
    pub kv_bytes: u64,
    /// Value bytes referenced in the value log.
    pub logged_bytes: u64,
    /// Physical flash footprint (directory + data pages × page payload) —
    /// what level thresholds and AnyKey+'s θ monitor are measured against.
    pub phys_bytes: u64,
}

/// A placed data segment group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Physical address of the group's first page.
    pub first_ppa: Ppa,
    /// Whether this group's hash list is DRAM-resident.
    pub hash_list_resident: bool,
    /// The group's content.
    pub content: GroupContent,
}

impl GroupContent {
    /// Builds a group from a **key-sorted** run of entities.
    ///
    /// Entities are re-sorted by `(hash, key)` and packed into data pages of
    /// `payload` usable bytes each; the key-sorted directory is laid out in
    /// leading directory pages.
    ///
    /// # Panics
    ///
    /// Panics if `entities` is empty or not key-sorted.
    pub fn build(entities: Vec<Entity>, payload: u64) -> Self {
        assert!(!entities.is_empty(), "group must contain entities");
        debug_assert!(
            entities.windows(2).all(|w| w[0].key < w[1].key),
            "group input must be strictly key-sorted"
        );
        let count = entities.len();
        let kv_bytes = entities.iter().map(Entity::kv_bytes).sum();
        let logged_bytes = entities.iter().map(Entity::logged_bytes).sum();

        // Hash-sort (stable on key for equal hashes so collision runs are
        // contiguous and deterministic).
        let mut by_hash = entities;
        by_hash.sort_by(|a, b| a.hash.cmp(&b.hash).then(a.key.cmp(&b.key)));

        // Pack byte-continuously: an entity belongs to the page its header
        // starts in and may spill into following pages (span_extra), so no
        // page capacity is wasted even for values comparable to the page
        // size. Pages that contain only the spill of a previous entity
        // hold no starting slots.
        let mut pages: Vec<Vec<Entity>> = Vec::new();
        let mut cur: Vec<Entity> = Vec::new();
        let mut offset = 0u64;
        for mut e in by_hash {
            let sz = e.stored_bytes();
            let start_page = offset / payload;
            let end_page = (offset + sz - 1) / payload;
            e.span_extra = (end_page - start_page) as u8;
            while (pages.len() as u64) < start_page {
                pages.push(std::mem::take(&mut cur));
            }
            cur.push(e);
            offset += sz;
        }
        pages.push(cur);
        while (pages.len() as u64) < offset.div_ceil(payload) {
            pages.push(Vec::new());
        }

        // Per-page first/last hashes (spill-only pages physically contain
        // the previous entity's continuation, so they carry its hash) and
        // the 16-bit routing prefixes plus collision bits (Figure 7).
        let mut page_first_hash: Vec<u32> = Vec::with_capacity(pages.len());
        let mut page_last_hash: Vec<u32> = Vec::with_capacity(pages.len());
        let mut carry = pages[0].first().map(|e| e.hash).unwrap_or(0);
        for p in &pages {
            page_first_hash.push(p.first().map(|e| e.hash).unwrap_or(carry));
            carry = p.last().map(|e| e.hash).unwrap_or(carry);
            page_last_hash.push(carry);
        }
        let page_first_hash16: Vec<u16> =
            page_first_hash.iter().map(|&h| (h >> 16) as u16).collect();
        let mut collision = vec![CollisionBits::default(); pages.len()];
        for i in 0..pages.len().saturating_sub(1) {
            if page_last_hash[i] == page_first_hash[i + 1] {
                collision[i].continues_next = true;
                collision[i + 1].continued_prev = true;
            }
        }

        // Key-sorted directory over (page, slot).
        let mut dir: Vec<(u16, u16)> = pages
            .iter()
            .enumerate()
            .flat_map(|(p, page)| (0..page.len()).map(move |s| (p as u16, s as u16)))
            .collect();
        dir.sort_by(|&(pa, sa), &(pb, sb)| {
            pages[pa as usize][sa as usize]
                .key
                .cmp(&pages[pb as usize][sb as usize].key)
        });

        // Sorted hash list.
        let mut hashes: Vec<u32> = pages.iter().flatten().map(|e| e.hash).collect();
        hashes.sort_unstable();

        let dir_pages = ((count as u64 * DIR_ENTRY_BYTES).div_ceil(payload)).max(1) as u32;
        let phys_bytes = (dir_pages as u64 + pages.len() as u64) * payload;

        Self {
            pages,
            dir,
            dir_pages,
            page_first_hash16,
            page_first_hash,
            collision,
            hashes,
            kv_bytes,
            logged_bytes,
            phys_bytes,
        }
    }

    /// Number of entities in the group.
    pub fn entity_count(&self) -> usize {
        self.dir.len()
    }

    /// Number of data pages.
    pub fn data_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Total flash pages occupied (directory + data).
    pub fn total_pages(&self) -> u32 {
        self.dir_pages + self.data_pages()
    }

    /// The entity at a directory position.
    pub fn entity(&self, page: u16, slot: u16) -> &Entity {
        &self.pages[page as usize][slot as usize]
    }

    /// The group's smallest key (what the level-list entry stores).
    pub fn smallest(&self) -> Key {
        let (p, s) = self.dir[0];
        self.entity(p, s).key
    }

    /// The group's largest key.
    pub fn largest(&self) -> Key {
        // `build` rejects empty groups, so the fallback index is dead; it
        // only avoids a panic path in release builds.
        let (p, s) = self.dir.last().copied().unwrap_or((0, 0));
        self.entity(p, s).key
    }

    /// Whether `hash` appears in the group's hash list.
    pub fn contains_hash(&self, hash: u32) -> bool {
        self.hashes.binary_search(&hash).is_ok()
    }

    /// The data page a lookup for `hash` is routed to via the 16-bit
    /// page-first hash prefixes: the last page whose prefix is ≤ the
    /// target's prefix.
    pub fn route_page(&self, hash: u32) -> usize {
        let h16 = (hash >> 16) as u16;
        let idx = self.page_first_hash16.partition_point(|&p| p <= h16);
        idx.saturating_sub(1)
    }

    /// Searches one data page for an exact `(hash, key)` match.
    pub fn search_page(&self, page: usize, hash: u32, key: Key) -> Option<&Entity> {
        let entries = &self.pages[page];
        let start = entries.partition_point(|e| e.hash < hash);
        entries[start..]
            .iter()
            .take_while(|e| e.hash == hash)
            .find(|e| e.key == key)
    }

    /// First directory index whose key is ≥ `key` (for range scans).
    pub fn dir_lower_bound(&self, key: Key) -> usize {
        self.dir
            .partition_point(|&(p, s)| self.entity(p, s).key < key)
    }

    /// Iterates entities in key order.
    pub fn iter_key_order(&self) -> impl Iterator<Item = &Entity> + '_ {
        self.dir.iter().map(move |&(p, s)| self.entity(p, s))
    }

    /// The DRAM footprint of this group's level-list entry: smallest key +
    /// 4-byte PPA + 2 bytes of hash prefix per data page + 2 collision bits
    /// per data page + fixed bookkeeping.
    pub fn meta_bytes(&self) -> u64 {
        self.smallest().len() as u64
            + 4
            + 2 * self.data_pages() as u64
            + (self.data_pages() as u64).div_ceil(4)
            + 16
    }

    /// The DRAM footprint of this group's hash list (4 bytes per entity).
    pub fn hash_list_bytes(&self) -> u64 {
        4 * self.entity_count() as u64
    }
}

impl Group {
    /// Places content at a physical address.
    pub fn new(content: GroupContent, first_ppa: Ppa) -> Self {
        Self {
            first_ppa,
            hash_list_resident: false,
            content,
        }
    }

    /// PPA of the `i`-th **data** page.
    pub fn data_ppa(&self, i: usize) -> Ppa {
        self.first_ppa.offset(self.content.dir_pages + i as u32)
    }

    /// PPA of the directory page covering directory index `idx`.
    pub fn dir_ppa(&self, idx: usize, payload: u64) -> Ppa {
        let per_page = (payload / DIR_ENTRY_BYTES) as usize;
        let page = (idx / per_page.max(1)) as u32;
        self.first_ppa.offset(page.min(self.content.dir_pages - 1))
    }

    /// All PPAs of the group (directory + data pages) — what compaction and
    /// GC read.
    pub fn all_ppas(&self) -> impl Iterator<Item = Ppa> + '_ {
        (0..self.content.total_pages()).map(move |i| self.first_ppa.offset(i))
    }
}

/// Splits a key-sorted entity run into group contents, each targeting at
/// most `max_total_pages` flash pages (directory pages included) of
/// `payload` usable bytes, so groups tile erase blocks without structural
/// waste.
pub fn pack_groups(entities: Vec<Entity>, payload: u64, max_total_pages: u32) -> Vec<GroupContent> {
    let mut out = Vec::new();
    let mut chunk: Vec<Entity> = Vec::new();
    let mut bytes = 0u64;
    for e in entities {
        let sz = e.stored_bytes();
        // Projected footprint if `e` joins the chunk: byte-continuous data
        // pages plus the key-sorted directory pages.
        let data_pages = (bytes + sz).div_ceil(payload);
        let dir_pages = ((chunk.len() as u64 + 1) * DIR_ENTRY_BYTES)
            .div_ceil(payload)
            .max(1);
        if !chunk.is_empty() && data_pages + dir_pages > max_total_pages as u64 {
            out.push(GroupContent::build(std::mem::take(&mut chunk), payload));
            bytes = 0;
        }
        bytes += e.stored_bytes();
        chunk.push(e);
    }
    if !chunk.is_empty() {
        out.push(GroupContent::build(chunk, payload));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anykey::entity::ValueLoc;

    fn entities(n: u64, key_len: u16, value_len: u32) -> Vec<Entity> {
        (0..n)
            .map(|id| {
                let key = Key::new(id, key_len).unwrap();
                Entity {
                    key,
                    hash: key.hash32(),
                    value_len,
                    loc: ValueLoc::Inline,
                    tombstone: false,
                    span_extra: 0,
                }
            })
            .collect()
    }

    const PAYLOAD: u64 = 8128;

    #[test]
    fn build_preserves_every_entity() {
        let ents = entities(500, 48, 43);
        let g = GroupContent::build(ents.clone(), PAYLOAD);
        assert_eq!(g.entity_count(), 500);
        let keys: Vec<u64> = g.iter_key_order().map(|e| e.key.id()).collect();
        assert_eq!(keys, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn pages_are_hash_sorted_across_boundaries() {
        let g = GroupContent::build(entities(2000, 48, 43), PAYLOAD);
        let mut prev = 0u32;
        for page in &g.pages {
            for e in page {
                assert!(e.hash >= prev);
                prev = e.hash;
            }
        }
    }

    #[test]
    fn packing_is_byte_continuous() {
        let g = GroupContent::build(entities(2000, 48, 43), PAYLOAD);
        let total: u64 = g.pages.iter().flatten().map(Entity::stored_bytes).sum();
        assert_eq!(g.data_pages() as u64, total.div_ceil(PAYLOAD));
        // Small entities never span more than one boundary.
        assert!(g.pages.iter().flatten().all(|e| e.span_extra <= 1));
    }

    #[test]
    fn huge_inline_values_span_pages() {
        // Values comparable to the page size must not halve capacity.
        let g = GroupContent::build(entities(100, 16, 4096), PAYLOAD);
        let total: u64 = g.pages.iter().flatten().map(Entity::stored_bytes).sum();
        assert_eq!(g.data_pages() as u64, total.div_ceil(PAYLOAD));
        let spanning = g
            .pages
            .iter()
            .flatten()
            .filter(|e| e.span_extra > 0)
            .count();
        assert!(spanning > 0, "4KB values in 8KB pages must span sometimes");
        // Routing still finds every entity via the backward walk.
        for e in g.pages.iter().flatten() {
            let mut p = g.route_page(e.hash);
            loop {
                if g.search_page(p, e.hash, e.key).is_some() {
                    break;
                }
                assert!(p > 0, "entity {:?} unreachable", e.key);
                p -= 1;
            }
        }
    }

    #[test]
    fn routing_finds_every_entity_with_local_search() {
        let g = GroupContent::build(entities(3000, 48, 43), PAYLOAD);
        for e in g.pages.iter().flatten() {
            let mut p = g.route_page(e.hash);
            // Device-style backward walk on prefix ambiguity.
            loop {
                if g.search_page(p, e.hash, e.key).is_some() {
                    break;
                }
                assert!(p > 0, "entity {:?} unreachable by routing", e.key);
                let first = g.pages[p][0].hash;
                assert!(
                    e.hash < first || (e.hash == first && g.collision[p].continued_prev),
                    "backward walk not justified for {:?}",
                    e.key
                );
                p -= 1;
            }
        }
    }

    #[test]
    fn collision_bits_mark_hash_runs_spanning_pages() {
        // Force duplicate hashes by constructing entities manually.
        let mut ents = entities(100, 48, 43);
        // Give a run of 60 entities the same hash: they will span a page.
        for e in ents.iter_mut().take(60) {
            e.hash = 0x7777_7777;
            e.value_len = 400; // bigger so the run spans pages
        }
        let g = GroupContent::build(ents, 2048);
        let spans: usize = g
            .collision
            .iter()
            .filter(|c| c.continues_next || c.continued_prev)
            .count();
        assert!(spans >= 2, "expected a cross-page hash run");
    }

    #[test]
    fn hash_list_membership_is_exact() {
        let ents = entities(1000, 48, 43);
        let g = GroupContent::build(ents.clone(), PAYLOAD);
        for e in &ents {
            assert!(g.contains_hash(e.hash));
        }
        // A hash not in the set (probability of accidental collision with
        // 1000 entries is negligible; pick until absent).
        let absent = (0..100u32)
            .map(|i| 0xDEAD_0000 ^ i)
            .find(|h| g.hashes.binary_search(h).is_err())
            .unwrap();
        assert!(!g.contains_hash(absent));
    }

    #[test]
    fn dir_pages_scale_with_entity_count() {
        let few = GroupContent::build(entities(100, 24, 10), PAYLOAD);
        assert_eq!(few.dir_pages, 1);
        let many = GroupContent::build(entities(5000, 24, 10), PAYLOAD);
        assert!(many.dir_pages >= 2, "5000 * 4B of directory needs 3 pages");
    }

    #[test]
    fn pack_groups_covers_all_entities_in_order() {
        let ents = entities(20_000, 48, 43);
        let groups = pack_groups(ents, PAYLOAD, 32);
        let total: usize = groups.iter().map(|g| g.entity_count()).sum();
        assert_eq!(total, 20_000);
        // Groups are key-range partitioned and ordered.
        for w in groups.windows(2) {
            assert!(w[0].largest() < w[1].smallest());
        }
        // Data page targets are respected (±1 for hash-order repack).
        for g in &groups {
            assert!(g.total_pages() <= 32, "group has {} pages", g.total_pages());
        }
    }

    #[test]
    fn meta_bytes_are_group_granular() {
        let g = GroupContent::build(entities(1000, 48, 43), PAYLOAD);
        // ~48 + 4 + 2/page + collision bits + fixed: a few hundred bytes
        // for a 1000-entity group — the entire point of AnyKey (vs ~52 KB
        // for PinK's per-pair metadata on the same 1000 pairs).
        assert!(g.meta_bytes() < 200);
        assert_eq!(g.hash_list_bytes(), 4000);
    }

    #[test]
    fn smallest_and_largest_bound_the_group() {
        let g = GroupContent::build(entities(100, 48, 43), PAYLOAD);
        assert_eq!(g.smallest().id(), 0);
        assert_eq!(g.largest().id(), 99);
    }
}
