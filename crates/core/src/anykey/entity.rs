//! KV entities: what a data segment group stores per key.

use anykey_flash::BlockId;

use crate::key::Key;

/// Location of a value in the value log: the page where the value starts
/// and how many pages it spans (values never span blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogPtr {
    /// Value-log block.
    pub block: BlockId,
    /// First page of the value within the block.
    pub page: u32,
    /// Number of pages the value touches (≥ 1).
    pub pages: u8,
}

/// Where an entity's value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueLoc {
    /// The value is stored inline in the data segment group page.
    Inline,
    /// The value is in the value log; the entity stores an 8-byte pointer.
    Logged(LogPtr),
}

/// One KV entity inside a data segment group (paper Section 4.1): the key,
/// the 32-bit hash of the key, and the value — inline or as a value-log
/// pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entity {
    /// The key.
    pub key: Key,
    /// xxHash32 of the key bytes (entities are sorted by this within a
    /// group).
    pub hash: u32,
    /// Value length in bytes (0 for tombstones).
    pub value_len: u32,
    /// Value placement.
    pub loc: ValueLoc,
    /// Whether this entity is a deletion marker.
    pub tombstone: bool,
    /// Extra pages this entity spills into beyond its start page (set when
    /// its group is built; entities are packed byte-continuously, so a
    /// large inline value can span pages).
    pub span_extra: u8,
}

/// Fixed per-entity header inside a page: hash (4 B) + length/flags (4 B).
pub const ENTITY_HEADER_BYTES: u64 = 8;
/// Size of a value-log pointer stored in place of an inline value.
pub const LOG_PTR_BYTES: u64 = 8;

impl Entity {
    /// Bytes this entity occupies inside its group page.
    pub fn stored_bytes(&self) -> u64 {
        let value = match self.loc {
            ValueLoc::Inline => {
                if self.tombstone {
                    0
                } else {
                    self.value_len as u64
                }
            }
            ValueLoc::Logged(_) => LOG_PTR_BYTES,
        };
        self.key.len() as u64 + ENTITY_HEADER_BYTES + value
    }

    /// Logical KV bytes (key + value) — what level thresholds are measured
    /// in, regardless of where the value physically lives.
    pub fn kv_bytes(&self) -> u64 {
        if self.tombstone {
            self.key.len() as u64
        } else {
            self.key.len() as u64 + self.value_len as u64
        }
    }

    /// Bytes this entity holds in the value log (0 unless logged).
    pub fn logged_bytes(&self) -> u64 {
        match self.loc {
            ValueLoc::Logged(_) => self.value_len as u64,
            ValueLoc::Inline => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ent(value_len: u32, loc: ValueLoc, tombstone: bool) -> Entity {
        Entity {
            key: Key::new(1, 20).unwrap(),
            hash: 0xABCD,
            value_len,
            loc,
            tombstone,
            span_extra: 0,
        }
    }

    #[test]
    fn inline_entity_stores_value_bytes() {
        let e = ent(100, ValueLoc::Inline, false);
        assert_eq!(e.stored_bytes(), 20 + 8 + 100);
        assert_eq!(e.kv_bytes(), 120);
        assert_eq!(e.logged_bytes(), 0);
    }

    #[test]
    fn logged_entity_stores_pointer() {
        let ptr = LogPtr {
            block: BlockId(3),
            page: 7,
            pages: 1,
        };
        let e = ent(100, ValueLoc::Logged(ptr), false);
        assert_eq!(e.stored_bytes(), 20 + 8 + 8);
        assert_eq!(e.kv_bytes(), 120);
        assert_eq!(e.logged_bytes(), 100);
    }

    #[test]
    fn tombstone_has_no_value_footprint() {
        let e = ent(0, ValueLoc::Inline, true);
        assert_eq!(e.stored_bytes(), 20 + 8);
        assert_eq!(e.kv_bytes(), 20);
    }
}
