//! The AnyKey engine (paper Sections 4.1–4.7).

/// Flush and tree/log-triggered compaction.
pub mod compaction;
/// Entities: key, hash, and value location.
pub mod entity;
/// Group-area block management and GC.
pub mod gc;
/// Data segment groups and their directories.
pub mod group;
/// LSM levels over data segment groups.
pub mod level;
/// The circular value log.
pub mod valuelog;

#[cfg(test)]
mod tests;

use std::collections::HashMap;

use anykey_flash::{BlockAllocator, FlashCounters, FlashSim, Ns, OpCause, Ppa};
use anykey_metrics::timeline::{LevelSample, StateSample};
use anykey_metrics::trace::PhaseBreakdown;
#[cfg(feature = "trace")]
use anykey_metrics::trace::TraceEvent;
use anykey_workload::Op;

use crate::audit::AuditError;
use crate::buffer::{BufEntry, WriteBuffer};
use crate::config::{DeviceConfig, EngineKind};
use crate::dram::DramBudget;
use crate::engine::{KvEngine, MetadataStats, OpOutcome};
use crate::error::KvError;
use crate::key::Key;

use entity::ValueLoc;
use gc::GroupArea;
use level::Level;
use valuelog::ValueLog;

/// The AnyKey key-value SSD (also AnyKey+ and AnyKey− via
/// [`EngineKind`]).
///
/// See the [crate docs](crate) and `DESIGN.md` for the architecture; in
/// short: DRAM holds the write buffer, group-granular level lists, and
/// best-effort hash lists; flash holds data segment groups (keys +
/// inline values or log pointers) and the value log.
#[derive(Debug)]
pub struct AnyKeyStore {
    pub(crate) cfg: DeviceConfig,
    pub(crate) flash: FlashSim,
    pub(crate) buffer: WriteBuffer,
    pub(crate) levels: Vec<Level>,
    pub(crate) area: GroupArea,
    pub(crate) log: Option<ValueLog>,
    pub(crate) dram: DramBudget,
    pub(crate) page_payload: u64,
    /// Live logical state: key id → value length (for unique-byte
    /// accounting; the engine's query path never consults this).
    live: HashMap<u64, u32>,
    live_bytes: u64,
    level_list_overflow: bool,
    /// Completion time of the in-flight flush (L0 is double-buffered: a
    /// put that fills the buffer stalls only if the previous flush is
    /// still running).
    flush_done: Ns,
    /// Recorded background spans (flush/compaction/GC) while tracing.
    #[cfg(feature = "trace")]
    spans: Vec<TraceEvent>,
    /// Next span id (unique per tracing session).
    #[cfg(feature = "trace")]
    span_seq: u64,
}

impl AnyKeyStore {
    /// Builds an AnyKey device from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration selects the PinK engine.
    pub fn new(cfg: DeviceConfig) -> Self {
        assert_ne!(cfg.engine, EngineKind::Pink, "use PinkStore for PinK");
        let flash = FlashSim::new(cfg.flash);
        let geometry = cfg.flash.geometry;
        let total_blocks = geometry.blocks();
        let log_blocks = (cfg.value_log_bytes.div_ceil(geometry.block_bytes())) as u32;
        assert!(
            log_blocks < total_blocks,
            "value log ({log_blocks} blocks) must leave room for groups ({total_blocks} total)"
        );
        let group_range = 0..(total_blocks - log_blocks);
        let page_payload = cfg.page_payload() as u64;
        // Under fault injection both regions allocate least-erased-first so
        // wear (and the wear-dependent error rates) spreads evenly.
        let wear_aware = cfg.flash.fault.is_enabled();
        let log = (log_blocks > 0).then(|| {
            let mut la = BlockAllocator::new(total_blocks - log_blocks..total_blocks);
            la.set_wear_aware(wear_aware);
            ValueLog::new(la, page_payload, geometry.pages_per_block)
        });
        let mut ga = BlockAllocator::new(group_range);
        ga.set_wear_aware(wear_aware);
        let dram = DramBudget::new(
            cfg.dram_bytes,
            cfg.write_buffer_bytes.min(cfg.dram_bytes / 2),
        );
        Self {
            buffer: WriteBuffer::new(cfg.write_buffer_bytes),
            levels: vec![Level::new(cfg.write_buffer_bytes * cfg.level_ratio)],
            area: GroupArea::new(ga, geometry.pages_per_block),
            log,
            dram,
            page_payload,
            live: HashMap::new(),
            live_bytes: 0,
            level_list_overflow: false,
            flush_done: 0,
            #[cfg(feature = "trace")]
            spans: Vec::new(),
            #[cfg(feature = "trace")]
            span_seq: 0,
            flash,
            cfg,
        }
    }

    /// Snapshot of total flash page reads/writes, taken at the start of a
    /// background span; `None` when tracing is off so span bookkeeping
    /// costs nothing on untraced runs.
    #[cfg(feature = "trace")]
    pub(crate) fn span_snapshot(&self) -> Option<(u64, u64)> {
        self.flash
            .is_tracing()
            .then(|| (self.counters_pages_read(), self.counters_pages_written()))
    }

    #[cfg(feature = "trace")]
    fn counters_pages_read(&self) -> u64 {
        self.flash.counters().total_reads()
    }

    #[cfg(feature = "trace")]
    fn counters_pages_written(&self) -> u64 {
        self.flash.counters().total_writes()
    }

    /// Records a completed background span against a [`Self::span_snapshot`]
    /// taken before the work; a `None` snapshot (tracing off) is a no-op.
    #[cfg(feature = "trace")]
    pub(crate) fn push_span(
        &mut self,
        snap: Option<(u64, u64)>,
        kind: &str,
        label: &str,
        level: u32,
        start: Ns,
        end: Ns,
    ) {
        let Some((r0, w0)) = snap else { return };
        let id = self.span_seq;
        self.span_seq += 1;
        self.spans.push(TraceEvent::Span {
            kind: kind.to_string(),
            label: label.to_string(),
            level,
            id,
            start,
            end,
            pages_read: self.counters_pages_read().saturating_sub(r0),
            pages_written: self.counters_pages_written().saturating_sub(w0),
        });
    }

    /// Whether this instance runs the AnyKey+ compaction enhancement.
    pub(crate) fn is_plus(&self) -> bool {
        self.cfg.engine == EngineKind::AnyKeyPlus
    }

    fn make_key(&self, id: u64) -> Result<Key, KvError> {
        Key::new(id, self.cfg.key_len)
    }

    /// Metadata-only probe: which level currently holds `key`, and how many
    /// of its value bytes sit in the value log. Used for the per-level
    /// invalid-log accounting that AnyKey+'s target selection needs
    /// (Section 4.7); costs no simulated flash I/O, standing in for the
    /// small per-level counters a real controller would maintain.
    fn probe_logged(&self, key: Key, hash: u32) -> Option<(usize, u64)> {
        for (li, level) in self.levels.iter().enumerate() {
            let Some(gi) = level.candidate(key) else {
                continue;
            };
            let g = &level.groups[gi].content;
            if !g.contains_hash(hash) {
                continue;
            }
            let idx = g.dir_lower_bound(key);
            if idx < g.dir.len() {
                let (p, s) = g.dir[idx];
                let e = g.entity(p, s);
                if e.key == key {
                    if e.tombstone {
                        return None;
                    }
                    return Some((li, e.logged_bytes()));
                }
            }
        }
        None
    }

    fn do_put(
        &mut self,
        id: u64,
        value_len: u32,
        tombstone: bool,
        at: Ns,
    ) -> Result<OpOutcome, KvError> {
        let key = self.make_key(id)?;
        // Invalid-log accounting: the version this put supersedes (if any,
        // and not still in the buffer) leaves dead value bytes in the log.
        if self.log.is_some() && self.buffer.get(&key).is_none() {
            if let Some((li, logged)) = self.probe_logged(key, key.hash32()) {
                if logged > 0 {
                    self.levels[li].invalid_logged += logged;
                }
            }
        }
        self.buffer.insert(
            key,
            BufEntry {
                value_len,
                tombstone,
            },
        );
        // Live logical state.
        if tombstone {
            if let Some(old) = self.live.remove(&id) {
                self.live_bytes -= key.len() as u64 + old as u64;
            }
        } else {
            match self.live.insert(id, value_len) {
                Some(old) => {
                    self.live_bytes = self.live_bytes - old as u64 + value_len as u64;
                }
                None => self.live_bytes += key.len() as u64 + value_len as u64,
            }
        }

        let mut done = at + self.cfg.cpu.hash_ns + self.cfg.cpu.dram_op_ns;
        if self.buffer.is_full() {
            // Double-buffered L0: the triggering put is acknowledged once
            // the buffer swaps, but it stalls first if the previous flush
            // is still in flight — the device's write-stall behaviour.
            let start = at.max(self.flush_done);
            self.flush_done = self.flush(start)?;
            done = start + self.cfg.cpu.hash_ns + self.cfg.cpu.dram_op_ns;
        }
        // CPU cost is the only attributed phase; a flush stall (done being
        // pushed past the CPU cost) lands in queue_wait via the residual.
        let mut phases = PhaseBreakdown {
            engine: self.cfg.cpu.hash_ns + self.cfg.cpu.dram_op_ns,
            ..PhaseBreakdown::default()
        };
        phases.finish(done - at);
        Ok(OpOutcome {
            issued_at: at,
            done_at: done,
            found: true,
            flash_reads: 0,
            phases,
        })
    }

    fn do_get(&mut self, id: u64, at: Ns) -> Result<OpOutcome, KvError> {
        let key = self.make_key(id)?;
        let hash = key.hash32();
        let mut t = at + self.cfg.cpu.hash_ns;
        let mut reads = 0u32;
        let mut phases = PhaseBreakdown {
            engine: self.cfg.cpu.hash_ns,
            ..PhaseBreakdown::default()
        };

        if let Some(e) = self.buffer.get(&key) {
            let done = t + self.cfg.cpu.dram_op_ns;
            phases.engine += self.cfg.cpu.dram_op_ns;
            phases.finish(done - at);
            return Ok(OpOutcome {
                issued_at: at,
                done_at: done,
                found: !e.tombstone,
                flash_reads: 0,
                phases,
            });
        }

        for li in 0..self.levels.len() {
            let Some(gi) = self.levels[li].candidate(key) else {
                continue;
            };
            // Hash-list check (free when resident; Section 4.2).
            {
                let g = &self.levels[li].groups[gi];
                if g.hash_list_resident && !g.content.contains_hash(hash) {
                    continue;
                }
            }
            // Read the routed page, walking backwards over 16-bit prefix
            // ambiguity and cross-page hash collisions (Figure 7).
            let mut p = {
                let g = &self.levels[li].groups[gi];
                g.content.route_page(hash)
            };
            loop {
                let ppa = self.levels[li].groups[gi].data_ppa(p);
                let before = t;
                t = self.flash.read(ppa, OpCause::HostRead, t).done;
                phases.data_read += t - before;
                reads += 1;
                let (found, span_ppas) = {
                    let g = &self.levels[li].groups[gi].content;
                    match g.search_page(p, hash, key) {
                        Some(e) => {
                            let mut extra: Vec<Ppa> = Vec::new();
                            for i in 0..e.span_extra as usize {
                                extra.push(self.levels[li].groups[gi].data_ppa(p + 1 + i));
                            }
                            (Some((e.tombstone, e.loc)), extra)
                        }
                        None => (None, Vec::new()),
                    }
                };
                if let Some((tombstone, loc)) = found {
                    // Inline values may spill into following pages.
                    reads += span_ppas.len() as u32;
                    let before = t;
                    t = self.flash.read_many(span_ppas, OpCause::HostRead, t);
                    phases.data_read += t - before;
                    if tombstone {
                        phases.finish(t - at);
                        return Ok(OpOutcome {
                            issued_at: at,
                            done_at: t,
                            found: false,
                            flash_reads: reads,
                            phases,
                        });
                    }
                    let done = match loc {
                        ValueLoc::Inline => t,
                        ValueLoc::Logged(ptr) => {
                            reads += ptr.pages as u32;
                            let log = self.log.as_ref().ok_or(KvError::Internal {
                                context: "logged value without a log",
                            })?;
                            let d = log.read_value(&mut self.flash, ptr, OpCause::LogRead, t);
                            phases.log_read += d - t;
                            d
                        }
                    };
                    phases.finish(done - at);
                    return Ok(OpOutcome {
                        issued_at: at,
                        done_at: done,
                        found: true,
                        flash_reads: reads,
                        phases,
                    });
                }
                let g = &self.levels[li].groups[gi].content;
                let first = g.page_first_hash[p];
                if p > 0 && (hash < first || (hash == first && g.collision[p].continued_prev)) {
                    p -= 1;
                    continue;
                }
                break;
            }
        }
        let done = t + self.cfg.cpu.dram_op_ns;
        phases.engine += self.cfg.cpu.dram_op_ns;
        phases.finish(done - at);
        Ok(OpOutcome {
            issued_at: at,
            done_at: done,
            found: false,
            flash_reads: reads,
            phases,
        })
    }

    fn do_scan(
        &mut self,
        start_id: u64,
        len: u32,
        at: Ns,
    ) -> Result<(Vec<u64>, OpOutcome), KvError> {
        let start = self.make_key(start_id)?;
        let want = len as usize;

        // Per-level candidate collection, newest first: (key, level,
        // tombstone, data ppa, log pages).
        struct Cand {
            key: Key,
            level: usize,
            tombstone: bool,
            data_ppa: Ppa,
            log_pages: Vec<Ppa>,
        }

        // Tombstones and cross-level duplicates consume candidates, so a
        // fixed per-level budget can truncate a level before the merge has
        // enough survivors; retry with a doubled budget until every capped
        // level's frontier covers the emitted range.
        let mut budget = want;
        let (mut dir_ppas, mut cands): (Vec<Ppa>, Vec<Cand>);
        loop {
            dir_ppas = Vec::new();
            cands = Vec::new();
            let mut frontier: Vec<Option<Key>> = Vec::new(); // last key of capped levels
            for (li, level) in self.levels.iter().enumerate() {
                let mut taken = 0usize;
                let mut gi = level.scan_start(start);
                while taken < budget && gi < level.groups.len() {
                    let g = &level.groups[gi];
                    // The device reads the group's directory page(s) to
                    // walk keys in order (Section 4.4.5).
                    let from = g.content.dir_lower_bound(start);
                    if from < g.content.dir.len() {
                        dir_ppas.push(g.dir_ppa(from, self.page_payload));
                    }
                    for idx in from..g.content.dir.len() {
                        if taken >= budget {
                            break;
                        }
                        let (p, s) = g.content.dir[idx];
                        let e = g.content.entity(p, s);
                        let log_pages = match e.loc {
                            ValueLoc::Logged(ptr) => ValueLog::ptr_pages(ptr).collect(),
                            ValueLoc::Inline => Vec::new(),
                        };
                        cands.push(Cand {
                            key: e.key,
                            level: li,
                            tombstone: e.tombstone,
                            data_ppa: g.data_ppa(p as usize),
                            log_pages,
                        });
                        taken += 1;
                    }
                    gi += 1;
                }
                frontier.push(if taken >= budget {
                    cands.last().map(|c| c.key)
                } else {
                    None
                });
            }
            // The merge may only emit keys below every capped level's
            // frontier; check how many survivors (newest version not a
            // tombstone) that range yields and retry with more candidates
            // if a capped level could hide part of the requested range.
            let limit = frontier.iter().flatten().min().copied();
            let reachable = {
                let mut newest: std::collections::BTreeMap<Key, (usize, bool)> =
                    std::collections::BTreeMap::new();
                for c in &cands {
                    if limit.is_none_or(|l| c.key <= l) {
                        let e = newest.entry(c.key).or_insert((c.level, c.tombstone));
                        if c.level < e.0 {
                            *e = (c.level, c.tombstone);
                        }
                    }
                }
                for (k, be) in self.buffer.range_from(start) {
                    if limit.is_none_or(|l| *k <= l) {
                        newest.insert(*k, (0, be.tombstone));
                    }
                }
                newest.values().filter(|&&(_, t)| !t).count()
            };
            if limit.is_none() || reachable >= want || budget >= want * 64 {
                break;
            }
            budget *= 2;
        }
        let limit = {
            // Recompute the final frontier bound for the merge clamp.
            let mut lims: Vec<Key> = Vec::new();
            let mut idx = 0usize;
            for (li, _) in self.levels.iter().enumerate() {
                let lvl_cands: Vec<&Cand> = cands.iter().filter(|c| c.level == li).collect();
                if lvl_cands.len() >= budget {
                    if let Some(c) = lvl_cands.last() {
                        lims.push(c.key);
                    }
                }
                idx += 1;
            }
            let _ = idx;
            lims.into_iter().min()
        };

        // Merge: buffer (level usize::MAX priority → treat separately),
        // then levels (lower index = newer).
        let mut chosen: Vec<(Key, Option<Cand>)> = Vec::new();
        {
            let mut buf_iter = self.buffer.range_from(start).peekable();
            cands.sort_by(|a, b| a.key.cmp(&b.key).then(a.level.cmp(&b.level)));
            let i = 0;
            while chosen.len() < want && (i < cands.len() || buf_iter.peek().is_some()) {
                let next_level_key = cands.get(i).map(|c| c.key);
                let next_buf_key = buf_iter.peek().map(|(k, _)| **k);
                let key = match (next_buf_key, next_level_key) {
                    (Some(b), Some(l)) => b.min(l),
                    (Some(b), None) => b,
                    (None, Some(l)) => l,
                    (None, None) => break,
                };
                if limit.is_some_and(|l| key > l) {
                    // A capped level's unexplored range could hide smaller
                    // keys; never emit beyond its frontier.
                    break;
                }
                let mut tombstone = None;
                if next_buf_key == Some(key) {
                    let (_, e) = buf_iter.next().ok_or(KvError::Internal {
                        context: "peeked buffer entry vanished mid-scan",
                    })?;
                    tombstone = Some(e.tombstone);
                }
                // Take the newest level candidate for this key; skip the
                // rest.
                let mut newest: Option<Cand> = None;
                while i < cands.len() && cands[i].key == key {
                    let c = cands.remove(i);
                    if newest.is_none() {
                        newest = Some(c);
                    }
                }
                match tombstone {
                    Some(true) => {}                         // deleted in buffer
                    Some(false) => chosen.push((key, None)), // value in DRAM
                    None => match newest {
                        Some(c) if c.tombstone => {}
                        Some(c) => chosen.push((key, Some(c))),
                        None => {}
                    },
                }
            }
        }

        // Flash timing: directory pages first, then data + log pages.
        let mut t = at + self.cfg.cpu.hash_ns;
        let mut reads = 0u32;
        let mut phases = PhaseBreakdown {
            engine: self.cfg.cpu.hash_ns,
            ..PhaseBreakdown::default()
        };
        dir_ppas.sort_unstable();
        dir_ppas.dedup();
        reads += dir_ppas.len() as u32;
        let before = t;
        t = self.flash.read_many(dir_ppas, OpCause::HostRead, t);
        phases.data_read += t - before;
        let mut data_ppas: Vec<Ppa> = Vec::new();
        let mut log_ppas: Vec<Ppa> = Vec::new();
        for (_, cand) in &chosen {
            if let Some(c) = cand {
                data_ppas.push(c.data_ppa);
                log_ppas.extend(c.log_pages.iter().copied());
            }
        }
        data_ppas.sort_unstable();
        data_ppas.dedup();
        log_ppas.sort_unstable();
        log_ppas.dedup();
        reads += (data_ppas.len() + log_ppas.len()) as u32;
        let t_data = self.flash.read_many(data_ppas, OpCause::HostRead, t);
        let t_log = self.flash.read_many(log_ppas, OpCause::LogRead, t);
        let done = t_data.max(t_log);
        // Data and log reads overlap; attribute the critical path — data
        // reads in full, log reads only for the tail they add past them —
        // so the phases still sum exactly to the latency.
        phases.data_read += t_data - t;
        phases.log_read += done - t_data;
        phases.finish(done - at);

        let ids: Vec<u64> = chosen.iter().map(|(k, _)| k.id()).collect();
        let found = !ids.is_empty();
        Ok((
            ids,
            OpOutcome {
                issued_at: at,
                done_at: done,
                found,
                flash_reads: reads,
                phases,
            },
        ))
    }

    /// Recomputes DRAM placement: level lists are mandatory; hash lists are
    /// granted top level first until the metadata budget runs out
    /// (Section 4.2).
    pub(crate) fn rebalance_dram(&mut self) {
        self.dram.clear_claims();
        let level_lists: u64 = self.levels.iter().map(Level::meta_bytes).sum();
        if !self.dram.try_claim(level_lists) {
            // AnyKey's design keeps level lists DRAM-resident by
            // construction; record if a configuration ever violates it.
            self.level_list_overflow = true;
            self.dram.metadata_used = self.dram.metadata_budget();
            for level in &mut self.levels {
                for g in &mut level.groups {
                    g.hash_list_resident = false;
                }
            }
            return;
        }
        self.level_list_overflow = false;
        let mut exhausted = false;
        for level in &mut self.levels {
            for g in &mut level.groups {
                if exhausted {
                    g.hash_list_resident = false;
                } else if self.dram.try_claim(g.content.hash_list_bytes()) {
                    g.hash_list_resident = true;
                } else {
                    g.hash_list_resident = false;
                    exhausted = true;
                }
            }
        }
    }

    /// Whether level lists ever failed to fit DRAM (diagnostics; should
    /// stay `false` — that is AnyKey's design guarantee).
    pub fn level_list_overflowed(&self) -> bool {
        self.level_list_overflow
    }

    /// Direct access to the value log (benchmarks and tests).
    pub fn value_log(&self) -> Option<&ValueLog> {
        self.log.as_ref()
    }

    /// Number of free blocks left in the group area.
    pub fn free_group_blocks(&self) -> usize {
        self.area.free_blocks()
    }
}

impl KvEngine for AnyKeyStore {
    fn kind(&self) -> EngineKind {
        self.cfg.engine
    }

    fn execute(&mut self, op: &Op, at: Ns) -> Result<OpOutcome, KvError> {
        match *op {
            Op::Get { key } => self.do_get(key, at),
            Op::Put { key, value_len } => self.do_put(key, value_len, false, at),
            Op::Delete { key } => self.do_put(key, 0, true, at),
            Op::Scan { start, len } => self.do_scan(start, len, at).map(|(_, o)| o),
        }
    }

    fn scan_keys(&mut self, start: u64, len: u32, at: Ns) -> (Vec<u64>, OpOutcome) {
        // An ill-formed start key cannot match any stored key, so the scan
        // is empty rather than a panic.
        self.do_scan(start, len, at).unwrap_or_else(|_| {
            (
                Vec::new(),
                OpOutcome {
                    issued_at: at,
                    done_at: at,
                    found: false,
                    flash_reads: 0,
                    phases: PhaseBreakdown::default(),
                },
            )
        })
    }

    fn metadata(&self) -> MetadataStats {
        let level_list_bytes: u64 = self.levels.iter().map(Level::meta_bytes).sum();
        let hash_list_total: u64 = self
            .levels
            .iter()
            .flat_map(|l| l.groups.iter())
            .map(|g| g.content.hash_list_bytes())
            .sum();
        let hash_list_resident: u64 = self
            .levels
            .iter()
            .flat_map(|l| l.groups.iter())
            .filter(|g| g.hash_list_resident)
            .map(|g| g.content.hash_list_bytes())
            .sum();
        MetadataStats {
            level_list_bytes,
            level_list_flash_bytes: if self.level_list_overflow {
                level_list_bytes.saturating_sub(self.dram.metadata_budget())
            } else {
                0
            },
            hash_list_total_bytes: hash_list_total,
            hash_list_resident_bytes: hash_list_resident,
            meta_segment_dram_bytes: 0,
            meta_segment_flash_bytes: 0,
            dram_capacity: self.dram.capacity,
            dram_used: self.dram.used(),
            levels: self.levels.iter().filter(|l| !l.is_empty()).count(),
            live_unique_bytes: self.live_bytes,
            value_log_used_bytes: self.log.as_ref().map_or(0, ValueLog::valid_bytes),
            retry_reads: self.flash.counters().total_retry_reads(),
            program_fails: self.flash.counters().program_fails(),
            erase_fails: self.flash.counters().erase_fails(),
            retired_blocks: (self.area.retired_blocks()
                + self
                    .log
                    .as_ref()
                    .map_or(0, |l| l.allocator().retired_count()))
                as u64,
            free_blocks: (self.area.free_blocks()
                + self.log.as_ref().map_or(0, |l| l.allocator().free_count()))
                as u64,
        }
    }

    fn sample_state(&self) -> StateSample {
        let meta = self.metadata();
        let wear = self.flash.sample_state();
        let log_capacity = self.log.as_ref().map_or(0, ValueLog::capacity_bytes);
        let log_free = self.log.as_ref().map_or(0, ValueLog::free_bytes);
        StateSample {
            dram_capacity: meta.dram_capacity,
            dram_used: meta.dram_used,
            level_list_bytes: meta.level_list_bytes,
            hash_list_total_bytes: meta.hash_list_total_bytes,
            hash_list_resident_bytes: meta.hash_list_resident_bytes,
            group_count: self
                .levels
                .iter()
                .map(|l| l.groups.len() as u64)
                .sum::<u64>(),
            value_log_live_bytes: meta.value_log_used_bytes,
            value_log_stale_bytes: log_capacity
                .saturating_sub(meta.value_log_used_bytes)
                .saturating_sub(log_free),
            free_blocks: meta.free_blocks,
            wear_min: wear.wear_min,
            wear_max: wear.wear_max,
            wear_total: wear.wear_total,
            levels: self
                .levels
                .iter()
                .enumerate()
                .map(|(i, l)| LevelSample {
                    level: i as u32,
                    entries: l.groups.len() as u64,
                    kv_bytes: l.kv_bytes,
                    phys_bytes: l.phys_bytes,
                    meta_bytes: l.meta_bytes(),
                })
                .collect(),
            ..StateSample::default()
        }
    }

    fn counters(&self) -> FlashCounters {
        self.flash.counters().clone()
    }

    fn reset_counters(&mut self) {
        self.flash.reset_counters();
    }

    fn horizon(&self) -> Ns {
        self.flash.horizon()
    }

    fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes()
    }

    fn check_invariants(&self) -> Result<(), AuditError> {
        self.verify_invariants()
    }

    fn set_tracing(&mut self, on: bool) {
        self.flash.set_tracing(on);
        #[cfg(feature = "trace")]
        if on {
            self.spans.clear();
            self.span_seq = 0;
        }
    }

    #[cfg(feature = "trace")]
    fn take_trace(&mut self) -> Vec<TraceEvent> {
        let geometry = self.cfg.flash.geometry;
        let mut out: Vec<TraceEvent> = self
            .flash
            .take_trace_events()
            .into_iter()
            .map(|e| TraceEvent::FlashOp {
                op: e.op.as_str().to_string(),
                cause: e.cause_str().to_string(),
                chip: e.chip,
                channel: geometry.channel_of_chip(e.chip),
                issued: e.issued,
                start: e.start,
                done: e.done,
                retries: e.retries,
            })
            .collect();
        out.append(&mut self.spans);
        anykey_metrics::trace::sort_events(&mut out);
        out
    }
}
