//! AnyKey-specific unit tests: DRAM policy, value-log flow, and the
//! whole-block-invalidation property behind its free GC.

use anykey_flash::OpCause;
use anykey_workload::Op;

use crate::anykey::AnyKeyStore;
use crate::config::{DeviceConfig, EngineKind};
use crate::engine::KvEngine;

fn store(kind: EngineKind) -> AnyKeyStore {
    AnyKeyStore::new(
        DeviceConfig::builder()
            .capacity_bytes(16 << 20)
            .page_size(8 << 10)
            .pages_per_block(16)
            .group_pages(8)
            .engine(kind)
            .key_len(48)
            .build(),
    )
}

fn fill(s: &mut AnyKeyStore, n: u64) {
    for id in 0..n {
        s.put(id, 48).expect("fill");
    }
}

#[test]
fn hash_lists_cover_top_levels_first() {
    let mut s = store(EngineKind::AnyKeyPlus);
    fill(&mut s, 60_000);
    // Residency must be a prefix in (level, group) order: once one group's
    // hash list is non-resident, all later ones are too.
    let flags: Vec<bool> = s
        .levels
        .iter()
        .flat_map(|l| l.groups.iter().map(|g| g.hash_list_resident))
        .collect();
    let first_miss = flags.iter().position(|&r| !r).unwrap_or(flags.len());
    assert!(
        flags[first_miss..].iter().all(|&r| !r),
        "hash-list residency must be a strict top-down prefix"
    );
    assert!(
        !s.level_list_overflowed(),
        "level lists must always fit DRAM"
    );
}

#[test]
fn new_values_enter_the_log_and_inline_over_time() {
    let mut s = store(EngineKind::AnyKeyPlus);
    fill(&mut s, 30_000);
    let log = s.value_log().expect("AnyKey+ has a log");
    assert!(log.valid_bytes() > 0, "fresh values must be in the log");
    let logged: u64 = s.levels.iter().map(|l| l.logged_bytes).sum();
    assert_eq!(
        logged,
        log.valid_bytes(),
        "per-level logged accounting must equal the log's valid bytes"
    );
    // The deepest level's data should be mostly inlined (log-triggered
    // compactions swept it).
    let deep = s.levels.iter().rev().find(|l| !l.is_empty()).unwrap();
    assert!(
        deep.logged_bytes < deep.kv_bytes,
        "log-triggered sweeps must have inlined part of the deep level (logged {} of {})",
        deep.logged_bytes,
        deep.kv_bytes
    );
}

#[test]
fn anykey_no_log_never_builds_a_log() {
    let mut s = store(EngineKind::AnyKeyNoLog);
    fill(&mut s, 30_000);
    assert!(s.value_log().is_none());
    assert_eq!(s.counters().writes(OpCause::LogWrite), 0);
    assert_eq!(s.counters().reads(OpCause::LogRead), 0);
    assert!(s.get(123).found);
}

#[test]
fn group_area_blocks_mostly_die_whole() {
    let mut s = store(EngineKind::AnyKeyPlus);
    fill(&mut s, 60_000);
    // Update churn to force compactions over existing data.
    for id in 0..30_000u64 {
        s.put(id % 10_000, 48).unwrap();
    }
    let c = s.counters();
    // Erases happen (blocks recycled) with near-zero GC relocation — the
    // paper's Section 4.4.4 claim.
    assert!(c.erases() > 20, "compaction must recycle blocks");
    assert!(
        c.reads(OpCause::GcRead) < c.reads(OpCause::CompactionRead) / 4,
        "GC relocation ({}) must be small next to compaction ({})",
        c.reads(OpCause::GcRead),
        c.reads(OpCause::CompactionRead)
    );
}

#[test]
fn metadata_only_probe_tracks_invalid_log_bytes() {
    let mut s = store(EngineKind::AnyKeyPlus);
    fill(&mut s, 20_000);
    let invalid_before: u64 = s.levels.iter().map(|l| l.invalid_logged).sum();
    // Overwrite keys whose old versions are flushed: their logged bytes
    // become invalid.
    for id in 0..5_000u64 {
        s.put(id, 48).unwrap();
    }
    let invalid_after: u64 = s.levels.iter().map(|l| l.invalid_logged).sum();
    assert!(
        invalid_after > invalid_before,
        "overwrites must be accounted as invalid log bytes"
    );
}

#[test]
fn deep_buried_key_needs_at_most_group_plus_log_reads() {
    let mut s = store(EngineKind::AnyKeyPlus);
    fill(&mut s, 60_000);
    let at = s.horizon();
    let out = s.execute(&Op::Get { key: 31 }, at).unwrap();
    assert!(out.found);
    assert!(
        out.flash_reads <= 4,
        "GET cost {} exceeds group+span+log bound",
        out.flash_reads
    );
}
