//! The value log (paper Section 4.3).
//!
//! AnyKey detaches values from LSM-tree management: new values are appended
//! to a dedicated flash region and the KV entities in data segment groups
//! hold 8-byte pointers instead. Tree compaction then only moves
//! keys/pointers; values are merged back into groups only by
//! *log-triggered* compaction, which is also the only mechanism that
//! reclaims log space (no standalone GC runs in the log — Section 4.4.4).

use std::collections::HashMap;

use anykey_flash::{BlockAllocator, BlockId, FlashSim, Ns, OpCause, Ppa};

use crate::anykey::entity::LogPtr;
use crate::error::KvError;

#[derive(Debug, Clone, Copy)]
struct LogBlockState {
    valid_bytes: u64,
    sealed: bool,
}

#[derive(Debug, Clone, Copy)]
struct OpenBlock {
    id: BlockId,
    next_page: u32,
    page_fill: u64,
}

/// An append-only value log over a dedicated range of erase blocks.
#[derive(Debug, Clone)]
pub struct ValueLog {
    alloc: BlockAllocator,
    blocks: HashMap<BlockId, LogBlockState>,
    open: Option<OpenBlock>,
    page_payload: u64,
    pages_per_block: u32,
}

impl ValueLog {
    /// A log over the given block range.
    pub fn new(alloc: BlockAllocator, page_payload: u64, pages_per_block: u32) -> Self {
        Self {
            alloc,
            blocks: HashMap::new(),
            open: None,
            page_payload,
            pages_per_block,
        }
    }

    fn block_payload(&self) -> u64 {
        self.page_payload * self.pages_per_block as u64
    }

    /// Total log capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.alloc.len() as u64 * self.block_payload()
    }

    /// Bytes of live values currently in the log.
    pub fn valid_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.valid_bytes).sum()
    }

    /// Bytes still appendable without reclaiming anything.
    pub fn free_bytes(&self) -> u64 {
        let open_remaining = self.open.map_or(0, |o| {
            (self.pages_per_block - o.next_page) as u64 * self.page_payload - o.page_fill
        });
        self.alloc.free_count() as u64 * self.block_payload() + open_remaining
    }

    /// Whether appending `bytes` would exhaust the log (the log-triggered
    /// compaction trigger).
    pub fn would_overflow(&self, bytes: u64) -> bool {
        self.free_bytes() < bytes
    }

    fn open_block(&mut self) -> Result<OpenBlock, KvError> {
        if let Some(o) = self.open {
            return Ok(o);
        }
        let id = self.alloc.alloc().ok_or(KvError::DeviceFull)?;
        self.blocks.insert(
            id,
            LogBlockState {
                valid_bytes: 0,
                sealed: false,
            },
        );
        let o = OpenBlock {
            id,
            next_page: 0,
            page_fill: 0,
        };
        self.open = Some(o);
        Ok(o)
    }

    fn seal_open(&mut self, flash: &mut FlashSim, at: Ns) -> Ns {
        let Some(mut o) = self.open.take() else {
            return at;
        };
        let mut done = at;
        if o.page_fill > 0 {
            // Retry the partial tail on successive pages if the program
            // fails; if the block runs out, the tail stays on its marginal
            // page (the co-packed approximation — see DESIGN.md §9).
            while o.next_page < self.pages_per_block {
                let r = flash.program(
                    Ppa {
                        block: o.id,
                        page: o.next_page,
                    },
                    OpCause::LogWrite,
                    at,
                );
                done = done.max(r.done);
                o.next_page += 1;
                if r.status.is_ok() {
                    break;
                }
            }
        }
        if let Some(b) = self.blocks.get_mut(&o.id) {
            b.sealed = true;
        }
        done
    }

    /// Appends a value of `value_len` bytes at time `at`; returns its
    /// pointer and the completion time of any page programs this caused.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when no log block is available.
    ///
    /// # Panics
    ///
    /// Panics on zero-length values (tombstones are never logged).
    pub fn append(
        &mut self,
        flash: &mut FlashSim,
        value_len: u32,
        at: Ns,
    ) -> Result<(LogPtr, Ns), KvError> {
        assert!(value_len > 0, "zero-length values are never logged");
        let len = value_len as u64;
        assert!(
            len <= self.block_payload(),
            "value of {len} bytes exceeds the erase-block payload {}",
            self.block_payload()
        );
        let mut done = at;

        // Values must be page-contiguous within one block, so a failed
        // page program restarts the whole value past the bad page (which
        // stays consumed); when the block runs out of room the value moves
        // to a fresh block. Each retry consumes at least one page, so the
        // loop terminates in [`KvError::DeviceFull`] at worst.
        let (block, start_page, pages_touched, end_page) = 'place: loop {
            let mut o = self.open_block()?;
            // If the value cannot fit in this block's remaining pages, seal
            // the block and start a fresh one (values never span blocks).
            let remaining =
                (self.pages_per_block - o.next_page) as u64 * self.page_payload - o.page_fill;
            if len > remaining {
                done = done.max(self.seal_open(flash, at));
                o = self.open_block()?;
            }
            let start_page = o.next_page;
            let mut left = len;
            let mut pages_touched = 0u8;
            while left > 0 {
                let room = self.page_payload - o.page_fill;
                let take = left.min(room);
                o.page_fill += take;
                left -= take;
                pages_touched += 1;
                if o.page_fill == self.page_payload {
                    // Page full: program it.
                    let r = flash.program(
                        Ppa {
                            block: o.id,
                            page: o.next_page,
                        },
                        OpCause::LogWrite,
                        at,
                    );
                    done = done.max(r.done);
                    o.next_page += 1;
                    o.page_fill = 0;
                    if !r.status.is_ok() {
                        self.open = Some(o);
                        continue 'place;
                    }
                }
            }
            self.open = Some(o);
            break (o.id, start_page, pages_touched, o.next_page);
        };
        self.blocks
            .get_mut(&block)
            .ok_or(KvError::UntrackedBlock {
                block: block.0,
                owner: "value log",
            })?
            .valid_bytes += len;
        // Block exhausted: seal it so reclaim can consider it.
        if end_page == self.pages_per_block {
            done = done.max(self.seal_open(flash, at));
        }
        Ok((
            LogPtr {
                block,
                page: start_page,
                pages: pages_touched,
            },
            done,
        ))
    }

    /// Marks `bytes` of the value at `ptr` invalid (its entity was
    /// superseded, deleted, or its value was inlined into a group).
    pub fn invalidate(&mut self, ptr: LogPtr, bytes: u64) {
        if let Some(b) = self.blocks.get_mut(&ptr.block) {
            debug_assert!(b.valid_bytes >= bytes, "log block accounting underflow");
            b.valid_bytes = b.valid_bytes.saturating_sub(bytes);
        }
    }

    /// Erases every sealed, fully-invalid block; returns the bytes freed
    /// and the erase completion time. A block whose erase fails is retired
    /// (its capacity is lost, not freed).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::BlockFree`] if the allocator rejects a free or
    /// retire — an internal accounting bug, not a media condition.
    pub fn reclaim(&mut self, flash: &mut FlashSim, at: Ns) -> Result<(u64, Ns), KvError> {
        let victims: Vec<BlockId> = self
            .blocks
            .iter()
            .filter(|(_, s)| s.sealed && s.valid_bytes == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut done = at;
        let mut freed = 0u64;
        for id in victims {
            let r = flash.erase(id, at);
            done = done.max(r.done);
            self.blocks.remove(&id);
            if r.status.is_ok() {
                self.alloc.free(id)?;
                freed += self.block_payload();
            } else {
                self.alloc.retire(id)?;
            }
        }
        Ok((freed, done))
    }

    /// Reads the value at `ptr`; returns the completion time.
    pub fn read_value(&self, flash: &mut FlashSim, ptr: LogPtr, cause: OpCause, at: Ns) -> Ns {
        flash.read_many(Self::ptr_pages(ptr), cause, at)
    }

    /// The flash pages a pointer's value occupies.
    pub fn ptr_pages(ptr: LogPtr) -> impl Iterator<Item = Ppa> {
        (0..ptr.pages as u32).map(move |i| Ppa {
            block: ptr.block,
            page: ptr.page + i,
        })
    }

    /// Number of blocks in the log region.
    pub fn block_count(&self) -> usize {
        self.alloc.len()
    }

    /// The log's block allocator (reliability stats and audits).
    pub fn allocator(&self) -> &BlockAllocator {
        &self.alloc
    }

    /// The first block whose tracked valid bytes exceed the erase-block
    /// payload, as `(block id, valid bytes, payload)` — `None` on a
    /// healthy log. Used by the invariant auditor.
    pub fn first_overfull_block(&self) -> Option<(u32, u64, u64)> {
        let payload = self.block_payload();
        self.blocks
            .iter()
            .find(|(_, s)| s.valid_bytes > payload)
            .map(|(&id, s)| (id.0, s.valid_bytes, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anykey_flash::FlashConfig;

    fn setup() -> (FlashSim, ValueLog) {
        let flash = FlashSim::new(FlashConfig::small_test());
        // 4 blocks of 128 pages x 8128B payload.
        let log = ValueLog::new(BlockAllocator::new(0..4), 8128, 128);
        (flash, log)
    }

    #[test]
    fn append_returns_pointers_within_capacity() {
        let (mut flash, mut log) = setup();
        let (ptr, _) = log.append(&mut flash, 100, 0).unwrap();
        assert_eq!(ptr.page, 0);
        assert_eq!(ptr.pages, 1);
        assert_eq!(log.valid_bytes(), 100);
    }

    #[test]
    fn small_values_share_pages() {
        let (mut flash, mut log) = setup();
        let (a, _) = log.append(&mut flash, 100, 0).unwrap();
        let (b, _) = log.append(&mut flash, 100, 0).unwrap();
        assert_eq!(a.block, b.block);
        assert_eq!(a.page, b.page, "two 100B values fit one 8128B page");
        // No page has been programmed yet (page not full).
        assert_eq!(flash.counters().total_writes(), 0);
    }

    #[test]
    fn page_programs_happen_when_pages_fill() {
        let (mut flash, mut log) = setup();
        for _ in 0..100 {
            log.append(&mut flash, 4000, 0).unwrap();
        }
        // 400 KB over 8128-byte pages: ~49 page programs.
        let w = flash.counters().writes(OpCause::LogWrite);
        assert!((45..=55).contains(&w), "got {w} log writes");
    }

    #[test]
    fn values_span_pages_but_not_blocks() {
        let (mut flash, mut log) = setup();
        // Fill most of the first page so the next value spans.
        log.append(&mut flash, 8000, 0).unwrap();
        let (spanning, _) = log.append(&mut flash, 1000, 0).unwrap();
        assert_eq!(spanning.pages, 2);

        // Now nearly exhaust the block and check block sealing.
        let block_payload = 8128 * 128u64;
        let mut used = 9000u64;
        while used + 8000 < block_payload {
            log.append(&mut flash, 8000, 0).unwrap();
            used += 8000;
        }
        let (next, _) = log.append(&mut flash, 8000, 0).unwrap();
        assert_ne!(next.block.0, 0, "value must not span into a new block");
    }

    #[test]
    fn free_bytes_decreases_and_reclaim_recovers() {
        let (mut flash, mut log) = setup();
        let before = log.free_bytes();
        let mut ptrs = Vec::new();
        let block_payload = 8128 * 128u64;
        let mut used = 0;
        while used + 4000 <= block_payload {
            ptrs.push(log.append(&mut flash, 4000, 0).unwrap().0);
            used += 4000;
        }
        assert!(log.free_bytes() < before);
        // Invalidate everything in the first block and reclaim.
        let first = ptrs[0].block;
        for p in &ptrs {
            if p.block == first {
                log.invalidate(*p, 4000);
            }
        }
        // Push the open block to seal by continuing to append.
        while log.blocks.get(&first).map(|b| !b.sealed).unwrap_or(false) {
            ptrs.push(log.append(&mut flash, 4000, 0).unwrap().0);
        }
        let (freed, _) = log.reclaim(&mut flash, 0).unwrap();
        assert_eq!(freed, block_payload);
        assert_eq!(flash.counters().erases(), 1);
    }

    #[test]
    fn exhaustion_reports_device_full() {
        let mut flash = FlashSim::new(FlashConfig::small_test());
        let mut log = ValueLog::new(BlockAllocator::new(0..1), 8128, 128);
        let block_payload = 8128 * 128u64;
        let mut used = 0;
        while used + 8000 <= block_payload {
            log.append(&mut flash, 8000, 0).unwrap();
            used += 8000;
        }
        assert_eq!(
            log.append(&mut flash, 8000, 0).unwrap_err(),
            KvError::DeviceFull
        );
    }

    #[test]
    fn would_overflow_tracks_free_bytes() {
        let (mut flash, mut log) = setup();
        assert!(!log.would_overflow(1000));
        assert!(log.would_overflow(log.capacity_bytes() + 1));
        log.append(&mut flash, 8128, 0).unwrap();
        assert_eq!(log.free_bytes(), log.capacity_bytes() - 8128);
    }
}
