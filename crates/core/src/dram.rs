//! Device-internal DRAM budgeting.
//!
//! Both engines plan their DRAM the same way: the write buffer gets a fixed
//! reservation, and whatever remains is the *metadata budget* that level
//! lists, PinK meta segments, and AnyKey hash lists compete for, top level
//! first. The whole point of AnyKey is that its mandatory metadata (level
//! lists) always fits this budget while PinK's does not under low-v/k
//! workloads.

/// A DRAM budget: total capacity with a write-buffer reservation carved
/// out, and an accounting of what the metadata placement currently uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramBudget {
    /// Total device DRAM in bytes.
    pub capacity: u64,
    /// Bytes reserved for the write buffer (L0).
    pub write_buffer: u64,
    /// Bytes currently used by DRAM-resident metadata.
    pub metadata_used: u64,
}

impl DramBudget {
    /// A budget with the given capacity and write-buffer reservation.
    ///
    /// # Panics
    ///
    /// Panics if the reservation exceeds the capacity.
    pub fn new(capacity: u64, write_buffer: u64) -> Self {
        assert!(
            write_buffer <= capacity,
            "write buffer {write_buffer} exceeds DRAM {capacity}"
        );
        Self {
            capacity,
            write_buffer,
            metadata_used: 0,
        }
    }

    /// Bytes available for metadata in total.
    pub fn metadata_budget(&self) -> u64 {
        self.capacity - self.write_buffer
    }

    /// Bytes of the metadata budget still unclaimed.
    pub fn metadata_free(&self) -> u64 {
        self.metadata_budget().saturating_sub(self.metadata_used)
    }

    /// Total DRAM in use (reservation plus resident metadata).
    pub fn used(&self) -> u64 {
        self.write_buffer + self.metadata_used
    }

    /// Attempts to claim `bytes` of the metadata budget; returns whether
    /// the claim fit (callers spill to flash or drop the structure when it
    /// does not).
    pub fn try_claim(&mut self, bytes: u64) -> bool {
        if self.metadata_free() >= bytes {
            self.metadata_used += bytes;
            true
        } else {
            false
        }
    }

    /// Releases all metadata claims (placement is recomputed from scratch
    /// after every structural change).
    pub fn clear_claims(&mut self) {
        self.metadata_used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_math() {
        let mut b = DramBudget::new(100, 40);
        assert_eq!(b.metadata_budget(), 60);
        assert!(b.try_claim(50));
        assert_eq!(b.metadata_free(), 10);
        assert!(!b.try_claim(11));
        assert!(b.try_claim(10));
        assert_eq!(b.used(), 100);
        b.clear_claims();
        assert_eq!(b.metadata_free(), 60);
    }

    #[test]
    #[should_panic(expected = "exceeds DRAM")]
    fn oversized_reservation_panics() {
        let _ = DramBudget::new(10, 11);
    }
}
