//! Runtime invariant auditing.
//!
//! Both engines expose [`crate::KvEngine::check_invariants`], a single pass
//! over their in-DRAM metadata that verifies the structural invariants the
//! simulation's correctness rests on:
//!
//! * **Level ordering** — groups (AnyKey) and meta segments (PinK) within a
//!   level are key-sorted with disjoint ranges, and every group directory /
//!   segment entry list is itself sorted.
//! * **DRAM conservation** — [`crate::dram::DramBudget::metadata_used`]
//!   equals the byte sum of the structures currently marked DRAM-resident
//!   and never exceeds the metadata budget.
//! * **Value-log accounting** — the log's live bytes equal the logged bytes
//!   referenced by the levels, and no log block claims more valid bytes
//!   than an erase block holds.
//! * **Counter conservation** — the flash counters' per-cause ledgers sum
//!   to their independent totals ([`anykey_flash::FlashCounters::audit`]).
//! * **Block accounting** — no group-area block claims more valid pages
//!   than an erase block holds.
//! * **Retirement accounting** — every block allocator's
//!   free/allocated/retired partition sums to its block count, and no live
//!   structure (group, logged value, meta segment, level-list page, or
//!   data pointer) references a block retired as a grown bad block.
//!
//! The engines invoke the audit automatically at flush / compaction / GC
//! boundaries in test builds and under the `strict-invariants` cargo
//! feature; release builds pay nothing unless the feature is enabled. The
//! corruption hooks at the bottom of this module exist solely so the
//! negative-path integration tests can prove each check actually fires.

use std::error::Error;
use std::fmt;

use anykey_flash::CounterSkew;

use crate::anykey::level::Level;
use crate::anykey::AnyKeyStore;
use crate::pink::PinkStore;

/// A violated structural invariant, naming the structure and the observed
/// vs expected values. Each variant has a distinct diagnostic so a failing
/// audit immediately identifies which bookkeeping went wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditError {
    /// Adjacent groups or segments of a level are out of key order, or
    /// their key ranges overlap.
    LevelOrder {
        /// The level holding the offending pair.
        level: usize,
        /// Index of the first group/segment of the out-of-order pair.
        index: usize,
    },
    /// A group's key-sorted directory (or a segment's entry list) is not
    /// strictly sorted.
    DirectoryOrder {
        /// The level holding the group/segment.
        level: usize,
        /// The group/segment index within the level.
        group: usize,
    },
    /// A group's per-page 16-bit routing hash prefixes are not sorted, so
    /// [`crate::anykey::group::GroupContent::route_page`] would misroute.
    RoutingOrder {
        /// The level holding the group.
        level: usize,
        /// The group index within the level.
        group: usize,
    },
    /// `metadata_used` does not equal the byte sum of the structures
    /// currently marked DRAM-resident.
    DramMismatch {
        /// The budget's claimed byte count.
        used: u64,
        /// The byte sum of the resident structures.
        expected: u64,
    },
    /// Resident metadata exceeds the metadata budget.
    DramOverBudget {
        /// The budget's claimed byte count.
        used: u64,
        /// The metadata budget (capacity minus write-buffer reservation).
        budget: u64,
    },
    /// The value log's live bytes diverged from the logged bytes the
    /// levels reference.
    LogBytesMismatch {
        /// Live bytes tracked by the value log.
        log: u64,
        /// Logged bytes summed over the levels' groups.
        levels: u64,
    },
    /// A value-log block claims more valid bytes than an erase block
    /// holds.
    LogBlockOverfull {
        /// The offending global block id.
        block: u32,
        /// Valid bytes the block claims.
        valid: u64,
        /// Payload bytes an erase block actually holds.
        payload: u64,
    },
    /// A group-area block claims more valid pages than an erase block
    /// holds.
    BlockOverfull {
        /// The offending global block id.
        block: u32,
        /// Valid pages the block claims.
        pages: u32,
        /// Pages an erase block actually holds.
        pages_per_block: u32,
    },
    /// A flash per-cause counter ledger no longer sums to its independent
    /// total (see [`anykey_flash::FlashCounters::audit`]).
    CounterSkew {
        /// Which ledger diverged: `"reads"` or `"writes"`.
        ledger: &'static str,
        /// Sum over the per-cause entries.
        per_cause_sum: u64,
        /// The independently maintained grand total.
        total: u64,
    },
    /// A structure marked as spilled to flash has no flash location.
    MissingSpillLocation {
        /// The level holding the structure.
        level: usize,
        /// The structure's index within the level.
        index: usize,
    },
    /// A live structure still references a block that was retired as a
    /// grown bad block.
    RetiredBlockLive {
        /// The retired block id.
        block: u32,
        /// Which region's metadata still references it.
        owner: &'static str,
    },
    /// A block allocator's free/allocated/retired partition no longer sums
    /// to its block count (see [`anykey_flash::BlockAllocator::audit`]).
    RetirementSkew {
        /// Which region's allocator diverged.
        owner: &'static str,
        /// Blocks in the free pool.
        free: usize,
        /// Blocks marked allocated.
        allocated: usize,
        /// Blocks marked retired.
        retired: usize,
        /// Total blocks the allocator manages.
        total: usize,
    },
}

/// Wraps an allocator's [`anykey_flash::AllocSkew`] with its owning region.
fn retirement_skew(owner: &'static str, s: anykey_flash::AllocSkew) -> AuditError {
    AuditError::RetirementSkew {
        owner,
        free: s.free,
        allocated: s.allocated,
        retired: s.retired,
        total: s.total,
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::LevelOrder { level, index } => write!(
                f,
                "level {level} is out of key order at index {index}: ranges must be sorted and disjoint"
            ),
            AuditError::DirectoryOrder { level, group } => write!(
                f,
                "group {group} of level {level} has an unsorted key directory"
            ),
            AuditError::RoutingOrder { level, group } => write!(
                f,
                "group {group} of level {level} has unsorted page-routing hash prefixes"
            ),
            AuditError::DramMismatch { used, expected } => write!(
                f,
                "DRAM accounting skew: metadata_used is {used} but resident structures total {expected}"
            ),
            AuditError::DramOverBudget { used, budget } => write!(
                f,
                "DRAM over budget: metadata_used {used} exceeds the {budget}-byte metadata budget"
            ),
            AuditError::LogBytesMismatch { log, levels } => write!(
                f,
                "value-log live bytes {log} diverged from the {levels} logged bytes the levels reference"
            ),
            AuditError::LogBlockOverfull {
                block,
                valid,
                payload,
            } => write!(
                f,
                "value-log block B{block} claims {valid} valid bytes, beyond its {payload}-byte payload"
            ),
            AuditError::BlockOverfull {
                block,
                pages,
                pages_per_block,
            } => write!(
                f,
                "group-area block B{block} claims {pages} valid pages, beyond the {pages_per_block} an erase block holds"
            ),
            AuditError::CounterSkew {
                ledger,
                per_cause_sum,
                total,
            } => write!(
                f,
                "flash {ledger} counter skew: per-cause sum {per_cause_sum} != independent total {total}"
            ),
            AuditError::MissingSpillLocation { level, index } => write!(
                f,
                "spilled structure {index} of level {level} has no flash location"
            ),
            AuditError::RetiredBlockLive { block, owner } => write!(
                f,
                "retired block B{block} is still referenced by live {owner} metadata"
            ),
            AuditError::RetirementSkew {
                owner,
                free,
                allocated,
                retired,
                total,
            } => write!(
                f,
                "{owner} retirement accounting skew: free {free} + allocated {allocated} + retired {retired} != {total} total blocks"
            ),
        }
    }
}

impl Error for AuditError {}

impl From<CounterSkew> for AuditError {
    fn from(s: CounterSkew) -> Self {
        AuditError::CounterSkew {
            ledger: s.ledger,
            per_cause_sum: s.per_cause_sum,
            total: s.total,
        }
    }
}

impl AnyKeyStore {
    /// Audits every structural invariant of the store; see the
    /// [module docs](crate::audit) for the list.
    ///
    /// # Errors
    ///
    /// Returns the first [`AuditError`] found.
    pub fn verify_invariants(&self) -> Result<(), AuditError> {
        // Level-list ordering and per-group structure.
        for (li, level) in self.levels.iter().enumerate() {
            for (gi, w) in level.groups.windows(2).enumerate() {
                if w[0].content.largest() >= w[1].content.smallest() {
                    return Err(AuditError::LevelOrder {
                        level: li,
                        index: gi,
                    });
                }
            }
            for (gi, g) in level.groups.iter().enumerate() {
                let mut prev = None;
                for e in g.content.iter_key_order() {
                    if prev.is_some_and(|p| p >= e.key) {
                        return Err(AuditError::DirectoryOrder {
                            level: li,
                            group: gi,
                        });
                    }
                    prev = Some(e.key);
                }
                if g.content.page_first_hash16.windows(2).any(|w| w[0] > w[1]) {
                    return Err(AuditError::RoutingOrder {
                        level: li,
                        group: gi,
                    });
                }
            }
        }

        // DRAM budget conservation: what rebalance_dram claimed must equal
        // what is actually marked resident.
        let expected = if self.level_list_overflowed() {
            self.dram.metadata_budget()
        } else {
            let lists: u64 = self.levels.iter().map(Level::meta_bytes).sum();
            let hash_lists: u64 = self
                .levels
                .iter()
                .flat_map(|l| l.groups.iter())
                .filter(|g| g.hash_list_resident)
                .map(|g| g.content.hash_list_bytes())
                .sum();
            lists + hash_lists
        };
        if self.dram.metadata_used != expected {
            return Err(AuditError::DramMismatch {
                used: self.dram.metadata_used,
                expected,
            });
        }
        if self.dram.metadata_used > self.dram.metadata_budget() {
            return Err(AuditError::DramOverBudget {
                used: self.dram.metadata_used,
                budget: self.dram.metadata_budget(),
            });
        }

        // Value-log live-byte conservation.
        if let Some(log) = &self.log {
            if let Some((block, valid, payload)) = log.first_overfull_block() {
                return Err(AuditError::LogBlockOverfull {
                    block,
                    valid,
                    payload,
                });
            }
            let referenced: u64 = self.levels.iter().map(|l| l.logged_bytes).sum();
            if log.valid_bytes() != referenced {
                return Err(AuditError::LogBytesMismatch {
                    log: log.valid_bytes(),
                    levels: referenced,
                });
            }
        }

        // Group-area block accounting.
        if let Some((block, pages, per_block)) = self.area.first_overfull_block() {
            return Err(AuditError::BlockOverfull {
                block,
                pages,
                pages_per_block: per_block,
            });
        }

        // Retirement accounting: allocator partitions conserve, and no
        // live group or logged value sits in a retired block.
        if let Err(s) = self.area.allocator().audit() {
            return Err(retirement_skew("group area", s));
        }
        for level in &self.levels {
            for g in &level.groups {
                for ppa in g.all_ppas() {
                    if self.area.allocator().is_retired(ppa.block) {
                        return Err(AuditError::RetiredBlockLive {
                            block: ppa.block.0,
                            owner: "group area",
                        });
                    }
                }
            }
        }
        if let Some(log) = &self.log {
            if let Err(s) = log.allocator().audit() {
                return Err(retirement_skew("value log", s));
            }
            for level in &self.levels {
                for g in &level.groups {
                    for e in g.content.iter_key_order() {
                        if let crate::anykey::entity::ValueLoc::Logged(ptr) = e.loc {
                            if log.allocator().is_retired(ptr.block) {
                                return Err(AuditError::RetiredBlockLive {
                                    block: ptr.block.0,
                                    owner: "value log",
                                });
                            }
                        }
                    }
                }
            }
        }

        // Cause-tagged flash counter conservation.
        self.flash.counters().audit()?;
        Ok(())
    }

    /// Test-only corruption hook: swaps the first two groups of the first
    /// level holding at least two, breaking the level-list key order.
    /// Returns whether a level with enough groups existed.
    #[doc(hidden)]
    pub fn corrupt_level_order_for_test(&mut self) -> bool {
        for level in &mut self.levels {
            if level.groups.len() >= 2 {
                level.groups.swap(0, 1);
                return true;
            }
        }
        false
    }

    /// Test-only corruption hook: over-claims the DRAM budget past both
    /// the resident-structure sum and the metadata budget.
    #[doc(hidden)]
    pub fn overclaim_dram_for_test(&mut self) {
        self.dram.metadata_used = self.dram.metadata_budget() + (1 << 20);
    }

    /// Test-only corruption hook: desynchronizes the flash counters' read
    /// total from its per-cause ledger (forwards to
    /// [`anykey_flash::FlashSim::desync_counters_for_test`]).
    #[doc(hidden)]
    pub fn desync_counters_for_test(&mut self) {
        self.flash.desync_counters_for_test();
    }

    /// Test-only corruption hook: retires the block backing the first live
    /// group without relocating it, leaving a live PPA pointing into a
    /// retired block. Returns whether a live group existed.
    #[doc(hidden)]
    pub fn retire_live_block_for_test(&mut self) -> bool {
        let mut victim = None;
        for level in &self.levels {
            if let Some(g) = level.groups.first() {
                victim = Some(g.first_ppa.block);
                break;
            }
        }
        match victim {
            Some(b) => {
                self.area.retire_for_test(b);
                true
            }
            None => false,
        }
    }

    /// Test-only corruption hook: desynchronizes the group-area
    /// allocator's retired-block count from its per-block flags.
    #[doc(hidden)]
    pub fn desync_retirement_for_test(&mut self) {
        self.area.desync_retired_for_test();
    }
}

impl PinkStore {
    /// Audits every structural invariant of the store; see the
    /// [module docs](crate::audit) for the list.
    ///
    /// # Errors
    ///
    /// Returns the first [`AuditError`] found.
    pub fn verify_invariants(&self) -> Result<(), AuditError> {
        // Level ordering, per-segment sortedness and spill locations.
        for (li, level) in self.levels.iter().enumerate() {
            for (si, w) in level.segs.windows(2).enumerate() {
                let prev_last = w[0].entries.last().map(|e| e.key);
                if prev_last.is_some_and(|k| k >= w[1].first_key()) {
                    return Err(AuditError::LevelOrder {
                        level: li,
                        index: si,
                    });
                }
            }
            for (si, seg) in level.segs.iter().enumerate() {
                if seg.entries.windows(2).any(|w| w[0].key >= w[1].key) {
                    return Err(AuditError::DirectoryOrder {
                        level: li,
                        group: si,
                    });
                }
                if !seg.resident && seg.ppa.is_none() {
                    return Err(AuditError::MissingSpillLocation {
                        level: li,
                        index: si,
                    });
                }
            }
            if !level.list_resident && !level.is_empty() && level.list_pages.is_empty() {
                return Err(AuditError::MissingSpillLocation {
                    level: li,
                    index: usize::MAX,
                });
            }
        }

        // DRAM budget conservation, mirroring `rebalance`: resident level
        // lists first, then resident meta segments.
        let mut expected = 0u64;
        for level in &self.levels {
            if level.list_resident {
                expected += level.list_bytes();
            }
            for seg in &level.segs {
                if seg.resident {
                    expected += seg.bytes();
                }
            }
        }
        if self.dram.metadata_used != expected {
            return Err(AuditError::DramMismatch {
                used: self.dram.metadata_used,
                expected,
            });
        }
        if self.dram.metadata_used > self.dram.metadata_budget() {
            return Err(AuditError::DramOverBudget {
                used: self.dram.metadata_used,
                budget: self.dram.metadata_budget(),
            });
        }

        // Retirement accounting: the allocator partition conserves, and no
        // live data pointer, meta segment, or level-list page sits in a
        // retired block.
        if let Err(s) = self.alloc.audit() {
            return Err(retirement_skew("PinK", s));
        }
        for level in &self.levels {
            for ppa in &level.list_pages {
                if self.alloc.is_retired(ppa.block) {
                    return Err(AuditError::RetiredBlockLive {
                        block: ppa.block.0,
                        owner: "level list",
                    });
                }
            }
            for seg in &level.segs {
                if let Some(ppa) = seg.ppa {
                    if self.alloc.is_retired(ppa.block) {
                        return Err(AuditError::RetiredBlockLive {
                            block: ppa.block.0,
                            owner: "meta segment",
                        });
                    }
                }
                for e in &seg.entries {
                    if !e.tombstone && self.alloc.is_retired(e.ptr.block) {
                        return Err(AuditError::RetiredBlockLive {
                            block: e.ptr.block.0,
                            owner: "data area",
                        });
                    }
                }
            }
        }

        // Cause-tagged flash counter conservation.
        self.flash.counters().audit()?;
        Ok(())
    }

    /// Test-only corruption hook: desynchronizes the flash counters (see
    /// [`AnyKeyStore::desync_counters_for_test`]).
    #[doc(hidden)]
    pub fn desync_counters_for_test(&mut self) {
        self.flash.desync_counters_for_test();
    }

    /// Test-only corruption hook: retires the data block of the first live
    /// entry without relocating it, leaving a live data pointer into a
    /// retired block. Returns whether a live entry existed.
    #[doc(hidden)]
    pub fn retire_live_block_for_test(&mut self) -> bool {
        let mut victim = None;
        'search: for level in &self.levels {
            for seg in &level.segs {
                for e in &seg.entries {
                    if !e.tombstone {
                        victim = Some(e.ptr.block);
                        break 'search;
                    }
                }
            }
        }
        match victim {
            Some(b) => {
                let _ = self.alloc.retire(b);
                true
            }
            None => false,
        }
    }

    /// Test-only corruption hook: desynchronizes the allocator's
    /// retired-block count from its per-block flags.
    #[doc(hidden)]
    pub fn desync_retirement_for_test(&mut self) {
        self.alloc.desync_retired_for_test();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, EngineKind};
    use crate::KvEngine;

    fn store(kind: EngineKind) -> AnyKeyStore {
        AnyKeyStore::new(
            DeviceConfig::builder()
                .capacity_bytes(64 << 20)
                .engine(kind)
                .key_len(16)
                .build(),
        )
    }

    fn filled(kind: EngineKind) -> AnyKeyStore {
        let mut s = store(kind);
        for id in 0..30_000u64 {
            s.put(id, 60).unwrap();
        }
        s
    }

    #[test]
    fn fresh_store_passes_audit() {
        assert_eq!(store(EngineKind::AnyKey).verify_invariants(), Ok(()));
    }

    #[test]
    fn filled_store_passes_audit() {
        let s = filled(EngineKind::AnyKeyPlus);
        assert!(s.levels.iter().any(|l| !l.is_empty()), "data must land");
        assert_eq!(s.verify_invariants(), Ok(()));
    }

    #[test]
    fn level_order_corruption_is_detected() {
        let mut s = filled(EngineKind::AnyKey);
        assert!(s.corrupt_level_order_for_test(), "need >= 2 groups");
        assert!(matches!(
            s.verify_invariants(),
            Err(AuditError::LevelOrder { .. })
        ));
    }

    #[test]
    fn dram_overclaim_is_detected() {
        let mut s = filled(EngineKind::AnyKey);
        s.overclaim_dram_for_test();
        assert!(matches!(
            s.verify_invariants(),
            Err(AuditError::DramMismatch { .. } | AuditError::DramOverBudget { .. })
        ));
    }

    #[test]
    fn counter_desync_is_detected() {
        let mut s = filled(EngineKind::AnyKey);
        s.desync_counters_for_test();
        assert!(matches!(
            s.verify_invariants(),
            Err(AuditError::CounterSkew { .. })
        ));
    }

    #[test]
    fn retired_block_with_live_group_is_detected() {
        let mut s = filled(EngineKind::AnyKey);
        assert!(s.retire_live_block_for_test(), "need a live group");
        assert!(matches!(
            s.verify_invariants(),
            Err(AuditError::RetiredBlockLive {
                owner: "group area",
                ..
            })
        ));
    }

    #[test]
    fn retirement_desync_is_detected() {
        let mut s = filled(EngineKind::AnyKey);
        s.desync_retirement_for_test();
        assert!(matches!(
            s.verify_invariants(),
            Err(AuditError::RetirementSkew { .. })
        ));
    }

    #[test]
    fn pink_passes_audit_after_fill() {
        let mut p = PinkStore::new(
            DeviceConfig::builder()
                .capacity_bytes(64 << 20)
                .engine(EngineKind::Pink)
                .key_len(16)
                .build(),
        );
        for id in 0..30_000u64 {
            p.put(id, 60).unwrap();
        }
        assert_eq!(p.verify_invariants(), Ok(()));
        p.desync_counters_for_test();
        assert!(matches!(
            p.verify_invariants(),
            Err(AuditError::CounterSkew { .. })
        ));
    }

    #[test]
    fn audit_errors_have_distinct_diagnostics() {
        let msgs = [
            AuditError::LevelOrder { level: 1, index: 0 }.to_string(),
            AuditError::DramOverBudget {
                used: 10,
                budget: 5,
            }
            .to_string(),
            AuditError::CounterSkew {
                ledger: "reads",
                per_cause_sum: 3,
                total: 4,
            }
            .to_string(),
            AuditError::RetiredBlockLive {
                block: 7,
                owner: "group area",
            }
            .to_string(),
            AuditError::RetirementSkew {
                owner: "PinK",
                free: 1,
                allocated: 2,
                retired: 3,
                total: 7,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("key order"));
        assert!(msgs[1].contains("over budget"));
        assert!(msgs[2].contains("counter skew"));
        assert!(msgs[3].contains("retired block B7"));
        assert!(msgs[4].contains("retirement accounting skew"));
        for i in 0..msgs.len() {
            for j in i + 1..msgs.len() {
                assert_ne!(msgs[i], msgs[j]);
            }
        }
    }
}
