//! # anykey-core
//!
//! The key-value SSD engines of the AnyKey reproduction (ASPLOS 2025):
//!
//! * [`anykey::AnyKeyStore`] — the paper's contribution. KV pairs are
//!   managed in *data segment groups* (multiple physically-consecutive
//!   flash pages, hash-sorted inside, key-partitioned across); the
//!   DRAM-resident *level lists* keep one entry per **group** (smallest
//!   key, first-page PPA, per-page first-key hash prefixes, hash-collision
//!   bits) instead of one per KV pair, so metadata stays small under any
//!   key size; *hash lists* (sorted key-hash arrays, best-effort top-down
//!   in remaining DRAM) suppress speculative flash reads; a *value log*
//!   detaches values from LSM-tree compaction. Three variants share the
//!   implementation: base **AnyKey**, **AnyKey+** (modified log-triggered
//!   compaction that prevents compaction chains, Section 4.7), and
//!   **AnyKey−** (no value log; the Section 6.7 ablation).
//! * [`pink::PinkStore`] — the state-of-the-art baseline. Per-pair sorted
//!   *meta segments* with level lists, DRAM spill to flash, data segments
//!   holding full KV pairs, full-level compaction, and valid-data GC.
//!
//! Both engines implement [`KvEngine`] and run over the
//! [`anykey_flash::FlashSim`] virtual-time device, so the benchmark harness
//! can measure tail latencies, IOPS, per-cause flash traffic, and storage
//! utilization for each system under identical workloads.
//!
//! ```
//! use anykey_core::{DeviceConfig, EngineKind, KvEngine};
//!
//! let mut dev = DeviceConfig::builder()
//!     .capacity_bytes(64 << 20)
//!     .engine(EngineKind::AnyKey)
//!     .build()
//!     .build_engine();
//! dev.put(1, 100).unwrap();
//! assert!(dev.get(1).found);
//! assert!(!dev.get(2).found);
//! ```

/// The AnyKey engine (paper Sections 4.1-4.7).
pub mod anykey;
/// Runtime invariant auditing for both engines.
pub mod audit;
/// The DRAM write buffer.
pub mod buffer;
/// Device and engine configuration.
pub mod config;
/// DRAM budget accounting.
pub mod dram;
/// The `KvEngine` trait and operation outcomes.
pub mod engine;
/// Typed engine errors.
pub mod error;
/// The 32-bit key hash.
pub mod hash;
/// Fixed-length ordered keys.
pub mod key;
/// Analytic metadata-size model (Figure 2).
pub mod meta_model;
/// The PinK baseline engine.
pub mod pink;
/// Trace execution and latency reporting.
pub mod runner;

/// Invariant-audit failure diagnostics.
pub use audit::AuditError;
/// Device configuration and engine selection.
pub use config::{CpuModel, DeviceConfig, DeviceConfigBuilder, EngineKind};
/// The engine trait and its outcome/stat types.
pub use engine::{KvEngine, MetadataStats, OpOutcome, PAGE_HEADER_BYTES};
/// The engine error type.
pub use error::KvError;
/// The key hash function.
pub use hash::xxhash32;
/// The ordered fixed-length key type.
pub use key::Key;
/// Trace runner entry points.
pub use runner::{run, run_sampled, run_traced, run_traced_sampled, warm_up, RunReport, SampleCfg};
