//! PinK's flush, tree compaction and DRAM placement.
//!
//! PinK compaction merges *meta segments* only: KV pairs stay where the
//! L0 flush wrote them in the data area, and only the `(key, PPA)` index
//! moves. Under low-v/k workloads the index itself is huge and mostly
//! flash-resident, so even this "metadata-only" compaction reads and
//! rewrites large amounts of flash (the paper's Table 3).

use anykey_flash::{BlockId, Ns, OpCause, Ppa};

use crate::error::KvError;
use crate::pink::segment::{DataPtr, SegEntry, Segment};
use crate::pink::{PinkLevel, PinkStore};

impl PinkStore {
    /// Flushes the write buffer: KV pairs go to the data area, their index
    /// entries merge into L1, then tree compactions cascade.
    pub(crate) fn flush(&mut self, at: Ns) -> Result<Ns, KvError> {
        if self.buffer.is_empty() {
            return Ok(at);
        }
        #[cfg(feature = "trace")]
        let snap = self.span_snapshot();
        let mut t = self.gc_if_needed(at)?;
        let entries = self.buffer.drain();
        let mut upper: Vec<SegEntry> = Vec::with_capacity(entries.len());
        for (key, be) in entries {
            let ptr = if be.tombstone {
                DataPtr {
                    block: BlockId(0),
                    page: 0,
                    span: 0,
                }
            } else {
                let bytes = key.len() as u64
                    + be.value_len as u64
                    + crate::pink::segment::SEG_ENTRY_OVERHEAD;
                let (ptr, td) = self.data.append(
                    &mut self.alloc,
                    &mut self.flash,
                    bytes,
                    OpCause::CompactionWrite,
                    t,
                )?;
                t = t.max(td);
                ptr
            };
            upper.push(SegEntry {
                key,
                value_len: be.value_len,
                ptr,
                tombstone: be.tombstone,
            });
        }
        let t_ack = self.merge_levels(None, upper, 0, t)?;
        // Deeper merges are pipelined background work; the buffer frees as
        // soon as the L0->L1 merge lands.
        self.maintain(t_ack)?;
        #[cfg(feature = "trace")]
        self.push_span(snap, "flush", "buffer", 0, at, t_ack);
        #[cfg(any(test, feature = "strict-invariants"))]
        self.verify_invariants()?;
        Ok(t_ack)
    }

    /// Cascades tree compactions while any level exceeds its threshold.
    pub(crate) fn maintain(&mut self, at: Ns) -> Result<Ns, KvError> {
        let mut t = at;
        let mut i = 0;
        while i < self.levels.len() {
            if self.levels[i].over_threshold() {
                self.ensure_next_level(i);
                t = self.merge_levels(Some(i), Vec::new(), i + 1, t)?;
            } else {
                i += 1;
            }
        }
        Ok(t)
    }

    fn ensure_next_level(&mut self, i: usize) {
        if i + 1 == self.levels.len() {
            let threshold = self.levels[i].threshold * self.cfg.level_ratio;
            self.levels.push(PinkLevel::new(threshold));
        }
    }

    /// Merges `src` (or the given pre-built entries) into level `dst`,
    /// rebuilding `dst`'s meta segments and re-planning DRAM placement.
    pub(crate) fn merge_levels(
        &mut self,
        src: Option<usize>,
        upper_in: Vec<SegEntry>,
        dst: usize,
        at: Ns,
    ) -> Result<Ns, KvError> {
        #[cfg(feature = "trace")]
        let snap = self.span_snapshot();
        // Old meta generations are freed before the new one is written, so
        // the transient need is the destination's *growth* (the source's
        // meta volume) plus slack.
        let block_bytes = self.flash.geometry().block_bytes();
        let growth_blocks = match src {
            Some(si) => {
                let bytes: u64 = self.levels[si].segs.iter().map(Segment::bytes).sum();
                (bytes / block_bytes) as usize + 2
            }
            None => 2,
        };
        let t_head = self.gc_for_headroom(at, growth_blocks)?.max(at);

        // --- 1. Take inputs; read and free their spilled meta pages. ----
        let mut read_ppas: Vec<Ppa> = Vec::new();
        let mut freed_pages: Vec<Ppa> = Vec::new();
        let mut take_level = |level: &mut PinkLevel| -> Result<Vec<SegEntry>, KvError> {
            let segs = std::mem::take(&mut level.segs);
            let mut out = Vec::new();
            for s in segs {
                if !s.resident {
                    let ppa = s.ppa.ok_or(KvError::Internal {
                        context: "spilled segment has no flash location",
                    })?;
                    read_ppas.push(ppa);
                    freed_pages.push(ppa);
                }
                out.extend(s.entries);
            }
            freed_pages.append(&mut level.list_pages);
            Ok(out)
        };
        let upper = match src {
            Some(si) => {
                debug_assert!(upper_in.is_empty());
                take_level(&mut self.levels[si])?
            }
            None => upper_in,
        };
        let lower = take_level(&mut self.levels[dst])?;
        drop(take_level);
        let t_read = self
            .flash
            .read_many(read_ppas, OpCause::CompactionRead, t_head);
        let mut t_erase = t_read;
        for ppa in freed_pages {
            t_erase =
                t_erase.max(
                    self.meta
                        .free_page(&mut self.alloc, &mut self.flash, ppa, t_read)?,
                );
        }

        // --- 2. Merge newest-wins; dead pairs free data bytes. ---------
        let is_bottom = self.levels[dst + 1..].iter().all(PinkLevel::is_empty);
        let mut merged: Vec<SegEntry> = Vec::with_capacity(upper.len() + lower.len());
        {
            let mut ui = upper.into_iter().peekable();
            let mut li = lower.into_iter().peekable();
            loop {
                let take_upper = match (ui.peek(), li.peek()) {
                    (Some(u), Some(l)) => {
                        if u.key == l.key {
                            let dead = li.next().ok_or(KvError::Internal {
                                context: "peeked merge entry vanished",
                            })?;
                            self.data.invalidate(dead.ptr, dead.data_bytes());
                            true
                        } else {
                            u.key < l.key
                        }
                    }
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let e = if take_upper {
                    ui.next().ok_or(KvError::Internal {
                        context: "peeked merge entry vanished",
                    })?
                } else {
                    li.next().ok_or(KvError::Internal {
                        context: "peeked merge entry vanished",
                    })?
                };
                if e.tombstone && is_bottom {
                    continue;
                }
                merged.push(e);
            }
        }

        // --- 3. Rebuild page-sized segments. ----------------------------
        let merged_count = merged.len() as u64;
        let mut segs: Vec<Segment> = Vec::new();
        let mut cur: Vec<SegEntry> = Vec::new();
        let mut cur_bytes = 0u64;
        for e in merged {
            let sz = e.seg_bytes();
            if !cur.is_empty() && cur_bytes + sz > self.page_payload {
                segs.push(Segment {
                    entries: std::mem::take(&mut cur),
                    resident: false,
                    ppa: None,
                });
                cur_bytes = 0;
            }
            cur_bytes += sz;
            cur.push(e);
        }
        if !cur.is_empty() {
            segs.push(Segment {
                entries: cur,
                resident: false,
                ppa: None,
            });
        }
        self.levels[dst].segs = segs;
        self.levels[dst].recount();
        if let Some(si) = src {
            self.levels[si].recount();
        }

        // --- 4. Re-plan DRAM placement (charging spills/loads). ---------
        if std::env::var("ANYKEY_DEBUG").is_ok() {
            eprintln!(
                "merge src={src:?} dst={dst}: free={} data={} meta={} merged={merged_count}",
                self.alloc.free_count(),
                self.data.block_count(),
                self.meta.block_count()
            );
        }
        let t_place = self.rebalance(Some(dst), t_read)?;

        let done = t_place.max(t_erase) + merged_count * self.cfg.cpu.sort_ns_per_entity;
        let done = done.max(self.gc_if_needed(done)?);
        #[cfg(feature = "trace")]
        self.push_span(snap, "compaction", "merge", dst as u32, at, done);
        Ok(done)
    }

    /// Programs one freshly allocated meta page in `stream`, re-allocating
    /// and re-issuing on a program failure (the failed page is released —
    /// which may erase or retire its block — and a new location is drawn).
    pub(crate) fn program_meta_page(
        &mut self,
        stream: usize,
        cause: OpCause,
        at: Ns,
    ) -> Result<(Ppa, Ns), KvError> {
        let mut done = at;
        loop {
            let ppa = self.meta.alloc_page(&mut self.alloc, stream)?;
            let r = self.flash.program(ppa, cause, at);
            done = done.max(r.done);
            if r.status.is_ok() {
                return Ok((ppa, done));
            }
            done = done.max(
                self.meta
                    .free_page(&mut self.alloc, &mut self.flash, ppa, at)?,
            );
        }
    }

    /// Recomputes which level lists and meta segments are DRAM-resident
    /// (write buffer first, then level lists in level order, then meta
    /// segments in level order), charging flash traffic for every
    /// structure that spills out of — or loads into — DRAM.
    ///
    /// `rebuilt`'s structures are brand new: their spills are part of the
    /// compaction (CompactionWrite); other levels' spills are background
    /// metadata traffic (MetaWrite).
    pub(crate) fn rebalance(&mut self, rebuilt: Option<usize>, at: Ns) -> Result<Ns, KvError> {
        self.dram.clear_claims();
        let mut t = at;

        // Pass 1: level lists.
        for li in 0..self.levels.len() {
            let want = self.levels[li].list_bytes();
            let new_res = want == 0 || self.dram.try_claim(want);
            let was_res = self.levels[li].list_resident;
            let is_rebuilt = rebuilt == Some(li);
            if new_res {
                if !was_res && !is_rebuilt {
                    // Load into DRAM: read and release the flash copy.
                    let pages = std::mem::take(&mut self.levels[li].list_pages);
                    for ppa in pages {
                        t = t.max(self.flash.read(ppa, OpCause::MetaRead, at).done);
                        t = t.max(self.meta.free_page(
                            &mut self.alloc,
                            &mut self.flash,
                            ppa,
                            at,
                        )?);
                    }
                }
                self.levels[li].list_pages.clear();
            } else {
                let needs_write = is_rebuilt || was_res || self.levels[li].list_pages.is_empty();
                if needs_write {
                    let cause = if is_rebuilt {
                        OpCause::CompactionWrite
                    } else {
                        OpCause::MetaWrite
                    };
                    let pages_needed = want.div_ceil(self.page_payload).max(1);
                    let mut pages = Vec::with_capacity(pages_needed as usize);
                    for _ in 0..pages_needed {
                        let (ppa, td) = self.program_meta_page(li, cause, at)?;
                        t = t.max(td);
                        pages.push(ppa);
                    }
                    self.levels[li].list_pages = pages;
                }
            }
            self.levels[li].list_resident = new_res;
        }

        // Pass 2: meta segments, level order.
        for li in 0..self.levels.len() {
            let is_rebuilt = rebuilt == Some(li);
            for si in 0..self.levels[li].segs.len() {
                let bytes = self.levels[li].segs[si].bytes();
                let new_res = self.dram.try_claim(bytes);
                let was_res = self.levels[li].segs[si].resident;
                let had_ppa = self.levels[li].segs[si].ppa.is_some();
                if new_res {
                    if !was_res && had_ppa {
                        let ppa = self.levels[li].segs[si]
                            .ppa
                            .take()
                            .ok_or(KvError::Internal {
                                context: "resident load without a flash copy",
                            })?;
                        t = t.max(self.flash.read(ppa, OpCause::MetaRead, at).done);
                        t = t.max(self.meta.free_page(
                            &mut self.alloc,
                            &mut self.flash,
                            ppa,
                            at,
                        )?);
                    }
                } else if !had_ppa {
                    let cause = if is_rebuilt {
                        OpCause::CompactionWrite
                    } else {
                        OpCause::MetaWrite
                    };
                    let (ppa, td) = self.program_meta_page(li, cause, at)?;
                    t = t.max(td);
                    self.levels[li].segs[si].ppa = Some(ppa);
                }
                self.levels[li].segs[si].resident = new_res;
            }
        }
        Ok(t)
    }
}
