//! PinK's garbage collection.
//!
//! PinK's out-of-place updates strand dead KV pairs in the data area;
//! reclaiming a block means reading it, re-appending its live pairs, and
//! patching every meta segment that pointed at them — the dominant cost
//! the paper measures for PinK under update-heavy workloads (Table 3 shows
//! hundreds of millions of GC page reads where AnyKey has none).

use std::collections::BTreeSet;

use anykey_flash::{BlockId, Ns, OpCause, Ppa};

use crate::error::KvError;
use crate::pink::PinkStore;

impl PinkStore {
    fn debug_full(&self, why: &str) {
        if std::env::var("ANYKEY_DEBUG").is_ok() {
            let owned_seg_pages: usize = self
                .levels
                .iter()
                .flat_map(|l| l.segs.iter())
                .filter(|s| s.ppa.is_some())
                .count();
            let owned_list_pages: usize = self.levels.iter().map(|l| l.list_pages.len()).sum();
            let live_meta_pages: u64 = (0..self.alloc.len() as u32)
                .map(|b| self.meta.live_in(anykey_flash::BlockId(b)) as u64)
                .sum();
            eprintln!(
                "PinK device-full ({why}): free={} data_blocks={} meta_blocks={} total={} owned_pages={} (segs {owned_seg_pages} + lists {owned_list_pages}) live_meta_pages={live_meta_pages}",
                self.alloc.free_count(),
                self.data.block_count(),
                self.meta.block_count(),
                self.alloc.len(),
                owned_seg_pages + owned_list_pages,
            );
            if let Some((b, v)) = self.data.victim() {
                eprintln!("  data victim {b}: valid {v}");
            }
            if let Some((b, l)) = self.meta.victim() {
                eprintln!("  meta victim {b}: live {l}");
            }
        }
    }

    /// Keeps at least `reserve_blocks` erase blocks free, collecting data
    /// or meta blocks as needed.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when nothing can be reclaimed.
    pub(crate) fn gc_if_needed(&mut self, at: Ns) -> Result<Ns, KvError> {
        self.gc_for_headroom(at, 0)
    }

    /// Like [`Self::gc_if_needed`], but clears `extra` additional blocks —
    /// the transient headroom a large merge needs before its source
    /// generation is freed.
    pub(crate) fn gc_for_headroom(&mut self, at: Ns, extra: usize) -> Result<Ns, KvError> {
        let reserve = self.cfg.reserve_blocks as usize + extra;
        let mut t = at;
        let mut guard = 0usize;
        while self.alloc.free_count() < reserve {
            guard += 1;
            if guard > self.alloc.len() * 2 {
                self.debug_full("gc made no progress");
                return Err(KvError::DeviceFull);
            }
            let block_payload = self.page_payload * self.flash.geometry().pages_per_block as u64;
            let data_victim = self.data.victim();
            let meta_victim = self.meta.victim();
            let data_frac = data_victim
                .map(|(_, v)| v as f64 / block_payload as f64)
                .unwrap_or(f64::MAX);
            let meta_frac = meta_victim
                .map(|(_, live)| live as f64 / self.flash.geometry().pages_per_block as f64)
                .unwrap_or(f64::MAX);
            if data_frac <= meta_frac {
                let Some((victim, _)) = data_victim else {
                    self.debug_full("no data victim");
                    return Err(KvError::DeviceFull);
                };
                if data_frac >= 0.999 {
                    // Everything is live: relocation recovers nothing.
                    self.debug_full("data fully live");
                    return Err(KvError::DeviceFull);
                }
                t = self.relocate_data_block(victim, t)?;
            } else {
                let Some((victim, live)) = meta_victim else {
                    return Err(KvError::DeviceFull);
                };
                if live == 0 {
                    // A block emptied while it was still a stream's open
                    // block: nothing to relocate, just erase it.
                    self.meta.forget_empty(victim);
                    let r = self.flash.erase(victim, t);
                    t = t.max(r.done);
                    if r.status.is_ok() {
                        self.alloc.free(victim)?;
                    } else {
                        self.alloc.retire(victim)?;
                    }
                } else {
                    t = self.relocate_meta_block(victim, t)?;
                }
            }
        }
        #[cfg(any(test, feature = "strict-invariants"))]
        self.verify_invariants()?;
        Ok(t)
    }

    /// Collects a data block: reads it, re-inserts its live pairs through
    /// the write path (so meta segments are updated by normal compaction
    /// rather than patched in place — the reason the paper's Table 3 shows
    /// PinK with enormous GC *reads* but no GC writes), and erases it.
    fn relocate_data_block(&mut self, victim: BlockId, at: Ns) -> Result<Ns, KvError> {
        #[cfg(feature = "trace")]
        let snap = self.span_snapshot();
        // The device reads the whole victim block to identify live pairs.
        let pages = self.flash.geometry().pages_per_block;
        let read_ppas = (0..pages).map(|p| Ppa {
            block: victim,
            page: p,
        });
        let t_read = self.flash.read_many(read_ppas, OpCause::GcRead, at);

        // Live pairs (not shadowed by a buffered newer version) go back
        // through the write buffer; their stale lower-level entries are
        // superseded immediately and dropped at the next merge.
        let mut reinsert: Vec<(crate::key::Key, u32)> = Vec::new();
        let mut seen = BTreeSet::new();
        for level in &self.levels {
            for seg in &level.segs {
                for e in &seg.entries {
                    if !e.tombstone && e.ptr.block == victim && seen.insert(e.key) {
                        // Only the newest version of a key counts as live;
                        // deeper duplicates are garbage already.
                        if self.newest_ptr(e.key).is_some_and(|p| p.block == victim)
                            && self.buffer.get(&e.key).is_none()
                        {
                            reinsert.push((e.key, e.value_len));
                        }
                    }
                }
            }
        }
        for (key, value_len) in reinsert {
            self.buffer.insert(
                key,
                crate::buffer::BufEntry {
                    value_len,
                    tombstone: false,
                },
            );
        }
        self.data.remove_block(victim);
        let r = self.flash.erase(victim, t_read);
        if r.status.is_ok() {
            self.alloc.free(victim)?;
        } else {
            self.alloc.retire(victim)?;
        }
        #[cfg(feature = "trace")]
        self.push_span(snap, "gc", "relocate-data", 0, at, r.done);
        Ok(r.done)
    }

    /// The data pointer of the newest (shallowest) version of `key`, if
    /// any.
    fn newest_ptr(&self, key: crate::key::Key) -> Option<crate::pink::segment::DataPtr> {
        for level in &self.levels {
            if let Some(si) = level.candidate(key) {
                if let Some(e) = level.segs[si].find(key) {
                    if e.tombstone {
                        return None;
                    }
                    return Some(e.ptr);
                }
            }
        }
        None
    }

    /// Relocates the live meta pages of a meta block and erases it.
    fn relocate_meta_block(&mut self, victim: BlockId, at: Ns) -> Result<Ns, KvError> {
        #[cfg(feature = "trace")]
        let snap = self.span_snapshot();
        // Owners: spilled segments and spilled level-list pages.
        let mut seg_owners: Vec<(usize, usize)> = Vec::new();
        let mut list_owners: Vec<(usize, usize)> = Vec::new();
        for (li, level) in self.levels.iter().enumerate() {
            for (si, seg) in level.segs.iter().enumerate() {
                if seg.ppa.is_some_and(|p| p.block == victim) {
                    seg_owners.push((li, si));
                }
            }
            for (pi, ppa) in level.list_pages.iter().enumerate() {
                if ppa.block == victim {
                    list_owners.push((li, pi));
                }
            }
        }
        let mut read_ppas: Vec<Ppa> = Vec::with_capacity(seg_owners.len() + list_owners.len());
        for &(li, si) in &seg_owners {
            read_ppas.push(self.levels[li].segs[si].ppa.ok_or(KvError::Internal {
                context: "GC owner segment has no flash location",
            })?);
        }
        read_ppas.extend(
            list_owners
                .iter()
                .map(|&(li, pi)| self.levels[li].list_pages[pi]),
        );
        let t_read = self.flash.read_many(read_ppas, OpCause::GcRead, at);
        let mut t = t_read;
        for (li, si) in seg_owners {
            let old = self.levels[li].segs[si]
                .ppa
                .take()
                .ok_or(KvError::Internal {
                    context: "GC owner segment has no flash location",
                })?;
            t = t.max(
                self.meta
                    .free_page(&mut self.alloc, &mut self.flash, old, t_read)?,
            );
            let (new, td) = self.program_meta_page(li, OpCause::GcWrite, t_read)?;
            t = t.max(td);
            self.levels[li].segs[si].ppa = Some(new);
        }
        for (li, pi) in list_owners {
            let old = self.levels[li].list_pages[pi];
            t = t.max(
                self.meta
                    .free_page(&mut self.alloc, &mut self.flash, old, t_read)?,
            );
            let (new, td) = self.program_meta_page(li, OpCause::GcWrite, t_read)?;
            t = t.max(td);
            self.levels[li].list_pages[pi] = new;
        }
        // `free_page` erased and freed the victim once its last live page
        // was released.
        #[cfg(feature = "trace")]
        self.push_span(snap, "gc", "relocate-meta", 0, at, t);
        Ok(t)
    }
}
