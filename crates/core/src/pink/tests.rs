//! PinK-specific unit tests: DRAM placement, level routing, and GET-path
//! read charging.

use anykey_flash::OpCause;
use anykey_workload::Op;

use crate::config::{DeviceConfig, EngineKind};
use crate::engine::KvEngine;
use crate::pink::PinkStore;

fn store() -> PinkStore {
    PinkStore::new(
        DeviceConfig::builder()
            .capacity_bytes(16 << 20)
            .page_size(8 << 10)
            .pages_per_block(16)
            .group_pages(8)
            .engine(EngineKind::Pink)
            .key_len(48)
            .build(),
    )
}

fn fill(s: &mut PinkStore, n: u64) {
    for id in 0..n {
        s.put(id, 48).expect("fill");
    }
}

#[test]
fn upper_levels_stay_resident_lower_levels_spill() {
    let mut s = store();
    fill(&mut s, 60_000);
    // Level lists are claimed before segments, top level first: L1's
    // list must be resident even at 0.1% DRAM.
    assert!(
        s.levels[0].list_resident,
        "L1's level list must be DRAM-resident"
    );
    let deep = s.levels.iter().rev().find(|l| !l.is_empty()).unwrap();
    assert!(
        deep.segs.iter().filter(|seg| !seg.resident).count() > deep.segs.len() / 2,
        "the deepest level must be mostly flash-resident at 0.1% DRAM"
    );
    // Every spilled segment has a flash location; every resident one does
    // not.
    for level in &s.levels {
        for seg in &level.segs {
            assert_eq!(seg.ppa.is_some(), !seg.resident);
        }
    }
}

#[test]
fn spilled_metadata_costs_reads_on_the_get_path() {
    let mut s = store();
    fill(&mut s, 60_000);
    let before = s.counters().reads(OpCause::MetaRead);
    // Probe cold keys to force deep-level lookups.
    let at = s.horizon();
    let mut t = at;
    for id in (0..60_000u64).step_by(997) {
        let out = s.execute(&Op::Get { key: id }, t).unwrap();
        assert!(out.found);
        t = out.done_at;
    }
    let meta_reads = s.counters().reads(OpCause::MetaRead) - before;
    assert!(
        meta_reads > 30,
        "cold GETs must pay flash metadata reads (got {meta_reads})"
    );
}

#[test]
fn level_list_spill_is_reported() {
    let mut s = store();
    fill(&mut s, 60_000);
    let m = s.metadata();
    assert!(m.meta_segment_flash_bytes > m.meta_segment_dram_bytes);
    assert!(m.dram_used <= m.dram_capacity);
    // 48-byte keys: per-pair metadata is half the pair size; the total
    // demand must dwarf DRAM (the paper's Table 1 situation).
    assert!(m.metadata_bytes() > 4 * m.dram_capacity);
}

#[test]
fn overwrites_invalidate_old_data_bytes() {
    let mut s = store();
    fill(&mut s, 20_000);
    let live_before = s.metadata().live_unique_bytes;
    // Overwrite the same keys: unique bytes unchanged.
    for id in 0..20_000u64 {
        s.put(id, 48).unwrap();
    }
    assert_eq!(s.metadata().live_unique_bytes, live_before);
    // Deletes shrink it.
    for id in 0..1_000u64 {
        s.delete(id).unwrap();
    }
    assert_eq!(
        s.metadata().live_unique_bytes,
        live_before - 1_000 * (48 + 48)
    );
}
