//! The PinK baseline engine.
//!
//! PinK is the state-of-the-art LSM-tree key-value SSD the paper evaluates
//! against. Its metadata is per-KV-pair: sorted *meta segments* of
//! `(key, PPA)` entries with a *level list* entry per segment. Under
//! high-v/k workloads this metadata is small and the hot part stays in
//! DRAM; under low-v/k workloads it outgrows DRAM, and every GET pays
//! flash reads just to locate the pair — the degradation AnyKey fixes
//! (paper Sections 2–3).

/// PinK's flush, merge, and DRAM placement.
pub mod compaction;
/// PinK's data/meta-block garbage collection.
pub mod gc;
/// Meta segments and the data/meta flash areas.
pub mod segment;

#[cfg(test)]
mod tests;

use std::collections::HashMap;

use anykey_flash::{BlockAllocator, FlashCounters, FlashSim, Ns, OpCause, Ppa};
use anykey_metrics::timeline::{LevelSample, StateSample};
use anykey_metrics::trace::PhaseBreakdown;
#[cfg(feature = "trace")]
use anykey_metrics::trace::TraceEvent;
use anykey_workload::Op;

use crate::audit::AuditError;
use crate::buffer::{BufEntry, WriteBuffer};
use crate::config::{DeviceConfig, EngineKind};
use crate::dram::DramBudget;
use crate::engine::{KvEngine, MetadataStats, OpOutcome};
use crate::error::KvError;
use crate::key::Key;

use segment::{DataArea, MetaArea, SegEntry, Segment, LIST_ENTRY_OVERHEAD};

/// One PinK LSM level: meta segments plus its level list's placement.
#[derive(Debug, Clone, Default)]
pub struct PinkLevel {
    /// Key-ordered, disjoint meta segments.
    pub segs: Vec<Segment>,
    /// Logical KV bytes referenced by this level.
    pub kv_bytes: u64,
    /// Tree-compaction threshold.
    pub threshold: u64,
    /// Whether this level's level list is DRAM-resident.
    pub list_resident: bool,
    /// Flash pages of the spilled level list (empty when resident).
    pub list_pages: Vec<Ppa>,
}

impl PinkLevel {
    /// An empty level with the given threshold.
    pub fn new(threshold: u64) -> Self {
        Self {
            threshold,
            list_resident: true,
            ..Self::default()
        }
    }

    /// Segment index whose key range contains `key`.
    pub fn candidate(&self, key: Key) -> Option<usize> {
        let idx = self.segs.partition_point(|s| s.first_key() <= key);
        idx.checked_sub(1)
    }

    /// First segment that can contain keys ≥ `key` (scans).
    pub fn scan_start(&self, key: Key) -> usize {
        match self.candidate(key) {
            Some(i) if self.segs[i].entries.last().is_some_and(|e| e.key >= key) => i,
            Some(i) => i + 1,
            None => 0,
        }
    }

    /// Bytes of this level's level list.
    pub fn list_bytes(&self) -> u64 {
        self.segs
            .iter()
            .map(|s| s.first_key().len() as u64 + LIST_ENTRY_OVERHEAD)
            .sum()
    }

    /// Recomputes logical size.
    pub fn recount(&mut self) {
        self.kv_bytes = self
            .segs
            .iter()
            .flat_map(|s| s.entries.iter())
            .map(SegEntry::kv_bytes)
            .sum();
    }

    /// Whether the level holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Whether the level outgrew its threshold.
    pub fn over_threshold(&self) -> bool {
        self.kv_bytes > self.threshold
    }
}

/// The PinK key-value SSD.
#[derive(Debug)]
pub struct PinkStore {
    pub(crate) cfg: DeviceConfig,
    pub(crate) flash: FlashSim,
    pub(crate) buffer: WriteBuffer,
    pub(crate) levels: Vec<PinkLevel>,
    pub(crate) alloc: BlockAllocator,
    pub(crate) meta: MetaArea,
    pub(crate) data: DataArea,
    pub(crate) dram: DramBudget,
    pub(crate) page_payload: u64,
    live: HashMap<u64, u32>,
    live_bytes: u64,
    /// Completion time of the in-flight flush (double-buffered L0).
    flush_done: Ns,
    /// Recorded background spans (flush/compaction/GC) while tracing.
    #[cfg(feature = "trace")]
    spans: Vec<TraceEvent>,
    /// Next span id (unique per tracing session).
    #[cfg(feature = "trace")]
    span_seq: u64,
}

impl PinkStore {
    /// Builds a PinK device from a configuration.
    pub fn new(cfg: DeviceConfig) -> Self {
        let flash = FlashSim::new(cfg.flash);
        let geometry = cfg.flash.geometry;
        let page_payload = cfg.page_payload() as u64;
        let mut alloc = BlockAllocator::new(0..geometry.blocks());
        // Under a fault model wear matters: level P/E cycles across blocks.
        alloc.set_wear_aware(cfg.flash.fault.is_enabled());
        Self {
            buffer: WriteBuffer::new(cfg.write_buffer_bytes),
            levels: vec![PinkLevel::new(cfg.write_buffer_bytes * cfg.level_ratio)],
            alloc,
            meta: MetaArea::new(geometry.pages_per_block),
            data: DataArea::new(geometry.pages_per_block, page_payload),
            dram: DramBudget::new(
                cfg.dram_bytes,
                cfg.write_buffer_bytes.min(cfg.dram_bytes / 2),
            ),
            page_payload,
            live: HashMap::new(),
            live_bytes: 0,
            flush_done: 0,
            #[cfg(feature = "trace")]
            spans: Vec::new(),
            #[cfg(feature = "trace")]
            span_seq: 0,
            flash,
            cfg,
        }
    }

    fn make_key(&self, id: u64) -> Result<Key, KvError> {
        Key::new(id, self.cfg.key_len)
    }

    /// Snapshot of total flash page reads/writes, taken at the start of a
    /// background span; `None` when tracing is off.
    #[cfg(feature = "trace")]
    pub(crate) fn span_snapshot(&self) -> Option<(u64, u64)> {
        self.flash.is_tracing().then(|| {
            let c = self.flash.counters();
            (c.total_reads(), c.total_writes())
        })
    }

    /// Records a completed background span against a [`Self::span_snapshot`]
    /// taken before the work; a `None` snapshot (tracing off) is a no-op.
    #[cfg(feature = "trace")]
    pub(crate) fn push_span(
        &mut self,
        snap: Option<(u64, u64)>,
        kind: &str,
        label: &str,
        level: u32,
        start: Ns,
        end: Ns,
    ) {
        let Some((r0, w0)) = snap else { return };
        let id = self.span_seq;
        self.span_seq += 1;
        let c = self.flash.counters();
        let (r1, w1) = (c.total_reads(), c.total_writes());
        self.spans.push(TraceEvent::Span {
            kind: kind.to_string(),
            label: label.to_string(),
            level,
            id,
            start,
            end,
            pages_read: r1.saturating_sub(r0),
            pages_written: w1.saturating_sub(w0),
        });
    }

    fn list_entries_per_page(&self, key_len: u64) -> u64 {
        (self.page_payload / (key_len + LIST_ENTRY_OVERHEAD)).max(1)
    }

    fn do_put(
        &mut self,
        id: u64,
        value_len: u32,
        tombstone: bool,
        at: Ns,
    ) -> Result<OpOutcome, KvError> {
        let key = self.make_key(id)?;
        self.buffer.insert(
            key,
            BufEntry {
                value_len,
                tombstone,
            },
        );
        if tombstone {
            if let Some(old) = self.live.remove(&id) {
                self.live_bytes -= key.len() as u64 + old as u64;
            }
        } else {
            match self.live.insert(id, value_len) {
                Some(old) => {
                    self.live_bytes = self.live_bytes - old as u64 + value_len as u64;
                }
                None => self.live_bytes += key.len() as u64 + value_len as u64,
            }
        }
        let mut done = at + self.cfg.cpu.dram_op_ns;
        if self.buffer.is_full() {
            // Double-buffered L0: stall only while the previous flush is
            // still in flight.
            let start = at.max(self.flush_done);
            self.flush_done = self.flush(start)?;
            done = start + self.cfg.cpu.dram_op_ns;
        }
        // CPU cost is the only attributed phase; a flush stall (done being
        // pushed past the CPU cost) lands in queue_wait via the residual.
        let mut phases = PhaseBreakdown {
            engine: self.cfg.cpu.dram_op_ns,
            ..PhaseBreakdown::default()
        };
        phases.finish(done - at);
        Ok(OpOutcome {
            issued_at: at,
            done_at: done,
            found: true,
            flash_reads: 0,
            phases,
        })
    }

    fn do_get(&mut self, id: u64, at: Ns) -> Result<OpOutcome, KvError> {
        let key = self.make_key(id)?;
        let mut t = at;
        let mut reads = 0u32;
        let mut phases = PhaseBreakdown::default();

        if let Some(e) = self.buffer.get(&key) {
            let done = t + self.cfg.cpu.dram_op_ns;
            phases.engine += self.cfg.cpu.dram_op_ns;
            phases.finish(done - at);
            return Ok(OpOutcome {
                issued_at: at,
                done_at: done,
                found: !e.tombstone,
                flash_reads: 0,
                phases,
            });
        }

        for li in 0..self.levels.len() {
            let Some(si) = self.levels[li].candidate(key) else {
                continue;
            };
            // Level-list probe: free in DRAM, one flash read when spilled.
            if !self.levels[li].list_resident {
                let key_len = self.levels[li].segs[si].first_key().len() as u64;
                let per_page = self.list_entries_per_page(key_len) as usize;
                let page_idx =
                    (si / per_page).min(self.levels[li].list_pages.len().saturating_sub(1));
                if let Some(&ppa) = self.levels[li].list_pages.get(page_idx) {
                    let before = t;
                    t = self.flash.read(ppa, OpCause::MetaRead, t).done;
                    phases.meta_read += t - before;
                    reads += 1;
                }
            }
            // Meta-segment access: free when pinned, one flash read when
            // spilled.
            if !self.levels[li].segs[si].resident {
                let ppa = self.levels[li].segs[si].ppa.ok_or(KvError::Internal {
                    context: "spilled segment has no flash location",
                })?;
                let before = t;
                t = self.flash.read(ppa, OpCause::MetaRead, t).done;
                phases.meta_read += t - before;
                reads += 1;
            }
            if let Some(e) = self.levels[li].segs[si].find(key) {
                if e.tombstone {
                    let done = t + self.cfg.cpu.dram_op_ns;
                    phases.engine += self.cfg.cpu.dram_op_ns;
                    phases.finish(done - at);
                    return Ok(OpOutcome {
                        issued_at: at,
                        done_at: done,
                        found: false,
                        flash_reads: reads,
                        phases,
                    });
                }
                let ptr = e.ptr;
                reads += ptr.span as u32;
                let done = self.flash.read_many(ptr.pages(), OpCause::HostRead, t);
                phases.data_read += done - t;
                phases.finish(done - at);
                return Ok(OpOutcome {
                    issued_at: at,
                    done_at: done,
                    found: true,
                    flash_reads: reads,
                    phases,
                });
            }
        }
        let done = t + self.cfg.cpu.dram_op_ns;
        phases.engine += self.cfg.cpu.dram_op_ns;
        phases.finish(done - at);
        Ok(OpOutcome {
            issued_at: at,
            done_at: done,
            found: false,
            flash_reads: reads,
            phases,
        })
    }

    fn do_scan(
        &mut self,
        start_id: u64,
        len: u32,
        at: Ns,
    ) -> Result<(Vec<u64>, OpOutcome), KvError> {
        let start = self.make_key(start_id)?;
        let want = len as usize;
        let mut t = at;
        let mut reads = 0u32;

        // Collect up to `want` candidates per level, charging meta reads
        // for every spilled structure touched.
        struct Cand {
            entry: SegEntry,
            level: usize,
        }
        // Tombstones and cross-level duplicates consume candidates; retry
        // with a doubled per-level budget until every capped level's
        // frontier covers the emitted range (see the AnyKey scan path).
        let mut budget = want;
        let (mut cands, mut meta_ppas, mut limit): (Vec<Cand>, Vec<Ppa>, Option<Key>);
        loop {
            cands = Vec::new();
            meta_ppas = Vec::new();
            let mut frontier: Vec<Key> = Vec::new();
            for li in 0..self.levels.len() {
                let level = &self.levels[li];
                if level.is_empty() {
                    continue;
                }
                if !level.list_resident {
                    if let Some(&ppa) = level.list_pages.first() {
                        meta_ppas.push(ppa);
                    }
                }
                let mut taken = 0usize;
                let mut si = level.scan_start(start);
                while taken < budget && si < level.segs.len() {
                    let seg = &level.segs[si];
                    if !seg.resident {
                        meta_ppas.push(seg.ppa.ok_or(KvError::Internal {
                            context: "spilled segment has no flash location",
                        })?);
                    }
                    let from = seg.entries.partition_point(|e| e.key < start);
                    for e in &seg.entries[from..] {
                        if taken >= budget {
                            break;
                        }
                        cands.push(Cand {
                            entry: *e,
                            level: li,
                        });
                        taken += 1;
                    }
                    si += 1;
                }
                if taken >= budget {
                    if let Some(c) = cands.last() {
                        frontier.push(c.entry.key);
                    }
                }
            }
            limit = frontier.into_iter().min();
            let reachable = {
                let mut newest: std::collections::BTreeMap<Key, (usize, bool)> =
                    std::collections::BTreeMap::new();
                for c in &cands {
                    if limit.is_none_or(|l| c.entry.key <= l) {
                        let e = newest
                            .entry(c.entry.key)
                            .or_insert((c.level, c.entry.tombstone));
                        if c.level < e.0 {
                            *e = (c.level, c.entry.tombstone);
                        }
                    }
                }
                for (k, be) in self.buffer.range_from(start) {
                    if limit.is_none_or(|l| *k <= l) {
                        newest.insert(*k, (0, be.tombstone));
                    }
                }
                newest.values().filter(|&&(_, t)| !t).count()
            };
            if limit.is_none() || reachable >= want || budget >= want * 64 {
                break;
            }
            budget *= 2;
        }
        meta_ppas.sort_unstable();
        meta_ppas.dedup();
        reads += meta_ppas.len() as u32;
        let mut phases = PhaseBreakdown::default();
        let before = t;
        t = self.flash.read_many(meta_ppas, OpCause::MetaRead, t);
        phases.meta_read += t - before;

        // Merge with the buffer, newest wins.
        cands.sort_by(|a, b| a.entry.key.cmp(&b.entry.key).then(a.level.cmp(&b.level)));
        let mut chosen: Vec<(Key, Option<SegEntry>)> = Vec::new();
        {
            let mut buf_iter = self.buffer.range_from(start).peekable();
            let mut i = 0;
            while chosen.len() < want && (i < cands.len() || buf_iter.peek().is_some()) {
                let next_level_key = cands.get(i).map(|c| c.entry.key);
                let next_buf_key = buf_iter.peek().map(|(k, _)| **k);
                let key = match (next_buf_key, next_level_key) {
                    (Some(b), Some(l)) => b.min(l),
                    (Some(b), None) => b,
                    (None, Some(l)) => l,
                    (None, None) => break,
                };
                if limit.is_some_and(|l| key > l) {
                    // Never emit beyond a capped level's frontier.
                    break;
                }
                let mut buf_tomb = None;
                if next_buf_key == Some(key) {
                    let (_, e) = buf_iter.next().ok_or(KvError::Internal {
                        context: "peeked buffer entry vanished mid-scan",
                    })?;
                    buf_tomb = Some(e.tombstone);
                }
                let mut newest: Option<SegEntry> = None;
                while i < cands.len() && cands[i].entry.key == key {
                    if newest.is_none() {
                        newest = Some(cands[i].entry);
                    }
                    i += 1;
                }
                match buf_tomb {
                    Some(true) => {}
                    Some(false) => chosen.push((key, None)),
                    None => match newest {
                        Some(e) if e.tombstone => {}
                        Some(e) => chosen.push((key, Some(e))),
                        None => {}
                    },
                }
            }
        }

        // Read the data pages of the selected pairs. In PinK these are
        // scattered over the data area (values are placed in buffer-arrival
        // order), which is why long scans cost it dearly (Figure 18).
        let mut data_ppas: Vec<Ppa> = Vec::new();
        for (_, e) in &chosen {
            if let Some(e) = e {
                data_ppas.extend(e.ptr.pages());
            }
        }
        data_ppas.sort_unstable();
        data_ppas.dedup();
        reads += data_ppas.len() as u32;
        let done = self.flash.read_many(data_ppas, OpCause::HostRead, t);
        let done = done.max(t);
        phases.data_read += done - t;
        phases.finish(done - at);

        let ids: Vec<u64> = chosen.iter().map(|(k, _)| k.id()).collect();
        let found = !ids.is_empty();
        Ok((
            ids,
            OpOutcome {
                issued_at: at,
                done_at: done,
                found,
                flash_reads: reads,
                phases,
            },
        ))
    }
}

impl KvEngine for PinkStore {
    fn kind(&self) -> EngineKind {
        EngineKind::Pink
    }

    fn execute(&mut self, op: &Op, at: Ns) -> Result<OpOutcome, KvError> {
        match *op {
            Op::Get { key } => self.do_get(key, at),
            Op::Put { key, value_len } => self.do_put(key, value_len, false, at),
            Op::Delete { key } => self.do_put(key, 0, true, at),
            Op::Scan { start, len } => self.do_scan(start, len, at).map(|(_, o)| o),
        }
    }

    fn scan_keys(&mut self, start: u64, len: u32, at: Ns) -> (Vec<u64>, OpOutcome) {
        // An ill-formed start key cannot match any stored key, so the scan
        // is empty rather than a panic.
        self.do_scan(start, len, at).unwrap_or_else(|_| {
            (
                Vec::new(),
                OpOutcome {
                    issued_at: at,
                    done_at: at,
                    found: false,
                    flash_reads: 0,
                    phases: PhaseBreakdown::default(),
                },
            )
        })
    }

    fn metadata(&self) -> MetadataStats {
        let level_list_bytes: u64 = self.levels.iter().map(PinkLevel::list_bytes).sum();
        let level_list_flash: u64 = self
            .levels
            .iter()
            .filter(|l| !l.list_resident)
            .map(PinkLevel::list_bytes)
            .sum();
        let (mut seg_dram, mut seg_flash) = (0u64, 0u64);
        for level in &self.levels {
            for seg in &level.segs {
                if seg.resident {
                    seg_dram += seg.bytes();
                } else {
                    seg_flash += seg.bytes();
                }
            }
        }
        MetadataStats {
            level_list_bytes,
            level_list_flash_bytes: level_list_flash,
            hash_list_total_bytes: 0,
            hash_list_resident_bytes: 0,
            meta_segment_dram_bytes: seg_dram,
            meta_segment_flash_bytes: seg_flash,
            dram_capacity: self.dram.capacity,
            dram_used: self.dram.used(),
            levels: self.levels.iter().filter(|l| !l.is_empty()).count(),
            live_unique_bytes: self.live_bytes,
            value_log_used_bytes: 0,
            retry_reads: self.flash.counters().total_retry_reads(),
            program_fails: self.flash.counters().program_fails(),
            erase_fails: self.flash.counters().erase_fails(),
            retired_blocks: self.alloc.retired_count() as u64,
            free_blocks: self.alloc.free_count() as u64,
        }
    }

    fn sample_state(&self) -> StateSample {
        let meta = self.metadata();
        let wear = self.flash.sample_state();
        StateSample {
            dram_capacity: meta.dram_capacity,
            dram_used: meta.dram_used,
            level_list_bytes: meta.level_list_bytes,
            meta_segment_dram_bytes: meta.meta_segment_dram_bytes,
            meta_segment_flash_bytes: meta.meta_segment_flash_bytes,
            group_count: self.levels.iter().map(|l| l.segs.len() as u64).sum::<u64>(),
            free_blocks: meta.free_blocks,
            wear_min: wear.wear_min,
            wear_max: wear.wear_max,
            wear_total: wear.wear_total,
            levels: self
                .levels
                .iter()
                .enumerate()
                .map(|(i, l)| LevelSample {
                    level: i as u32,
                    entries: l.segs.len() as u64,
                    kv_bytes: l.kv_bytes,
                    phys_bytes: l.segs.iter().map(Segment::bytes).sum(),
                    meta_bytes: l.list_bytes(),
                })
                .collect(),
            ..StateSample::default()
        }
    }

    fn counters(&self) -> FlashCounters {
        self.flash.counters().clone()
    }

    fn reset_counters(&mut self) {
        self.flash.reset_counters();
    }

    fn horizon(&self) -> Ns {
        self.flash.horizon()
    }

    fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes()
    }

    fn check_invariants(&self) -> Result<(), AuditError> {
        self.verify_invariants()
    }

    fn set_tracing(&mut self, on: bool) {
        self.flash.set_tracing(on);
        #[cfg(feature = "trace")]
        if on {
            self.spans.clear();
            self.span_seq = 0;
        }
    }

    #[cfg(feature = "trace")]
    fn take_trace(&mut self) -> Vec<TraceEvent> {
        let geometry = self.cfg.flash.geometry;
        let mut out: Vec<TraceEvent> = self
            .flash
            .take_trace_events()
            .into_iter()
            .map(|e| TraceEvent::FlashOp {
                op: e.op.as_str().to_string(),
                cause: e.cause_str().to_string(),
                chip: e.chip,
                channel: geometry.channel_of_chip(e.chip),
                issued: e.issued,
                start: e.start,
                done: e.done,
                retries: e.retries,
            })
            .collect();
        out.append(&mut self.spans);
        anykey_metrics::trace::sort_events(&mut out);
        out
    }
}
