//! PinK's on-flash structures: meta segments, the data area, and the meta
//! page area.
//!
//! PinK (the state-of-the-art baseline the paper compares against) keeps a
//! sorted array of `(key, PPA)` pairs — a *meta segment* — per page-sized
//! unit of its LSM-tree levels, plus a *level list* entry (first key +
//! location) per segment. Upper-level meta segments are pinned in DRAM;
//! the rest live in flash and cost a flash read per probe. KV pairs
//! themselves are packed into *data segments* (plain flash pages).

use std::collections::HashMap;

use anykey_flash::{BlockAllocator, BlockId, FlashSim, Ns, OpCause, Ppa};

use crate::error::KvError;
use crate::key::Key;

/// Fixed per-entry overhead in a meta segment beyond the key bytes: a
/// 4-byte PPA and 2 bytes of length/flags.
pub const SEG_ENTRY_OVERHEAD: u64 = 6;
/// Bytes per level-list entry beyond the first key: segment location.
pub const LIST_ENTRY_OVERHEAD: u64 = 5;

/// Location of a KV pair in the data area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPtr {
    /// Data block.
    pub block: BlockId,
    /// Page the pair starts in.
    pub page: u32,
    /// Pages the pair touches (> 1 only when a pair exceeds the page
    /// payload, e.g. 4 KiB pages with 4 KiB values).
    pub span: u8,
}

impl DataPtr {
    /// The flash pages this pair occupies.
    pub fn pages(self) -> impl Iterator<Item = Ppa> {
        (0..self.span as u32).map(move |i| Ppa {
            block: self.block,
            page: self.page + i,
        })
    }
}

/// One sorted entry of a meta segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegEntry {
    /// The key.
    pub key: Key,
    /// Value length (0 for tombstones).
    pub value_len: u32,
    /// Where the KV pair lives in the data area.
    pub ptr: DataPtr,
    /// Deletion marker.
    pub tombstone: bool,
}

impl SegEntry {
    /// Logical KV bytes of this entry.
    pub fn kv_bytes(&self) -> u64 {
        if self.tombstone {
            self.key.len() as u64
        } else {
            self.key.len() as u64 + self.value_len as u64
        }
    }

    /// Bytes this entry occupies in its meta segment.
    pub fn seg_bytes(&self) -> u64 {
        self.key.len() as u64 + SEG_ENTRY_OVERHEAD
    }

    /// Bytes the KV pair occupies in the data area.
    pub fn data_bytes(&self) -> u64 {
        if self.tombstone {
            0
        } else {
            self.key.len() as u64 + self.value_len as u64 + SEG_ENTRY_OVERHEAD
        }
    }
}

/// A page-sized sorted run of `(key, PPA)` entries.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Key-sorted entries.
    pub entries: Vec<SegEntry>,
    /// Whether the segment is pinned in DRAM (then it has no flash copy).
    pub resident: bool,
    /// Flash location when spilled.
    pub ppa: Option<Ppa>,
}

impl Segment {
    /// First key of the segment (its level-list key).
    pub fn first_key(&self) -> Key {
        self.entries[0].key
    }

    /// Bytes of this segment's entries.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(SegEntry::seg_bytes).sum()
    }

    /// Binary-searches the segment for `key`.
    pub fn find(&self, key: Key) -> Option<&SegEntry> {
        self.entries
            .binary_search_by(|e| e.key.cmp(&key))
            .ok()
            .map(|i| &self.entries[i])
    }
}

/// The flash area holding spilled meta segments and spilled level-list
/// pages, with per-page liveness so emptied blocks can be erased.
#[derive(Debug, Clone, Default)]
pub struct MetaArea {
    /// One open block per stream (stream = LSM level), so that a level's
    /// meta pages — which die together at that level's next rebuild — are
    /// packed into the same blocks and free wholesale.
    opens: HashMap<usize, (BlockId, u32)>,
    live_pages: HashMap<BlockId, u32>,
    pages_per_block: u32,
}

impl MetaArea {
    /// A meta area for blocks of the given size.
    pub fn new(pages_per_block: u32) -> Self {
        Self {
            opens: HashMap::new(),
            live_pages: HashMap::new(),
            pages_per_block,
        }
    }

    fn is_open(&self, block: BlockId) -> bool {
        self.opens.values().any(|&(b, _)| b == block)
    }

    /// Allocates one meta page in the given stream (level).
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when the shared allocator is
    /// exhausted.
    pub fn alloc_page(
        &mut self,
        alloc: &mut BlockAllocator,
        stream: usize,
    ) -> Result<Ppa, KvError> {
        if let Some(&(block, next)) = self.opens.get(&stream) {
            if next < self.pages_per_block {
                self.opens.insert(stream, (block, next + 1));
                *self.live_pages.entry(block).or_insert(0) += 1;
                return Ok(Ppa { block, page: next });
            }
            self.opens.remove(&stream);
        }
        let block = alloc.alloc().ok_or_else(|| {
            if std::env::var("ANYKEY_DEBUG").is_ok() {
                eprintln!("PinK meta alloc exhausted (stream {stream})");
            }
            KvError::DeviceFull
        })?;
        self.live_pages.insert(block, 1);
        self.opens.insert(stream, (block, 1));
        Ok(Ppa { block, page: 0 })
    }

    /// Releases a meta page; erases and frees the block when it empties.
    /// An erase failure retires the block from the allocator instead of
    /// returning it to the free pool.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::UntrackedBlock`] when the page's block is not
    /// tracked — a freed meta page must have been allocated here.
    pub fn free_page(
        &mut self,
        alloc: &mut BlockAllocator,
        flash: &mut FlashSim,
        ppa: Ppa,
        at: Ns,
    ) -> Result<Ns, KvError> {
        let live = self
            .live_pages
            .get_mut(&ppa.block)
            .ok_or(KvError::UntrackedBlock {
                block: ppa.block.0,
                owner: "meta area",
            })?;
        debug_assert!(*live > 0);
        *live -= 1;
        if *live == 0 && !self.is_open(ppa.block) {
            self.live_pages.remove(&ppa.block);
            let r = flash.erase(ppa.block, at);
            if r.status.is_ok() {
                alloc.free(ppa.block)?;
            } else {
                alloc.retire(ppa.block)?;
            }
            return Ok(r.done);
        }
        Ok(at)
    }

    /// Number of blocks the meta area currently holds.
    pub fn block_count(&self) -> usize {
        self.live_pages.len()
    }

    /// The sealed meta block with the fewest live pages (GC victim).
    pub fn victim(&self) -> Option<(BlockId, u32)> {
        self.live_pages
            .iter()
            .filter(|(&b, _)| !self.is_open(b))
            .map(|(&b, &live)| (b, live))
            .min_by_key(|&(b, live)| (live, b))
    }

    /// Forgets a tracked block whose pages were all freed while it was
    /// still a stream's open block (it can then be erased by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the block still has live pages.
    pub fn forget_empty(&mut self, block: BlockId) {
        let live = self.live_pages.remove(&block);
        assert_eq!(live, Some(0), "forget_empty on a live block");
        self.opens.retain(|_, &mut (b, _)| b != block);
    }

    /// Live meta pages in `block` (0 if untracked).
    pub fn live_in(&self, block: BlockId) -> u32 {
        self.live_pages.get(&block).copied().unwrap_or(0)
    }
}

/// The flash area KV pairs are packed into, byte-continuous with per-block
/// valid-byte accounting (for GC victim selection).
#[derive(Debug, Clone, Default)]
pub struct DataArea {
    open: Option<OpenData>,
    blocks: HashMap<BlockId, u64>,
    pages_per_block: u32,
    page_payload: u64,
}

#[derive(Debug, Clone, Copy)]
struct OpenData {
    block: BlockId,
    next_page: u32,
    page_fill: u64,
}

impl DataArea {
    /// A data area for blocks of the given shape.
    pub fn new(pages_per_block: u32, page_payload: u64) -> Self {
        Self {
            open: None,
            blocks: HashMap::new(),
            pages_per_block,
            page_payload,
        }
    }

    /// Appends a KV pair of `bytes` bytes; returns its pointer and the
    /// completion time of any page programs. Pairs may span pages but not
    /// blocks.
    ///
    /// A page-program failure breaks the pair's contiguity, so the whole
    /// pair is re-placed starting at the next page (rolling into a fresh
    /// block when the current one runs out); the failed attempt's pages
    /// stay dead and the failed program remains visible in the counters.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when the shared allocator is
    /// exhausted.
    pub fn append(
        &mut self,
        alloc: &mut BlockAllocator,
        flash: &mut FlashSim,
        bytes: u64,
        cause: OpCause,
        at: Ns,
    ) -> Result<(DataPtr, Ns), KvError> {
        assert!(bytes > 0, "empty pairs are never stored");
        assert!(
            bytes <= self.pages_per_block as u64 * self.page_payload,
            "pair of {bytes} bytes exceeds the erase-block payload"
        );
        let mut done = at;
        'place: loop {
            let mut o = match self.open {
                Some(o) => o,
                None => self.open_block(alloc)?,
            };
            let remaining =
                (self.pages_per_block - o.next_page) as u64 * self.page_payload - o.page_fill;
            if bytes > remaining {
                done = done.max(self.seal(flash, at));
                o = self.open_block(alloc)?;
            }
            let start_page = o.next_page;
            let mut left = bytes;
            let mut span = 0u8;
            while left > 0 {
                let take = left.min(self.page_payload - o.page_fill);
                o.page_fill += take;
                left -= take;
                span += 1;
                if o.page_fill == self.page_payload {
                    let r = flash.program(
                        Ppa {
                            block: o.block,
                            page: o.next_page,
                        },
                        cause,
                        at,
                    );
                    done = done.max(r.done);
                    o.next_page += 1;
                    o.page_fill = 0;
                    if !r.status.is_ok() {
                        // Re-issue the pair past the bad page.
                        self.open = Some(o);
                        continue 'place;
                    }
                }
            }
            self.open = Some(o);
            *self
                .blocks
                .get_mut(&o.block)
                .ok_or(KvError::UntrackedBlock {
                    block: o.block.0,
                    owner: "data area",
                })? += bytes;
            if o.next_page == self.pages_per_block {
                done = done.max(self.seal(flash, at));
            }
            return Ok((
                DataPtr {
                    block: o.block,
                    page: start_page,
                    span,
                },
                done,
            ));
        }
    }

    fn open_block(&mut self, alloc: &mut BlockAllocator) -> Result<OpenData, KvError> {
        let block = alloc.alloc().ok_or_else(|| {
            if std::env::var("ANYKEY_DEBUG").is_ok() {
                eprintln!("PinK data alloc exhausted");
            }
            KvError::DeviceFull
        })?;
        self.blocks.insert(block, 0);
        let o = OpenData {
            block,
            next_page: 0,
            page_fill: 0,
        };
        self.open = Some(o);
        Ok(o)
    }

    /// Programs the partial open page (if any) and closes the open block
    /// reference so GC may consider it. A program failure re-issues the
    /// partial page at the next page while the block has room.
    pub fn seal(&mut self, flash: &mut FlashSim, at: Ns) -> Ns {
        let Some(mut o) = self.open.take() else {
            return at;
        };
        let mut done = at;
        if o.page_fill > 0 {
            while o.next_page < self.pages_per_block {
                let r = flash.program(
                    Ppa {
                        block: o.block,
                        page: o.next_page,
                    },
                    OpCause::CompactionWrite,
                    at,
                );
                done = done.max(r.done);
                o.next_page += 1;
                if r.status.is_ok() {
                    break;
                }
            }
        }
        done
    }

    /// Marks `bytes` of the pair at `ptr` dead.
    pub fn invalidate(&mut self, ptr: DataPtr, bytes: u64) {
        if let Some(v) = self.blocks.get_mut(&ptr.block) {
            *v = v.saturating_sub(bytes);
        }
    }

    /// The sealed block with the least valid data (GC victim), if any.
    pub fn victim(&self) -> Option<(BlockId, u64)> {
        let open = self.open.map(|o| o.block);
        self.blocks
            .iter()
            .filter(|(&b, _)| Some(b) != open)
            .map(|(&b, &v)| (b, v))
            .min_by_key(|&(b, v)| (v, b))
    }

    /// Forgets a block after GC erased it.
    pub fn remove_block(&mut self, block: BlockId) {
        self.blocks.remove(&block);
    }

    /// Valid bytes currently tracked in `block`.
    pub fn valid_in(&self, block: BlockId) -> u64 {
        self.blocks.get(&block).copied().unwrap_or(0)
    }

    /// Number of blocks the data area currently holds.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anykey_flash::FlashConfig;

    fn setup() -> (FlashSim, BlockAllocator, DataArea) {
        (
            FlashSim::new(FlashConfig::small_test()),
            BlockAllocator::new(0..8),
            DataArea::new(128, 8128),
        )
    }

    #[test]
    fn data_append_packs_pages() {
        let (mut flash, mut alloc, mut data) = setup();
        let (a, _) = data
            .append(&mut alloc, &mut flash, 100, OpCause::CompactionWrite, 0)
            .unwrap();
        let (b, _) = data
            .append(&mut alloc, &mut flash, 100, OpCause::CompactionWrite, 0)
            .unwrap();
        assert_eq!(a.block, b.block);
        assert_eq!(a.page, b.page);
        assert_eq!(data.valid_in(a.block), 200);
    }

    #[test]
    fn data_pairs_span_pages() {
        let (mut flash, mut alloc, mut data) = setup();
        data.append(&mut alloc, &mut flash, 8000, OpCause::CompactionWrite, 0)
            .unwrap();
        let (p, _) = data
            .append(&mut alloc, &mut flash, 1000, OpCause::CompactionWrite, 0)
            .unwrap();
        assert_eq!(p.span, 2);
        assert_eq!(p.pages().count(), 2);
    }

    #[test]
    fn data_victim_prefers_least_valid() {
        let (mut flash, mut alloc, mut data) = setup();
        // Fill one block and invalidate most of it.
        let block_payload = 8128 * 128u64;
        let mut first = None;
        let mut used = 0;
        while used + 8000 <= block_payload + 8000 {
            let (p, _) = data
                .append(&mut alloc, &mut flash, 8000, OpCause::CompactionWrite, 0)
                .unwrap();
            if first.is_none() {
                first = Some(p.block);
            }
            if p.block == first.unwrap() {
                data.invalidate(p, 8000);
            }
            used += 8000;
        }
        let (victim, valid) = data.victim().unwrap();
        assert_eq!(victim, first.unwrap());
        assert_eq!(valid, 0);
    }

    #[test]
    fn meta_area_allocates_and_recycles_pages() {
        let (mut flash, mut alloc, _) = setup();
        let mut meta = MetaArea::new(128);
        let pages: Vec<Ppa> = (0..130)
            .map(|_| meta.alloc_page(&mut alloc, 0).unwrap())
            .collect();
        // 130 pages span two blocks.
        assert_eq!(meta.block_count(), 2);
        assert_ne!(pages[0].block, pages[129].block);
        // Free the first block's pages; it should be erased.
        let freed = alloc.free_count();
        for p in &pages[..128] {
            meta.free_page(&mut alloc, &mut flash, *p, 0).unwrap();
        }
        assert_eq!(alloc.free_count(), freed + 1);
        assert_eq!(flash.counters().erases(), 1);
    }

    #[test]
    fn segment_find_is_exact() {
        let entries: Vec<SegEntry> = (0..100u64)
            .map(|id| SegEntry {
                key: Key::new(id * 2, 16).unwrap(),
                value_len: 50,
                ptr: DataPtr {
                    block: BlockId(0),
                    page: 0,
                    span: 1,
                },
                tombstone: false,
            })
            .collect();
        let seg = Segment {
            entries,
            resident: true,
            ppa: None,
        };
        assert!(seg.find(Key::new(42, 16).unwrap()).is_some());
        assert!(seg.find(Key::new(43, 16).unwrap()).is_none());
        assert_eq!(seg.first_key().id(), 0);
    }
}
