//! Device configuration shared by every engine.

use anykey_flash::{FaultModel, FlashConfig, Ns, MICROSECOND};

use crate::anykey::AnyKeyStore;
use crate::engine::KvEngine;
use crate::pink::PinkStore;

/// Which KV-SSD design to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The PinK baseline (state-of-the-art LSM-tree KV-SSD).
    Pink,
    /// Base AnyKey (paper Sections 4.1–4.6).
    AnyKey,
    /// AnyKey with the enhanced log-triggered compaction (Section 4.7);
    /// the paper's best system across all workload types.
    AnyKeyPlus,
    /// AnyKey without a value log — the Section 6.7 "AnyKey−" ablation.
    AnyKeyNoLog,
}

impl EngineKind {
    /// The paper's display name for this system.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Pink => "PinK",
            EngineKind::AnyKey => "AnyKey",
            EngineKind::AnyKeyPlus => "AnyKey+",
            EngineKind::AnyKeyNoLog => "AnyKey-",
        }
    }

    /// The three systems compared throughout the paper's evaluation.
    pub const EVALUATED: [EngineKind; 3] =
        [EngineKind::Pink, EngineKind::AnyKey, EngineKind::AnyKeyPlus];
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Controller computation costs (paper Section 4.6: 79 ns per 32-bit xxHash
/// of a 40-byte key and ~118 µs to merge-sort two 8192-entity groups on a
/// 1.2 GHz Cortex-A53; all evaluation data includes these overheads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    /// Hash generation cost per request (GET and PUT each hash once).
    pub hash_ns: Ns,
    /// DRAM/firmware cost of a request that is served without flash I/O
    /// (buffer hits, metadata-only misses).
    pub dram_op_ns: Ns,
    /// Merge-sort cost per KV entity during compaction
    /// (118 µs / 16384 entities ≈ 7 ns).
    pub sort_ns_per_entity: Ns,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self {
            hash_ns: 79,
            dram_op_ns: 2 * MICROSECOND,
            sort_ns_per_entity: 7,
        }
    }
}

/// Full configuration of a simulated KV-SSD.
///
/// Build one with [`DeviceConfig::builder`]; defaults reproduce the paper's
/// Section 5.1 setup scaled to a 256 MiB device (DRAM held at the paper's
/// 0.1 % of capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Flash geometry and latency model.
    pub flash: FlashConfig,
    /// Device-internal DRAM in bytes (paper default: 0.1 % of capacity).
    pub dram_bytes: u64,
    /// Portion of DRAM reserved for the write buffer (L0).
    pub write_buffer_bytes: u64,
    /// LSM level size ratio (level *i+1* holds `ratio ×` level *i*).
    pub level_ratio: u64,
    /// Pages per data segment group (AnyKey; paper default 32).
    pub group_pages: u32,
    /// Value-log capacity in bytes (AnyKey; 0 disables the log).
    pub value_log_bytes: u64,
    /// Free erase blocks each engine keeps in reserve for compaction/GC
    /// headroom (over-provisioning).
    pub reserve_blocks: u32,
    /// AnyKey+ θ: log-triggered compaction stops inlining values when the
    /// destination level reaches `θ × threshold` (Section 4.7).
    pub theta: f64,
    /// Controller computation model.
    pub cpu: CpuModel,
    /// Which engine to build.
    pub engine: EngineKind,
    /// Key length in bytes for synthesized keys (per-workload, Table 2).
    pub key_len: u16,
}

impl DeviceConfig {
    /// Starts a builder with the default (256 MiB, paper-shaped) setup.
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder::default()
    }

    /// Raw flash capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.flash.geometry.raw_bytes()
    }

    /// Usable page payload after the per-page header.
    pub fn page_payload(&self) -> u32 {
        self.flash.geometry.page_size - crate::PAGE_HEADER_BYTES
    }

    /// Instantiates the configured engine with its own flash device.
    pub fn build_engine(&self) -> Box<dyn KvEngine> {
        match self.engine {
            EngineKind::Pink => Box::new(PinkStore::new(self.clone())),
            EngineKind::AnyKey | EngineKind::AnyKeyPlus | EngineKind::AnyKeyNoLog => {
                Box::new(AnyKeyStore::new(self.clone()))
            }
        }
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfigBuilder::default().build()
    }
}

/// Builder for [`DeviceConfig`].
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    capacity_bytes: u64,
    page_size: u32,
    pages_per_block: u32,
    bg_residual_ns: Ns,
    fault: FaultModel,
    dram_bytes: Option<u64>,
    write_buffer_bytes: Option<u64>,
    level_ratio: u64,
    group_pages: u32,
    value_log_bytes: Option<u64>,
    reserve_blocks: u32,
    theta: f64,
    cpu: CpuModel,
    engine: EngineKind,
    key_len: u16,
}

impl Default for DeviceConfigBuilder {
    fn default() -> Self {
        Self {
            capacity_bytes: 256 << 20,
            page_size: 8 << 10,
            pages_per_block: 128,
            bg_residual_ns: 100_000,
            fault: FaultModel::disabled(),
            dram_bytes: None,
            write_buffer_bytes: None,
            level_ratio: 8,
            group_pages: 32,
            value_log_bytes: None,
            reserve_blocks: 6,
            theta: 0.95,
            cpu: CpuModel::default(),
            engine: EngineKind::AnyKeyPlus,
            key_len: 32,
        }
    }
}

impl DeviceConfigBuilder {
    /// Raw flash capacity (default 256 MiB).
    pub fn capacity_bytes(&mut self, bytes: u64) -> &mut Self {
        self.capacity_bytes = bytes;
        self
    }

    /// Flash page size (default 8 KiB; Figure 16 sweeps 4–16 KiB).
    pub fn page_size(&mut self, bytes: u32) -> &mut Self {
        self.page_size = bytes;
        self
    }

    /// Pages per erase block (default 128).
    pub fn pages_per_block(&mut self, pages: u32) -> &mut Self {
        self.pages_per_block = pages;
        self
    }

    /// Residual delay cap a foreground read pays when it suspends in-flight
    /// background work on its chip (default 100 µs). Formerly the hidden
    /// `ANYKEY_BG_RESIDUAL_NS` environment variable; now explicit so a
    /// recorded configuration reproduces the run.
    pub fn bg_residual_ns(&mut self, ns: Ns) -> &mut Self {
        self.bg_residual_ns = ns;
        self
    }

    /// Media fault model (default: disabled, perfect media). A nonzero
    /// model injects deterministic read retries, program failures, and
    /// block-retiring erase failures; it also switches the engines' block
    /// allocators to wear-aware (least-erased-first) allocation.
    pub fn fault(&mut self, fault: FaultModel) -> &mut Self {
        self.fault = fault;
        self
    }

    /// Device DRAM (default: capacity / 1024, the paper's 0.1 %; Figure 15
    /// sweeps 0.05–0.15 %).
    pub fn dram_bytes(&mut self, bytes: u64) -> &mut Self {
        self.dram_bytes = Some(bytes);
        self
    }

    /// Write-buffer share of DRAM (default: half of DRAM).
    pub fn write_buffer_bytes(&mut self, bytes: u64) -> &mut Self {
        self.write_buffer_bytes = Some(bytes);
        self
    }

    /// LSM level size ratio (default 8).
    pub fn level_ratio(&mut self, ratio: u64) -> &mut Self {
        self.level_ratio = ratio;
        self
    }

    /// Pages per data segment group (default 32).
    pub fn group_pages(&mut self, pages: u32) -> &mut Self {
        self.group_pages = pages;
        self
    }

    /// Value-log capacity (default: 25 % of device capacity — the paper
    /// reserves half of the remaining capacity for the log; Figure 19
    /// sweeps 5–15 %). Ignored for PinK; forced to 0 for AnyKey−.
    pub fn value_log_bytes(&mut self, bytes: u64) -> &mut Self {
        self.value_log_bytes = Some(bytes);
        self
    }

    /// Reserved free blocks (over-provisioning headroom).
    pub fn reserve_blocks(&mut self, blocks: u32) -> &mut Self {
        self.reserve_blocks = blocks;
        self
    }

    /// AnyKey+ θ threshold (default 0.95).
    pub fn theta(&mut self, theta: f64) -> &mut Self {
        self.theta = theta;
        self
    }

    /// Controller computation model.
    pub fn cpu(&mut self, cpu: CpuModel) -> &mut Self {
        self.cpu = cpu;
        self
    }

    /// Engine selection.
    pub fn engine(&mut self, engine: EngineKind) -> &mut Self {
        self.engine = engine;
        self
    }

    /// Key length in bytes for synthesized keys.
    pub fn key_len(&mut self, len: u16) -> &mut Self {
        self.key_len = len;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the write buffer does not fit in DRAM, if θ is not in
    /// `(0, 1]`, or if the group does not fit in an erase block.
    pub fn build(&self) -> DeviceConfig {
        let mut flash =
            FlashConfig::paper_shape(self.capacity_bytes, self.page_size, self.pages_per_block);
        flash.bg_residual_ns = self.bg_residual_ns;
        flash.fault = self.fault;
        let dram_bytes = self.dram_bytes.unwrap_or(self.capacity_bytes / 1024);
        // The buffer gets a floor of 128 KiB so that flush granularity is
        // not distorted at scaled-down capacities (the paper's 64 GB
        // device has a multi-MB buffer); the metadata budget is charged
        // at most half of DRAM regardless (see DramBudget usage).
        let write_buffer_bytes = self
            .write_buffer_bytes
            .unwrap_or_else(|| (dram_bytes / 2).max(128 << 10));
        assert!(
            self.theta > 0.0 && self.theta <= 1.0,
            "theta must be in (0,1], got {}",
            self.theta
        );
        assert!(
            self.pages_per_block % self.group_pages == 0,
            "group pages {} must divide pages per block {}",
            self.group_pages,
            self.pages_per_block
        );
        let value_log_bytes = match self.engine {
            EngineKind::Pink | EngineKind::AnyKeyNoLog => 0,
            _ => self.value_log_bytes.unwrap_or(self.capacity_bytes / 4),
        };
        DeviceConfig {
            flash,
            dram_bytes,
            write_buffer_bytes,
            level_ratio: self.level_ratio,
            group_pages: self.group_pages,
            value_log_bytes,
            reserve_blocks: self.reserve_blocks,
            theta: self.theta,
            cpu: self.cpu,
            engine: self.engine,
            key_len: self.key_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_ratios() {
        let cfg = DeviceConfig::default();
        assert_eq!(cfg.capacity_bytes(), 256 << 20);
        // 0.1% DRAM ratio.
        assert_eq!(cfg.dram_bytes, (256 << 20) / 1024);
        assert_eq!(cfg.write_buffer_bytes, (cfg.dram_bytes / 2).max(128 << 10));
        assert_eq!(cfg.group_pages, 32);
    }

    #[test]
    fn pink_has_no_value_log() {
        let cfg = DeviceConfig::builder().engine(EngineKind::Pink).build();
        assert_eq!(cfg.value_log_bytes, 0);
        let cfg = DeviceConfig::builder()
            .engine(EngineKind::AnyKeyNoLog)
            .value_log_bytes(123 << 20)
            .build();
        assert_eq!(cfg.value_log_bytes, 0);
    }

    #[test]
    fn anykey_default_log_is_quarter_capacity() {
        let cfg = DeviceConfig::builder().engine(EngineKind::AnyKey).build();
        assert_eq!(cfg.value_log_bytes, (256 << 20) / 4);
    }

    #[test]
    fn small_dram_gets_buffer_floor() {
        let cfg = DeviceConfig::builder().dram_bytes(64 << 10).build();
        assert_eq!(cfg.write_buffer_bytes, 128 << 10);
    }

    #[test]
    #[should_panic(expected = "group pages")]
    fn misaligned_group_panics() {
        let _ = DeviceConfig::builder().group_pages(48).build();
    }

    #[test]
    fn fault_and_residual_knobs_reach_flash_config() {
        let fault = FaultModel::uniform(9, 10_000);
        let cfg = DeviceConfig::builder()
            .bg_residual_ns(55_000)
            .fault(fault)
            .build();
        assert_eq!(cfg.flash.bg_residual_ns, 55_000);
        assert_eq!(cfg.flash.fault, fault);
        let default = DeviceConfig::default();
        assert_eq!(default.flash.bg_residual_ns, 100_000);
        assert!(!default.flash.fault.is_enabled());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(EngineKind::Pink.label(), "PinK");
        assert_eq!(EngineKind::AnyKeyPlus.label(), "AnyKey+");
        assert_eq!(EngineKind::EVALUATED.len(), 3);
    }
}
