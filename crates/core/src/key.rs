//! Synthesized keys.
//!
//! The workloads of Table 2 fix a key length per workload; what varies is
//! the key's identity. We represent a key as a `(u64 id, length)` pair and
//! synthesize its byte image deterministically: a constant filler prefix
//! followed by the big-endian id, so that **lexicographic byte order equals
//! id order** — the property the LSM levels, range scans and data segment
//! group directories sort by. Hashing (xxHash32) runs over the synthesized
//! bytes, so hash collisions occur organically as they would with real key
//! material.

use crate::hash::xxhash32;
use crate::KvError;
use std::fmt;

/// Maximum supported key length in bytes (Table 2's largest is 94; the
/// paper's analysis goes up to 80-byte keys).
pub const MAX_KEY_LEN: usize = 128;

/// A workload key: a 64-bit id rendered at a fixed byte length.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    id: u64,
    len: u16,
}

impl Key {
    /// Creates a key of `len` bytes from `id`.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::KeyTooLarge`] if `id` cannot be encoded in `len`
    /// bytes (only possible for `len < 8`), and [`KvError::KeyTooLarge`]
    /// with `key_len = 0` is never produced because zero-length keys are
    /// rejected by the panic below.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds [`MAX_KEY_LEN`].
    pub fn new(id: u64, len: u16) -> Result<Self, KvError> {
        assert!(
            (1..=MAX_KEY_LEN as u16).contains(&len),
            "key length {len} out of range 1..={MAX_KEY_LEN}"
        );
        if (len as usize) < 8 && id >> (8 * len as u32) != 0 {
            return Err(KvError::KeyTooLarge { id, key_len: len });
        }
        Ok(Self { id, len })
    }

    /// The key id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Key length in bytes.
    pub fn len(&self) -> u16 {
        self.len
    }

    /// Whether the key is empty (never true for a constructed key).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes the synthesized key bytes into `buf` and returns the filled
    /// prefix.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the key length.
    pub fn bytes<'b>(&self, buf: &'b mut [u8]) -> &'b [u8] {
        let len = self.len as usize;
        let out = &mut buf[..len];
        let id_bytes = self.id.to_be_bytes();
        if len >= 8 {
            out[..len - 8].fill(b'k');
            out[len - 8..].copy_from_slice(&id_bytes);
        } else {
            out.copy_from_slice(&id_bytes[8 - len..]);
        }
        out
    }

    /// The 32-bit xxHash of the synthesized key bytes — the hash AnyKey
    /// sorts data segment groups by and stores in hash lists.
    pub fn hash32(&self) -> u32 {
        let mut buf = [0u8; MAX_KEY_LEN];
        xxhash32(self.bytes(&mut buf), 0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({}/{}B)", self.id, self.len)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_order_matches_id_order() {
        let mut prev = Vec::new();
        for id in [0u64, 1, 2, 255, 256, 65535, 1 << 40, u64::MAX] {
            let k = Key::new(id, 24).unwrap();
            let mut buf = [0u8; MAX_KEY_LEN];
            let bytes = k.bytes(&mut buf).to_vec();
            assert!(bytes > prev || prev.is_empty());
            prev = bytes;
        }
    }

    #[test]
    fn ord_impl_matches_byte_order() {
        let a = Key::new(100, 32).unwrap();
        let b = Key::new(200, 32).unwrap();
        assert!(a < b);
        let mut ba = [0u8; MAX_KEY_LEN];
        let mut bb = [0u8; MAX_KEY_LEN];
        assert!(a.bytes(&mut ba) < b.bytes(&mut bb));
    }

    #[test]
    fn short_keys_reject_large_ids() {
        assert!(Key::new(0xFFFF, 2).is_ok());
        assert!(Key::new(0x1_0000, 2).is_err());
    }

    #[test]
    fn bytes_have_declared_length() {
        for len in [1u16, 7, 8, 9, 16, 48, 94, 128] {
            let k = Key::new(42, len).unwrap();
            let mut buf = [0u8; MAX_KEY_LEN];
            assert_eq!(k.bytes(&mut buf).len(), len as usize);
        }
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        use std::collections::HashSet;
        let hashes: HashSet<u32> = (0..10_000u64)
            .map(|id| Key::new(id, 48).unwrap().hash32())
            .collect();
        // With 10k keys in a 2^32 space, collisions should be absent or
        // nearly so.
        assert!(hashes.len() >= 9_998);
        assert_eq!(
            Key::new(7, 48).unwrap().hash32(),
            Key::new(7, 48).unwrap().hash32()
        );
    }

    #[test]
    fn different_lengths_hash_differently() {
        assert_ne!(
            Key::new(7, 16).unwrap().hash32(),
            Key::new(7, 24).unwrap().hash32()
        );
    }

    #[test]
    #[should_panic(expected = "key length")]
    fn zero_length_panics() {
        let _ = Key::new(0, 0);
    }
}
