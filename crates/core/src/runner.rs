//! The host driver: a closed-loop, queue-depth-64 request pipeline over
//! virtual time (the paper's uNVMe + FIO setup, Section 5.1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use anykey_flash::{FlashCounters, Ns, SECOND};
use anykey_metrics::trace::{sort_events, PhaseHists, TraceEvent};
use anykey_metrics::LatencyHist;
use anykey_workload::Op;

use crate::engine::KvEngine;
use crate::error::KvError;

/// The paper's I/O queue depth: 64 outstanding requests, enough to keep
/// all 64 flash chips busy.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Maximum per-GET flash reads tracked in the Figure 11b histogram.
pub const MAX_TRACKED_READS: usize = 9;

/// Everything measured over one execution stage.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Latencies of GET operations.
    pub reads: LatencyHist,
    /// Latencies of PUT/DELETE operations.
    pub writes: LatencyHist,
    /// Latencies of SCAN operations.
    pub scans: LatencyHist,
    /// Operations executed.
    pub ops: u64,
    /// GETs that found their key.
    pub found: u64,
    /// GETs that missed.
    pub not_found: u64,
    /// Virtual time the stage started at.
    pub start: Ns,
    /// Virtual time the last request completed at.
    pub end: Ns,
    /// Flash traffic of the stage (counters delta).
    pub counters: FlashCounters,
    /// Histogram of flash reads per GET: index *i* counts GETs that needed
    /// *i* flash page reads (the last bucket aggregates ≥ MAX_TRACKED_READS)
    /// — the paper's Figure 11b.
    pub reads_per_get: [u64; MAX_TRACKED_READS + 1],
    /// Per-phase latency histograms over every executed request (one
    /// sample per phase per request); the source of `summary.json`'s
    /// `phase_*` fields. Always on — this is cheap aggregate arithmetic,
    /// unlike raw event tracing.
    pub phases: PhaseHists,
}

impl RunReport {
    /// Operations per virtual second.
    pub fn iops(&self) -> f64 {
        let span = self.end.saturating_sub(self.start).max(1);
        self.ops as f64 * SECOND as f64 / span as f64
    }

    /// Read-retry steps the media needed during the stage (0 on perfect
    /// media; nonzero only under fault injection).
    pub fn media_retries(&self) -> u64 {
        self.counters.total_retry_reads()
    }

    /// Mean flash reads per GET.
    pub fn mean_reads_per_get(&self) -> f64 {
        let total: u64 = self.reads_per_get.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .reads_per_get
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Drives `n_ops` operations from `ops` through `engine` with a closed-loop
/// pipeline of `queue_depth` outstanding requests.
///
/// Issue times are the completion times of freed pipeline slots, so
/// foreground requests queue behind background compaction exactly as they
/// would on hardware.
///
/// # Errors
///
/// Returns [`KvError::DeviceFull`] if the device fills mid-run.
pub fn run(
    engine: &mut dyn KvEngine,
    ops: impl Iterator<Item = Op>,
    n_ops: u64,
    queue_depth: usize,
) -> Result<RunReport, KvError> {
    run_inner(engine, ops, n_ops, queue_depth, None)
}

/// Like [`run`], but with trace-event recording enabled on the engine for
/// the duration: returns the report plus the merged event stream — flash
/// op lifecycles and engine spans from the engine, one request event per
/// executed operation from the pipeline — in canonical timestamp order.
///
/// Tracing is pure observation (it never touches the virtual clock), so
/// the report is identical to what [`run`] would have produced. Engines
/// built without the `trace` cargo feature yield request events only.
///
/// # Errors
///
/// Returns [`KvError::DeviceFull`] if the device fills mid-run.
pub fn run_traced(
    engine: &mut dyn KvEngine,
    ops: impl Iterator<Item = Op>,
    n_ops: u64,
    queue_depth: usize,
) -> Result<(RunReport, Vec<TraceEvent>), KvError> {
    engine.set_tracing(true);
    let mut events = Vec::new();
    let report = run_inner(engine, ops, n_ops, queue_depth, Some(&mut events));
    let mut merged = engine.take_trace();
    engine.set_tracing(false);
    let report = report?;
    merged.append(&mut events);
    sort_events(&mut merged);
    Ok((report, merged))
}

fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Get { .. } => "get",
        Op::Put { .. } => "put",
        Op::Delete { .. } => "delete",
        Op::Scan { .. } => "scan",
    }
}

fn run_inner(
    engine: &mut dyn KvEngine,
    ops: impl Iterator<Item = Op>,
    n_ops: u64,
    queue_depth: usize,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> Result<RunReport, KvError> {
    let start = engine.horizon();
    let mut report = RunReport {
        reads: LatencyHist::new(),
        writes: LatencyHist::new(),
        scans: LatencyHist::new(),
        ops: 0,
        found: 0,
        not_found: 0,
        start,
        end: start,
        counters: FlashCounters::new(),
        reads_per_get: [0; MAX_TRACKED_READS + 1],
        phases: PhaseHists::new(),
    };
    let counters_before = engine.counters();
    let mut inflight: BinaryHeap<Reverse<Ns>> = BinaryHeap::new();

    for op in ops.take(n_ops as usize) {
        let at = if inflight.len() >= queue_depth {
            inflight
                .pop()
                .ok_or(KvError::Internal {
                    context: "full pipeline with no in-flight request",
                })?
                .0
        } else {
            start
        };
        let outcome = engine.execute(&op, at)?;
        let latency = outcome.latency();
        match op {
            Op::Get { .. } => {
                report.reads.record(latency);
                if outcome.found {
                    report.found += 1;
                } else {
                    report.not_found += 1;
                }
                let bucket = (outcome.flash_reads as usize).min(MAX_TRACKED_READS);
                report.reads_per_get[bucket] += 1;
            }
            Op::Put { .. } | Op::Delete { .. } => report.writes.record(latency),
            Op::Scan { .. } => report.scans.record(latency),
        }
        report.phases.record(&outcome.phases);
        if let Some(events) = trace.as_deref_mut() {
            events.push(TraceEvent::Request {
                op: op_name(&op).to_string(),
                seq: report.ops,
                issued: outcome.issued_at,
                done: outcome.done_at,
                found: outcome.found,
                flash_reads: outcome.flash_reads,
                phases: outcome.phases,
            });
        }
        report.ops += 1;
        report.end = report.end.max(outcome.done_at);
        inflight.push(Reverse(outcome.done_at));
    }
    report.counters = engine.counters().since(&counters_before);
    Ok(report)
}

/// The warm-up stage (paper Section 5.1): inserts every key of the
/// workload once (shuffled), bringing the device to steady state, then
/// resets the flash counters.
///
/// # Errors
///
/// Returns [`KvError::DeviceFull`] if the keyspace does not fit the device.
pub fn warm_up(
    engine: &mut dyn KvEngine,
    spec: anykey_workload::WorkloadSpec,
    keyspace: u64,
    seed: u64,
) -> Result<(), KvError> {
    let fill = anykey_workload::ops::fill_ops(spec, keyspace, seed);
    run(engine, fill, keyspace, DEFAULT_QUEUE_DEPTH)?;
    engine.reset_counters();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, EngineKind};
    use anykey_workload::{spec, OpStreamBuilder};

    #[test]
    fn pipeline_reports_iops_and_latencies() {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::AnyKey)
            .key_len(20)
            .build()
            .build_engine();
        let w = spec::by_name("Dedup").unwrap();
        warm_up(dev.as_mut(), w, 20_000, 1).unwrap();
        let ops = OpStreamBuilder::new(w, 20_000).seed(2).build();
        let report = run(dev.as_mut(), ops, 5_000, DEFAULT_QUEUE_DEPTH).unwrap();
        assert_eq!(report.ops, 5_000);
        assert!(report.iops() > 0.0);
        assert!(report.reads.count() > 3_000);
        assert!(report.writes.count() > 500);
        // Warm-up inserted every key: GETs should overwhelmingly hit.
        assert!(report.found > report.not_found * 50);
        assert!(report.end > report.start);
    }

    #[test]
    fn phase_breakdowns_cover_every_request() {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::AnyKey)
            .key_len(20)
            .build()
            .build_engine();
        let w = spec::by_name("Dedup").unwrap();
        warm_up(dev.as_mut(), w, 10_000, 5).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(6).build();
        let report = run(dev.as_mut(), ops, 2_000, DEFAULT_QUEUE_DEPTH).unwrap();
        // One sample per phase per request, and total phase time equals
        // total latency (the breakdown is exact, not approximate).
        for (_, h) in report.phases.named() {
            assert_eq!(h.count(), report.ops);
        }
        let latency_total = report.reads.total() + report.writes.total() + report.scans.total();
        let phase_total: u64 = report.phases.named().iter().map(|(_, h)| h.total()).sum();
        assert_eq!(phase_total, latency_total);
    }

    #[test]
    fn per_op_phases_sum_to_latency() {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::Pink)
            .key_len(20)
            .build()
            .build_engine();
        let w = spec::by_name("Dedup").unwrap();
        warm_up(dev.as_mut(), w, 5_000, 7).unwrap();
        let ops = OpStreamBuilder::new(w, 5_000).seed(8).build();
        for op in ops.take(500) {
            let at = dev.horizon();
            let outcome = dev.execute(&op, at).unwrap();
            assert_eq!(
                outcome.phases.total(),
                outcome.latency(),
                "phase fields must sum exactly to the op latency"
            );
        }
    }

    #[test]
    fn run_traced_report_matches_untraced_run() {
        let build = || {
            DeviceConfig::builder()
                .capacity_bytes(64 << 20)
                .engine(EngineKind::AnyKey)
                .key_len(20)
                .build()
                .build_engine()
        };
        let w = spec::by_name("Dedup").unwrap();
        let mut a = build();
        warm_up(a.as_mut(), w, 10_000, 9).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(10).build();
        let plain = run(a.as_mut(), ops, 1_000, DEFAULT_QUEUE_DEPTH).unwrap();

        let mut b = build();
        warm_up(b.as_mut(), w, 10_000, 9).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(10).build();
        let (traced, events) = run_traced(b.as_mut(), ops, 1_000, DEFAULT_QUEUE_DEPTH).unwrap();

        // Tracing is pure observation: identical timings either way.
        assert_eq!(traced.ops, plain.ops);
        assert_eq!(traced.start, plain.start);
        assert_eq!(traced.end, plain.end);
        assert_eq!(traced.reads.total(), plain.reads.total());
        assert_eq!(traced.writes.total(), plain.writes.total());

        // One request event per op, and the stream is timestamp-sorted.
        let requests = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Request { .. }))
            .count() as u64;
        assert_eq!(requests, traced.ops);
        assert!(events.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        // With the trace feature on, flash-op events appear too.
        #[cfg(feature = "trace")]
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::FlashOp { .. })));
    }

    #[test]
    fn reads_per_get_histogram_accumulates() {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::AnyKeyPlus)
            .key_len(48)
            .build()
            .build_engine();
        let w = spec::by_name("ZippyDB").unwrap();
        warm_up(dev.as_mut(), w, 10_000, 3).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(4).build();
        let report = run(dev.as_mut(), ops, 2_000, DEFAULT_QUEUE_DEPTH).unwrap();
        let total: u64 = report.reads_per_get.iter().sum();
        assert_eq!(total, report.found + report.not_found);
        assert!(report.mean_reads_per_get() < MAX_TRACKED_READS as f64);
    }
}
