//! The host driver: a closed-loop, queue-depth-64 request pipeline over
//! virtual time (the paper's uNVMe + FIO setup, Section 5.1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use anykey_flash::{FlashCounters, Ns, OpCause, SECOND};
use anykey_metrics::timeline::{StateSample, WafPoint};
use anykey_metrics::trace::{sort_events, PhaseHists, TraceEvent};
use anykey_metrics::LatencyHist;
use anykey_workload::Op;

use crate::engine::KvEngine;
use crate::error::KvError;

/// The paper's I/O queue depth: 64 outstanding requests, enough to keep
/// all 64 flash chips busy.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Maximum per-GET flash reads tracked in the Figure 11b histogram.
pub const MAX_TRACKED_READS: usize = 9;

/// Target number of points on the always-on cumulative-WAF curve every
/// run records (op-stride sampled, so the cost is ~64 counter snapshots
/// per stage regardless of run length).
pub const WAF_CURVE_POINTS: u64 = 64;

/// Configuration of periodic state sampling: the virtual-time interval
/// plus the two workload constants the cumulative-WAF computation needs
/// (so a sample's `cum_waf` uses exactly the arithmetic `summary.json`'s
/// `waf` field uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleCfg {
    /// Virtual ns between samples (must be > 0 to sample).
    pub interval_ns: Ns,
    /// Logical bytes one written key-value pair contributes.
    pub pair_bytes: u64,
    /// Usable payload bytes per flash page.
    pub page_payload: u64,
}

/// Everything measured over one execution stage.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Latencies of GET operations.
    pub reads: LatencyHist,
    /// Latencies of PUT/DELETE operations.
    pub writes: LatencyHist,
    /// Latencies of SCAN operations.
    pub scans: LatencyHist,
    /// Operations executed.
    pub ops: u64,
    /// GETs that found their key.
    pub found: u64,
    /// GETs that missed.
    pub not_found: u64,
    /// Virtual time the stage started at.
    pub start: Ns,
    /// Virtual time the last request completed at.
    pub end: Ns,
    /// Flash traffic of the stage (counters delta).
    pub counters: FlashCounters,
    /// Histogram of flash reads per GET: index *i* counts GETs that needed
    /// *i* flash page reads (the last bucket aggregates ≥ MAX_TRACKED_READS)
    /// — the paper's Figure 11b.
    pub reads_per_get: [u64; MAX_TRACKED_READS + 1],
    /// Per-phase latency histograms over every executed request (one
    /// sample per phase per request); the source of `summary.json`'s
    /// `phase_*` fields. Always on — this is cheap aggregate arithmetic,
    /// unlike raw event tracing.
    pub phases: PhaseHists,
    /// Op-stride cumulative-WAF curve (~[`WAF_CURVE_POINTS`] points plus a
    /// final point that matches `counters` exactly). Always on — it feeds
    /// the steady-state fields of `summary.json` whether or not timeline
    /// export is enabled, keeping the summary identical either way.
    pub waf_curve: Vec<WafPoint>,
}

impl RunReport {
    /// Operations per virtual second.
    pub fn iops(&self) -> f64 {
        let span = self.end.saturating_sub(self.start).max(1);
        self.ops as f64 * SECOND as f64 / span as f64
    }

    /// Read-retry steps the media needed during the stage (0 on perfect
    /// media; nonzero only under fault injection).
    pub fn media_retries(&self) -> u64 {
        self.counters.total_retry_reads()
    }

    /// Mean flash reads per GET.
    pub fn mean_reads_per_get(&self) -> f64 {
        let total: u64 = self.reads_per_get.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .reads_per_get
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Drives `n_ops` operations from `ops` through `engine` with a closed-loop
/// pipeline of `queue_depth` outstanding requests.
///
/// Issue times are the completion times of freed pipeline slots, so
/// foreground requests queue behind background compaction exactly as they
/// would on hardware.
///
/// # Errors
///
/// Returns [`KvError::DeviceFull`] if the device fills mid-run.
pub fn run(
    engine: &mut dyn KvEngine,
    ops: impl Iterator<Item = Op>,
    n_ops: u64,
    queue_depth: usize,
) -> Result<RunReport, KvError> {
    run_inner(engine, ops, n_ops, queue_depth, None, None)
}

/// Like [`run`], but additionally snapshots a [`StateSample`] at every
/// `cfg.interval_ns` of virtual time (plus one at the start and one at the
/// end of the stage), returning the report and the sample series.
///
/// Sampling is pure observation — it reads engine state and counters but
/// never touches the virtual clock, so the report is identical to what
/// [`run`] would have produced.
///
/// # Errors
///
/// Returns [`KvError::DeviceFull`] if the device fills mid-run.
pub fn run_sampled(
    engine: &mut dyn KvEngine,
    ops: impl Iterator<Item = Op>,
    n_ops: u64,
    queue_depth: usize,
    cfg: &SampleCfg,
) -> Result<(RunReport, Vec<StateSample>), KvError> {
    let mut samples = Vec::new();
    let report = run_inner(
        engine,
        ops,
        n_ops,
        queue_depth,
        None,
        Some((cfg, &mut samples)),
    )?;
    Ok((report, samples))
}

/// [`run_traced`] and [`run_sampled`] combined: trace-event recording and
/// periodic state sampling over the same stage.
///
/// # Errors
///
/// Returns [`KvError::DeviceFull`] if the device fills mid-run.
pub fn run_traced_sampled(
    engine: &mut dyn KvEngine,
    ops: impl Iterator<Item = Op>,
    n_ops: u64,
    queue_depth: usize,
    cfg: &SampleCfg,
) -> Result<(RunReport, Vec<TraceEvent>, Vec<StateSample>), KvError> {
    engine.set_tracing(true);
    let mut events = Vec::new();
    let mut samples = Vec::new();
    let report = run_inner(
        engine,
        ops,
        n_ops,
        queue_depth,
        Some(&mut events),
        Some((cfg, &mut samples)),
    );
    let mut merged = engine.take_trace();
    engine.set_tracing(false);
    let report = report?;
    merged.append(&mut events);
    sort_events(&mut merged);
    Ok((report, merged, samples))
}

/// Like [`run`], but with trace-event recording enabled on the engine for
/// the duration: returns the report plus the merged event stream — flash
/// op lifecycles and engine spans from the engine, one request event per
/// executed operation from the pipeline — in canonical timestamp order.
///
/// Tracing is pure observation (it never touches the virtual clock), so
/// the report is identical to what [`run`] would have produced. Engines
/// built without the `trace` cargo feature yield request events only.
///
/// # Errors
///
/// Returns [`KvError::DeviceFull`] if the device fills mid-run.
pub fn run_traced(
    engine: &mut dyn KvEngine,
    ops: impl Iterator<Item = Op>,
    n_ops: u64,
    queue_depth: usize,
) -> Result<(RunReport, Vec<TraceEvent>), KvError> {
    engine.set_tracing(true);
    let mut events = Vec::new();
    let report = run_inner(engine, ops, n_ops, queue_depth, Some(&mut events), None);
    let mut merged = engine.take_trace();
    engine.set_tracing(false);
    let report = report?;
    merged.append(&mut events);
    sort_events(&mut merged);
    Ok((report, merged))
}

fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Get { .. } => "get",
        Op::Put { .. } => "put",
        Op::Delete { .. } => "delete",
        Op::Scan { .. } => "scan",
    }
}

/// The interval state of periodic sampling inside [`run_inner`]: the next
/// grid boundary plus the per-interval op count and latency histograms
/// that reset on every emitted sample.
struct Sampler<'a> {
    cfg: &'a SampleCfg,
    out: &'a mut Vec<StateSample>,
    next_ts: Ns,
    interval_start: Ns,
    interval_ops: u64,
    interval_reads: LatencyHist,
    interval_writes: LatencyHist,
    seq: u64,
}

impl Sampler<'_> {
    /// Emits one sample at virtual time `ts`: engine state from
    /// [`KvEngine::sample_state`], cumulative traffic as the counter delta
    /// since the stage began, and the interval metrics gathered since the
    /// previous sample (which this call resets).
    fn emit(&mut self, engine: &dyn KvEngine, before: &FlashCounters, report: &RunReport, ts: Ns) {
        let delta = engine.counters().since(before);
        let mut s = engine.sample_state();
        s.seq = self.seq;
        s.ts_ns = ts;
        s.interval_ops = self.interval_ops;
        let span = ts.saturating_sub(self.interval_start).max(1);
        s.interval_iops = self.interval_ops as f64 * SECOND as f64 / span as f64;
        s.interval_read_p99_ns = self.interval_reads.p99();
        s.interval_write_p99_ns = self.interval_writes.p99();
        s.host_reads = delta.reads(OpCause::HostRead);
        s.host_writes = delta.writes(OpCause::HostWrite);
        s.meta_reads = delta.reads(OpCause::MetaRead);
        s.meta_writes = delta.writes(OpCause::MetaWrite);
        s.comp_reads = delta.reads(OpCause::CompactionRead);
        s.comp_writes = delta.writes(OpCause::CompactionWrite);
        s.gc_reads = delta.reads(OpCause::GcRead);
        s.gc_writes = delta.writes(OpCause::GcWrite);
        s.log_reads = delta.reads(OpCause::LogRead);
        s.log_writes = delta.writes(OpCause::LogWrite);
        s.erases = delta.erases();
        s.cum_waf = waf_from(
            delta.total_writes(),
            report.writes.count(),
            self.cfg.pair_bytes,
            self.cfg.page_payload,
        );
        let read_ops = report.reads.count();
        s.cum_raf = if read_ops > 0 {
            delta.total_reads() as f64 / read_ops as f64
        } else {
            0.0
        };
        self.seq += 1;
        self.interval_start = ts;
        self.interval_ops = 0;
        self.interval_reads = LatencyHist::new();
        self.interval_writes = LatencyHist::new();
        self.out.push(s);
    }
}

/// Cumulative write amplification with exactly the arithmetic the bench
/// scheduler uses for `summary.json`'s `waf` field: flash programs over
/// the minimal pages for `write_ops` pairs of `pair_bytes` logical bytes.
/// Zero before the first measured write (the scheduler substitutes the
/// fill's live bytes there; a mid-run sample has no such substitute).
pub fn waf_from(flash_writes: u64, write_ops: u64, pair_bytes: u64, page_payload: u64) -> f64 {
    if write_ops == 0 {
        return 0.0;
    }
    let payload = page_payload.max(1);
    let denom = (write_ops * pair_bytes).div_ceil(payload).max(1);
    flash_writes as f64 / denom as f64
}

fn run_inner(
    engine: &mut dyn KvEngine,
    ops: impl Iterator<Item = Op>,
    n_ops: u64,
    queue_depth: usize,
    mut trace: Option<&mut Vec<TraceEvent>>,
    sampler: Option<(&SampleCfg, &mut Vec<StateSample>)>,
) -> Result<RunReport, KvError> {
    let start = engine.horizon();
    let mut report = RunReport {
        reads: LatencyHist::new(),
        writes: LatencyHist::new(),
        scans: LatencyHist::new(),
        ops: 0,
        found: 0,
        not_found: 0,
        start,
        end: start,
        counters: FlashCounters::new(),
        reads_per_get: [0; MAX_TRACKED_READS + 1],
        phases: PhaseHists::new(),
        waf_curve: Vec::new(),
    };
    let counters_before = engine.counters();
    let mut inflight: BinaryHeap<Reverse<Ns>> = BinaryHeap::new();
    let curve_stride = n_ops.div_ceil(WAF_CURVE_POINTS).max(1);
    let mut sampler = sampler.map(|(cfg, out)| Sampler {
        cfg,
        out,
        next_ts: start + cfg.interval_ns.max(1),
        interval_start: start,
        interval_ops: 0,
        interval_reads: LatencyHist::new(),
        interval_writes: LatencyHist::new(),
        seq: 0,
    });
    if let Some(s) = sampler.as_mut() {
        // The seq-0 sample captures the post-warm-up baseline state.
        s.emit(&*engine, &counters_before, &report, start);
    }

    for op in ops.take(n_ops as usize) {
        let at = if inflight.len() >= queue_depth {
            inflight
                .pop()
                .ok_or(KvError::Internal {
                    context: "full pipeline with no in-flight request",
                })?
                .0
        } else {
            start
        };
        let outcome = engine.execute(&op, at)?;
        let latency = outcome.latency();
        match op {
            Op::Get { .. } => {
                report.reads.record(latency);
                if outcome.found {
                    report.found += 1;
                } else {
                    report.not_found += 1;
                }
                let bucket = (outcome.flash_reads as usize).min(MAX_TRACKED_READS);
                report.reads_per_get[bucket] += 1;
            }
            Op::Put { .. } | Op::Delete { .. } => report.writes.record(latency),
            Op::Scan { .. } => report.scans.record(latency),
        }
        report.phases.record(&outcome.phases);
        if let Some(events) = trace.as_deref_mut() {
            events.push(TraceEvent::Request {
                op: op_name(&op).to_string(),
                seq: report.ops,
                issued: outcome.issued_at,
                done: outcome.done_at,
                found: outcome.found,
                flash_reads: outcome.flash_reads,
                phases: outcome.phases,
            });
        }
        report.ops += 1;
        report.end = report.end.max(outcome.done_at);
        inflight.push(Reverse(outcome.done_at));
        if report.ops % curve_stride == 0 {
            report.waf_curve.push(WafPoint {
                ts_ns: report.end,
                write_ops: report.writes.count(),
                flash_writes: engine.counters().since(&counters_before).total_writes(),
            });
        }
        if let Some(s) = sampler.as_mut() {
            match op {
                Op::Get { .. } => s.interval_reads.record(latency),
                Op::Put { .. } | Op::Delete { .. } => s.interval_writes.record(latency),
                Op::Scan { .. } => {}
            }
            s.interval_ops += 1;
            while s.next_ts <= report.end {
                let ts = s.next_ts;
                s.emit(&*engine, &counters_before, &report, ts);
                s.next_ts = ts + s.cfg.interval_ns.max(1);
            }
        }
    }
    report.counters = engine.counters().since(&counters_before);
    if report.ops > 0 {
        let last = WafPoint {
            ts_ns: report.end,
            write_ops: report.writes.count(),
            flash_writes: report.counters.total_writes(),
        };
        if report.waf_curve.last() != Some(&last) {
            report.waf_curve.push(last);
        }
    }
    if let Some(s) = sampler.as_mut() {
        // A closing sample pinned to the stage end, so the series' final
        // cum_waf matches the report's counters exactly.
        if s.out.last().map(|p| p.ts_ns) != Some(report.end) {
            s.emit(&*engine, &counters_before, &report, report.end);
        }
    }
    Ok(report)
}

/// The warm-up stage (paper Section 5.1): inserts every key of the
/// workload once (shuffled), bringing the device to steady state, then
/// resets the flash counters.
///
/// # Errors
///
/// Returns [`KvError::DeviceFull`] if the keyspace does not fit the device.
pub fn warm_up(
    engine: &mut dyn KvEngine,
    spec: anykey_workload::WorkloadSpec,
    keyspace: u64,
    seed: u64,
) -> Result<(), KvError> {
    let fill = anykey_workload::ops::fill_ops(spec, keyspace, seed);
    run(engine, fill, keyspace, DEFAULT_QUEUE_DEPTH)?;
    engine.reset_counters();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, EngineKind};
    use anykey_workload::{spec, OpStreamBuilder};

    #[test]
    fn pipeline_reports_iops_and_latencies() {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::AnyKey)
            .key_len(20)
            .build()
            .build_engine();
        let w = spec::by_name("Dedup").unwrap();
        warm_up(dev.as_mut(), w, 20_000, 1).unwrap();
        let ops = OpStreamBuilder::new(w, 20_000).seed(2).build();
        let report = run(dev.as_mut(), ops, 5_000, DEFAULT_QUEUE_DEPTH).unwrap();
        assert_eq!(report.ops, 5_000);
        assert!(report.iops() > 0.0);
        assert!(report.reads.count() > 3_000);
        assert!(report.writes.count() > 500);
        // Warm-up inserted every key: GETs should overwhelmingly hit.
        assert!(report.found > report.not_found * 50);
        assert!(report.end > report.start);
    }

    #[test]
    fn phase_breakdowns_cover_every_request() {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::AnyKey)
            .key_len(20)
            .build()
            .build_engine();
        let w = spec::by_name("Dedup").unwrap();
        warm_up(dev.as_mut(), w, 10_000, 5).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(6).build();
        let report = run(dev.as_mut(), ops, 2_000, DEFAULT_QUEUE_DEPTH).unwrap();
        // One sample per phase per request, and total phase time equals
        // total latency (the breakdown is exact, not approximate).
        for (_, h) in report.phases.named() {
            assert_eq!(h.count(), report.ops);
        }
        let latency_total = report.reads.total() + report.writes.total() + report.scans.total();
        let phase_total: u64 = report.phases.named().iter().map(|(_, h)| h.total()).sum();
        assert_eq!(phase_total, latency_total);
    }

    #[test]
    fn per_op_phases_sum_to_latency() {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::Pink)
            .key_len(20)
            .build()
            .build_engine();
        let w = spec::by_name("Dedup").unwrap();
        warm_up(dev.as_mut(), w, 5_000, 7).unwrap();
        let ops = OpStreamBuilder::new(w, 5_000).seed(8).build();
        for op in ops.take(500) {
            let at = dev.horizon();
            let outcome = dev.execute(&op, at).unwrap();
            assert_eq!(
                outcome.phases.total(),
                outcome.latency(),
                "phase fields must sum exactly to the op latency"
            );
        }
    }

    #[test]
    fn run_traced_report_matches_untraced_run() {
        let build = || {
            DeviceConfig::builder()
                .capacity_bytes(64 << 20)
                .engine(EngineKind::AnyKey)
                .key_len(20)
                .build()
                .build_engine()
        };
        let w = spec::by_name("Dedup").unwrap();
        let mut a = build();
        warm_up(a.as_mut(), w, 10_000, 9).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(10).build();
        let plain = run(a.as_mut(), ops, 1_000, DEFAULT_QUEUE_DEPTH).unwrap();

        let mut b = build();
        warm_up(b.as_mut(), w, 10_000, 9).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(10).build();
        let (traced, events) = run_traced(b.as_mut(), ops, 1_000, DEFAULT_QUEUE_DEPTH).unwrap();

        // Tracing is pure observation: identical timings either way.
        assert_eq!(traced.ops, plain.ops);
        assert_eq!(traced.start, plain.start);
        assert_eq!(traced.end, plain.end);
        assert_eq!(traced.reads.total(), plain.reads.total());
        assert_eq!(traced.writes.total(), plain.writes.total());

        // One request event per op, and the stream is timestamp-sorted.
        let requests = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Request { .. }))
            .count() as u64;
        assert_eq!(requests, traced.ops);
        assert!(events.windows(2).all(|w| w[0].ts() <= w[1].ts()));
        // With the trace feature on, flash-op events appear too.
        #[cfg(feature = "trace")]
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::FlashOp { .. })));
    }

    #[test]
    fn sampled_run_is_pure_observation_and_curve_matches_counters() {
        let build = || {
            DeviceConfig::builder()
                .capacity_bytes(64 << 20)
                .engine(EngineKind::AnyKey)
                .key_len(20)
                .build()
                .build_engine()
        };
        let w = spec::by_name("Dedup").unwrap();
        let mut a = build();
        warm_up(a.as_mut(), w, 10_000, 9).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(10).build();
        let plain = run(a.as_mut(), ops, 2_000, DEFAULT_QUEUE_DEPTH).unwrap();

        let mut b = build();
        warm_up(b.as_mut(), w, 10_000, 9).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(10).build();
        let cfg = SampleCfg {
            interval_ns: 50_000,
            pair_bytes: 1_044,
            page_payload: 32_704,
        };
        let (sampled, samples) =
            run_sampled(b.as_mut(), ops, 2_000, DEFAULT_QUEUE_DEPTH, &cfg).unwrap();

        // Sampling is pure observation: identical timings and counters.
        assert_eq!(sampled.ops, plain.ops);
        assert_eq!(sampled.end, plain.end);
        assert_eq!(sampled.reads.total(), plain.reads.total());
        assert_eq!(sampled.counters, plain.counters);
        assert_eq!(sampled.waf_curve, plain.waf_curve);

        // Baseline + closing samples, grid in between, monotone seq/ts.
        assert!(samples.len() >= 3, "expected a grid of samples");
        assert_eq!(samples[0].seq, 0);
        assert_eq!(samples[0].ts_ns, sampled.start);
        assert!(samples
            .windows(2)
            .all(|w| w[0].seq + 1 == w[1].seq && w[0].ts_ns <= w[1].ts_ns));
        let last = samples.last().unwrap();
        assert_eq!(last.ts_ns, sampled.end);
        // The closing sample's cumulative traffic equals the report delta
        // bit-for-bit, so its WAF is the summary's WAF.
        assert_eq!(
            last.host_writes
                + last.meta_writes
                + last.comp_writes
                + last.gc_writes
                + last.log_writes,
            sampled.counters.total_writes()
        );
        assert_eq!(
            last.cum_waf,
            waf_from(
                sampled.counters.total_writes(),
                sampled.writes.count(),
                cfg.pair_bytes,
                cfg.page_payload
            )
        );

        // Cumulative per-cause counters are monotone non-decreasing.
        for w in samples.windows(2) {
            let (p, c) = (&w[0], &w[1]);
            assert!(c.host_reads >= p.host_reads && c.host_writes >= p.host_writes);
            assert!(c.comp_writes >= p.comp_writes && c.gc_writes >= p.gc_writes);
            assert!(c.log_writes >= p.log_writes && c.erases >= p.erases);
        }

        // The always-on WAF curve closes on the report counters too.
        let tail = plain.waf_curve.last().unwrap();
        assert_eq!(tail.flash_writes, plain.counters.total_writes());
        assert_eq!(tail.write_ops, plain.writes.count());
        assert_eq!(tail.ts_ns, plain.end);
    }

    #[test]
    fn reads_per_get_histogram_accumulates() {
        let mut dev = DeviceConfig::builder()
            .capacity_bytes(64 << 20)
            .engine(EngineKind::AnyKeyPlus)
            .key_len(48)
            .build()
            .build_engine();
        let w = spec::by_name("ZippyDB").unwrap();
        warm_up(dev.as_mut(), w, 10_000, 3).unwrap();
        let ops = OpStreamBuilder::new(w, 10_000).seed(4).build();
        let report = run(dev.as_mut(), ops, 2_000, DEFAULT_QUEUE_DEPTH).unwrap();
        let total: u64 = report.reads_per_get.iter().sum();
        assert_eq!(total, report.found + report.not_found);
        assert!(report.mean_reads_per_get() < MAX_TRACKED_READS as f64);
    }
}
