//! Analytic metadata-size model (the paper's Table 1 and Section 6.8).
//!
//! Given a device capacity, a DRAM budget and a workload's key/value sizes,
//! these closed-form formulas compute how much metadata PinK and AnyKey
//! need, assuming the device is full of unique KV pairs. The Table 1 and
//! §6.8 experiments print these numbers directly; small-scale empirical
//! checks against the real engines live in the integration tests.

/// Inputs to the metadata model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaModel {
    /// Device capacity in bytes (the paper uses 64 GB; §6.8 scales to
    /// 4 TB).
    pub capacity_bytes: u64,
    /// Device DRAM in bytes (64 MB for 64 GB; 4 GB for 4 TB).
    pub dram_bytes: u64,
    /// Usable page payload in bytes.
    pub page_payload: u64,
    /// Pages per data segment group (AnyKey).
    pub group_pages: u64,
    /// Key size in bytes.
    pub key_len: u64,
    /// Value size in bytes.
    pub value_len: u64,
}

/// The metadata footprint of both designs for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetaSizes {
    /// Number of KV pairs the full device holds.
    pub pairs: u64,
    /// PinK: total meta-segment bytes (`(key + 6) × pairs`).
    pub pink_meta_segments: u64,
    /// PinK: level-list bytes (one `(key + 5)` entry per page-sized
    /// segment).
    pub pink_level_lists: u64,
    /// AnyKey: level-list bytes (one group-granular entry per group).
    pub anykey_level_lists: u64,
    /// AnyKey: hash-list bytes actually kept (fills remaining DRAM, capped
    /// at 4 bytes × pairs).
    pub anykey_hash_lists: u64,
}

impl MetaSizes {
    /// PinK's total metadata demand (Table 1's "Sum" column).
    pub fn pink_sum(&self) -> u64 {
        self.pink_meta_segments + self.pink_level_lists
    }

    /// AnyKey's total DRAM metadata (never exceeds the DRAM budget by
    /// construction).
    pub fn anykey_sum(&self) -> u64 {
        self.anykey_level_lists + self.anykey_hash_lists
    }
}

impl MetaModel {
    /// The paper's default model shape for a capacity, with the standard
    /// 0.1 % DRAM ratio, 8 KiB pages and 32-page groups.
    pub fn paper(capacity_bytes: u64, key_len: u64, value_len: u64) -> Self {
        Self {
            capacity_bytes,
            dram_bytes: capacity_bytes / 1024,
            page_payload: (8 << 10) - 64,
            group_pages: 32,
            key_len,
            value_len,
        }
    }

    /// Evaluates the model.
    pub fn sizes(&self) -> MetaSizes {
        let pair = self.key_len + self.value_len;
        let pairs = self.capacity_bytes / pair;

        // PinK: one (key, PPA) entry per pair, packed into page-sized meta
        // segments; one level-list entry per segment.
        let pink_meta_segments = pairs * (self.key_len + 6);
        let segments = pink_meta_segments.div_ceil(self.page_payload);
        let pink_level_lists = segments * (self.key_len + 5);

        // AnyKey: groups of `group_pages` pages; one level-list entry per
        // group: smallest key + PPA + 2 B prefix and 2 collision bits per
        // page + bookkeeping.
        let group_bytes = self.group_pages * self.page_payload;
        let groups = self.capacity_bytes.div_ceil(group_bytes);
        let entry = self.key_len + 4 + 2 * self.group_pages + self.group_pages.div_ceil(4) + 16;
        let anykey_level_lists = groups * entry;

        // Hash lists fill whatever DRAM remains (Section 4.2).
        let hash_full = pairs * 4;
        let remaining = self.dram_bytes.saturating_sub(anykey_level_lists);
        let anykey_hash_lists = hash_full.min(remaining);

        MetaSizes {
            pairs,
            pink_meta_segments,
            pink_level_lists,
            anykey_level_lists,
            anykey_hash_lists,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    /// Table 1's qualitative claims at the paper's scale (64 GB device,
    /// 64 MB DRAM, v/k ∈ {4.0, 2.0, 1.0}).
    #[test]
    fn table1_pink_grows_as_vk_shrinks_anykey_stays_capped() {
        let dram = 64 * (1 << 20);
        let rows = [(160u64, 40u64), (120, 60), (80, 80)];
        let mut prev_pink = 0;
        for (v, k) in rows {
            let m = MetaModel {
                dram_bytes: dram,
                ..MetaModel::paper(64 * GB, k, v)
            };
            let s = m.sizes();
            // PinK's metadata demand exceeds DRAM by orders of magnitude
            // and grows as keys get relatively larger.
            assert!(
                s.pink_sum() > 4 * dram,
                "PinK sum {} too small",
                s.pink_sum()
            );
            assert!(s.pink_sum() > prev_pink);
            prev_pink = s.pink_sum();
            // AnyKey always fits DRAM.
            assert!(
                s.anykey_sum() <= dram,
                "AnyKey sum {} exceeds DRAM {}",
                s.anykey_sum(),
                dram
            );
            // And its level lists alone leave room for hash lists
            // (paper: 29-38 MB of 64 MB).
            assert!(s.anykey_level_lists < dram * 3 / 4);
        }
    }

    /// Section 6.8: a 4 TB device running Crypto1 — PinK's metadata
    /// explodes to tens of GB while AnyKey's stays within a
    /// proportionally-scaled DRAM (4 GB).
    #[test]
    fn section_6_8_scalability() {
        let m = MetaModel {
            dram_bytes: 4 * GB,
            ..MetaModel::paper(4096 * GB, 76, 50)
        };
        let s = m.sizes();
        assert!(
            s.pink_sum() > 100 * GB,
            "PinK demand at 4TB should be far beyond any realistic DRAM"
        );
        assert!(s.anykey_sum() <= 4 * GB);
        assert!(s.anykey_level_lists < 4 * GB);
    }

    #[test]
    fn high_vk_pink_metadata_is_modest() {
        // KVSSD (16B/4096B): PinK's per-pair metadata is tiny relative to
        // the data, which is why PinK was considered fine before this
        // paper.
        let m = MetaModel::paper(64 * GB, 16, 4096);
        let s = m.sizes();
        let ratio = s.pink_sum() as f64 / m.capacity_bytes as f64;
        assert!(ratio < 0.01, "PinK metadata ratio {ratio} should be <1%");
    }

    #[test]
    fn hash_lists_never_exceed_four_bytes_per_pair() {
        let m = MetaModel::paper(1 * GB, 20, 2000);
        let s = m.sizes();
        assert!(s.anykey_hash_lists <= s.pairs * 4);
    }
}
