//! xxHash32, implemented from the specification.
//!
//! AnyKey stores a 32-bit xxHash of every key inside its KV entities, sorts
//! entities within a data segment group by this hash, and fills the hash
//! lists with it (paper Section 4.1; the 79 ns hashing cost on the
//! controller's Cortex-A53 is modeled by [`crate::CpuModel`]). We implement
//! the algorithm from scratch so the simulator has no substrate
//! dependencies, and validate it against the reference test vectors.

const PRIME32_1: u32 = 0x9E37_79B1;
const PRIME32_2: u32 = 0x85EB_CA77;
const PRIME32_3: u32 = 0xC2B2_AE3D;
const PRIME32_4: u32 = 0x27D4_EB2F;
const PRIME32_5: u32 = 0x1656_67B1;

#[inline]
fn read_u32(bytes: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]])
}

#[inline]
fn round(acc: u32, lane: u32) -> u32 {
    acc.wrapping_add(lane.wrapping_mul(PRIME32_2))
        .rotate_left(13)
        .wrapping_mul(PRIME32_1)
}

/// Computes the 32-bit xxHash of `input` with the given seed.
///
/// ```
/// use anykey_core::hash::xxhash32;
///
/// assert_eq!(xxhash32(b"abc", 0), 0x32D1_53FF);
/// ```
pub fn xxhash32(input: &[u8], seed: u32) -> u32 {
    let len = input.len();
    let mut h: u32;
    let mut i = 0;

    if len >= 16 {
        let mut v1 = seed.wrapping_add(PRIME32_1).wrapping_add(PRIME32_2);
        let mut v2 = seed.wrapping_add(PRIME32_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME32_1);
        while i + 16 <= len {
            v1 = round(v1, read_u32(input, i));
            v2 = round(v2, read_u32(input, i + 4));
            v3 = round(v3, read_u32(input, i + 8));
            v4 = round(v4, read_u32(input, i + 12));
            i += 16;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
    } else {
        h = seed.wrapping_add(PRIME32_5);
    }

    h = h.wrapping_add(len as u32);

    while i + 4 <= len {
        h = h
            .wrapping_add(read_u32(input, i).wrapping_mul(PRIME32_3))
            .rotate_left(17)
            .wrapping_mul(PRIME32_4);
        i += 4;
    }
    while i < len {
        h = h
            .wrapping_add((input[i] as u32).wrapping_mul(PRIME32_5))
            .rotate_left(11)
            .wrapping_mul(PRIME32_1);
        i += 1;
    }

    h ^= h >> 15;
    h = h.wrapping_mul(PRIME32_2);
    h ^= h >> 13;
    h = h.wrapping_mul(PRIME32_3);
    h ^= h >> 16;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Published xxHash32 test vectors.
        assert_eq!(xxhash32(b"", 0), 0x02CC_5D05);
        assert_eq!(xxhash32(b"a", 0), 0x550D_7456);
        assert_eq!(xxhash32(b"abc", 0), 0x32D1_53FF);
        assert_eq!(
            xxhash32(b"Nobody inspects the spammish repetition", 0),
            0xE229_3B2F
        );
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxhash32(b"key", 0), xxhash32(b"key", 1));
    }

    #[test]
    fn long_inputs_use_stripe_loop() {
        let data = vec![0xABu8; 1024];
        let h1 = xxhash32(&data, 0);
        let mut data2 = data.clone();
        data2[512] ^= 1;
        assert_ne!(h1, xxhash32(&data2, 0));
    }

    #[test]
    fn every_length_boundary_is_stable() {
        // Exercise the 16-byte stripe, 4-byte lane and tail-byte paths.
        let data: Vec<u8> = (0..64u8).collect();
        let mut seen = std::collections::HashSet::new();
        for l in 0..=64 {
            assert!(seen.insert(xxhash32(&data[..l], 7)), "collision at len {l}");
        }
    }
}
