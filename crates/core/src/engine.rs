//! The engine trait every KV-SSD design implements.

use anykey_flash::{FlashCounters, Ns};
use anykey_metrics::timeline::StateSample;
use anykey_metrics::trace::{PhaseBreakdown, TraceEvent};
use anykey_workload::Op;

use crate::audit::AuditError;
use crate::config::EngineKind;
use crate::error::KvError;

/// Per-page overhead reserved for ECC/headers in every flash page; the
/// usable payload is `page_size - PAGE_HEADER_BYTES`.
pub const PAGE_HEADER_BYTES: u32 = 64;

/// Result of executing one host operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    /// Virtual time the operation was issued.
    pub issued_at: Ns,
    /// Virtual time the operation completed.
    pub done_at: Ns,
    /// Whether the key was found (GET/DELETE) or accepted (PUT); for scans,
    /// whether at least one key was returned.
    pub found: bool,
    /// Number of flash page reads on this operation's critical path — the
    /// paper's Figure 11b metric (flash accesses per read request).
    pub flash_reads: u32,
    /// Where the operation's latency went, phase by phase: the five fields
    /// sum exactly to `done_at − issued_at`. Always populated — phase
    /// attribution is cheap arithmetic on the critical path, unlike raw
    /// event tracing.
    pub phases: PhaseBreakdown,
}

impl OpOutcome {
    /// The operation's latency.
    pub fn latency(&self) -> Ns {
        self.done_at - self.issued_at
    }
}

/// Snapshot of an engine's metadata footprint and placement — the inputs to
/// the paper's Table 1 and Figure 11a.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetadataStats {
    /// Bytes of level lists (both engines).
    pub level_list_bytes: u64,
    /// Level-list bytes that did **not** fit in DRAM (PinK under low-v/k).
    pub level_list_flash_bytes: u64,
    /// Total bytes of AnyKey hash lists (resident or not).
    pub hash_list_total_bytes: u64,
    /// Hash-list bytes currently resident in DRAM.
    pub hash_list_resident_bytes: u64,
    /// PinK meta-segment bytes resident in DRAM.
    pub meta_segment_dram_bytes: u64,
    /// PinK meta-segment bytes stored in flash.
    pub meta_segment_flash_bytes: u64,
    /// Configured DRAM capacity.
    pub dram_capacity: u64,
    /// DRAM currently in use (write buffer reservation + resident
    /// metadata).
    pub dram_used: u64,
    /// Number of LSM levels currently populated.
    pub levels: usize,
    /// Bytes of live, unique user KV data — the numerator of the Figure 14
    /// storage-utilization metric.
    pub live_unique_bytes: u64,
    /// Bytes of values currently parked in the value log (AnyKey).
    pub value_log_used_bytes: u64,
    /// Read-retry steps the media needed so far (0 on perfect media).
    pub retry_reads: u64,
    /// Page programs that failed and were re-issued elsewhere.
    pub program_fails: u64,
    /// Block erases that failed.
    pub erase_fails: u64,
    /// Blocks permanently retired as grown bad blocks (all regions).
    pub retired_blocks: u64,
    /// Free erase blocks remaining across the engine's regions — the
    /// headroom the GC triggers watch; shrinks as blocks retire.
    pub free_blocks: u64,
}

impl MetadataStats {
    /// All metadata bytes that want DRAM (the paper's Table 1 "Sum").
    pub fn metadata_bytes(&self) -> u64 {
        self.level_list_bytes
            + self.hash_list_resident_bytes
            + self.meta_segment_dram_bytes
            + self.meta_segment_flash_bytes
    }
}

/// A simulated key-value SSD.
///
/// All three systems of the paper (PinK, AnyKey, AnyKey+) implement this
/// trait; the runner and benchmark harness drive them uniformly. Operations
/// carry an *issue time* in virtual nanoseconds and return a completion
/// time; engines schedule their flash traffic (foreground and background)
/// on the shared per-chip timelines, which is how background compaction
/// delays foreground requests.
pub trait KvEngine {
    /// Which design this engine is.
    fn kind(&self) -> EngineKind;

    /// Executes one host operation issued at virtual time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when a PUT cannot be accepted, and
    /// [`KvError::KeyTooLarge`] for ill-formed key ids.
    fn execute(&mut self, op: &Op, at: Ns) -> Result<OpOutcome, KvError>;

    /// Runs a range scan and returns the key ids found (in key order) with
    /// the outcome; used by correctness tests and the Figure 18 experiment.
    fn scan_keys(&mut self, start: u64, len: u32, at: Ns) -> (Vec<u64>, OpOutcome);

    /// Metadata footprint snapshot.
    fn metadata(&self) -> MetadataStats;

    /// Flash traffic counters (reads/writes/erases per cause).
    fn counters(&self) -> FlashCounters;

    /// Resets the flash counters (end of warm-up).
    fn reset_counters(&mut self);

    /// The virtual time at which all in-flight flash work completes.
    fn horizon(&self) -> Ns;

    /// Raw flash capacity of this engine's region in bytes.
    fn capacity_bytes(&self) -> u64;

    /// Audits the engine's structural invariants: level-list key ordering
    /// and non-overlap, directory sortedness, DRAM budget conservation,
    /// cause-tagged flash counter conservation, and live-byte accounting.
    ///
    /// Cheap relative to a compaction (one pass over in-DRAM metadata);
    /// invoked automatically at compaction/GC/spill boundaries under the
    /// `strict-invariants` feature and called directly by the test suites.
    ///
    /// # Errors
    ///
    /// Returns the first [`AuditError`] found, naming the violated
    /// invariant with its observed and expected values.
    fn check_invariants(&self) -> Result<(), AuditError>;

    /// Enables or disables trace-event recording (flash-op lifecycles and
    /// engine background spans). Default: a no-op — engines without
    /// tracing support, and all engines built without the `trace` cargo
    /// feature, silently record nothing.
    fn set_tracing(&mut self, _on: bool) {}

    /// Drains the recorded trace events, converted to the serializable
    /// metrics model and sorted by timestamp. Default: empty.
    fn take_trace(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Snapshots the engine-state half of a telemetry [`StateSample`]:
    /// per-level occupancy, DRAM budget consumers, value-log live/stale
    /// bytes, free-block depth, and erase-count spread. The runner fills
    /// the identity, interval, and cumulative-traffic fields on top.
    ///
    /// Pure observation — implementations must not mutate any state.
    /// Default: an all-zero sample, for engines without timeline support.
    fn sample_state(&self) -> StateSample {
        StateSample::default()
    }

    /// Inserts (or updates) a key at the current horizon — convenience for
    /// examples and tests.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when the device cannot accept the
    /// write.
    fn put(&mut self, key: u64, value_len: u32) -> Result<OpOutcome, KvError> {
        let at = self.horizon();
        self.execute(&Op::Put { key, value_len }, at)
    }

    /// Looks a key up at the current horizon — convenience for examples and
    /// tests. A key id that does not fit the configured key length cannot
    /// have been stored, so it is reported as not found.
    fn get(&mut self, key: u64) -> OpOutcome {
        let at = self.horizon();
        match self.execute(&Op::Get { key }, at) {
            Ok(outcome) => outcome,
            Err(_) => OpOutcome {
                issued_at: at,
                done_at: at,
                found: false,
                flash_reads: 0,
                phases: PhaseBreakdown::default(),
            },
        }
    }

    /// Deletes a key at the current horizon — convenience for examples and
    /// tests.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::DeviceFull`] when the tombstone cannot be
    /// buffered.
    fn delete(&mut self, key: u64) -> Result<OpOutcome, KvError> {
        let at = self.horizon();
        self.execute(&Op::Delete { key }, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_latency_is_delta() {
        let o = OpOutcome {
            issued_at: 10,
            done_at: 150,
            found: true,
            flash_reads: 2,
            phases: PhaseBreakdown::default(),
        };
        assert_eq!(o.latency(), 140);
    }

    #[test]
    fn metadata_sum_matches_table1_definition() {
        let m = MetadataStats {
            level_list_bytes: 10,
            hash_list_resident_bytes: 20,
            meta_segment_dram_bytes: 5,
            meta_segment_flash_bytes: 7,
            ..MetadataStats::default()
        };
        assert_eq!(m.metadata_bytes(), 42);
    }
}
