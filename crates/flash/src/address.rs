//! Physical flash addresses.

use std::fmt;

/// Identifier of an erase block, global across the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl From<u32> for BlockId {
    fn from(v: u32) -> Self {
        BlockId(v)
    }
}

/// Physical page address: an erase block plus a page index within it.
///
/// This is the unit every simulated read and program operates on — the
/// "PPA" that the paper's level lists, meta segments and value-log pointers
/// store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppa {
    /// The erase block.
    pub block: BlockId,
    /// Page index within the block.
    pub page: u32,
}

impl Ppa {
    /// Creates a physical page address from a raw block id and page index.
    pub fn new(block: u32, page: u32) -> Self {
        Self {
            block: BlockId(block),
            page,
        }
    }

    /// The address `n` pages after this one **within the same block**.
    ///
    /// Data segment groups span physically consecutive pages of one block
    /// (paper Section 4.1), so group page addresses are derived this way
    /// from the group's first-page PPA.
    pub fn offset(self, n: u32) -> Self {
        Self {
            block: self.block,
            page: self.page + n,
        }
    }
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_stays_in_block() {
        let p = Ppa::new(7, 3);
        let q = p.offset(5);
        assert_eq!(q.block, BlockId(7));
        assert_eq!(q.page, 8);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Ppa::new(2, 9).to_string(), "B2:9");
    }

    #[test]
    fn ordering_is_block_major() {
        assert!(Ppa::new(1, 100) < Ppa::new(2, 0));
        assert!(Ppa::new(1, 1) < Ppa::new(1, 2));
    }
}
