//! Flash-op lifecycle events for the virtual-time tracing subsystem.
//!
//! The simulator records one [`FlashEvent`] per page read, page program,
//! and block erase while tracing is enabled (see
//! [`crate::FlashSim::set_tracing`]). Recording is pure observation: it
//! never perturbs the chip timelines, so enabling tracing cannot change a
//! run's virtual-time results. The event buffer itself only exists when
//! the `trace` cargo feature is on; without it the recording hooks
//! compile to nothing.
//!
//! This crate stays dependency-free, so events here use the crate's own
//! typed vocabulary ([`crate::OpCause`], [`crate::Ns`]); `anykey-core`
//! converts them into the serializable `anykey-metrics` trace model,
//! attaching the channel derived from the geometry.

use crate::{Ns, OpCause};

/// Kind of flash operation a [`FlashEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashOpKind {
    /// A page read (including any read-retry steps in its latency).
    Read,
    /// A page program.
    Program,
    /// A block erase.
    Erase,
}

impl FlashOpKind {
    /// Stable lowercase name used by the trace exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            FlashOpKind::Read => "read",
            FlashOpKind::Program => "program",
            FlashOpKind::Erase => "erase",
        }
    }
}

/// One flash operation's lifecycle as the chip scheduler saw it.
///
/// `issued ≤ start ≤ done` always holds; `start − issued` is the queueing
/// stall the op suffered behind other traffic on its chip, and
/// `done − start` is the chip-busy time (including read-retry steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashEvent {
    /// Operation kind.
    pub op: FlashOpKind,
    /// Cause tag; `None` for erases (which carry no host-visible cause).
    pub cause: Option<OpCause>,
    /// Chip the operation ran on.
    pub chip: u32,
    /// Virtual ns the operation was issued (entered the chip queue).
    pub issued: Ns,
    /// Virtual ns the chip started executing the operation.
    pub start: Ns,
    /// Virtual ns the operation completed.
    pub done: Ns,
    /// Media read-retry steps the operation needed (fault injection).
    pub retries: u32,
}

impl FlashEvent {
    /// Stable cause name for exporters: the [`OpCause`] tag, or `"erase"`.
    pub fn cause_str(&self) -> &'static str {
        self.cause.map_or("erase", OpCause::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_names_are_stable() {
        assert_eq!(FlashOpKind::Read.as_str(), "read");
        assert_eq!(FlashOpKind::Program.as_str(), "program");
        assert_eq!(FlashOpKind::Erase.as_str(), "erase");
    }

    #[test]
    fn cause_str_falls_back_to_erase() {
        let ev = FlashEvent {
            op: FlashOpKind::Erase,
            cause: None,
            chip: 0,
            issued: 0,
            start: 0,
            done: 1,
            retries: 0,
        };
        assert_eq!(ev.cause_str(), "erase");
        let ev2 = FlashEvent {
            cause: Some(OpCause::GcRead),
            op: FlashOpKind::Read,
            ..ev
        };
        assert_eq!(ev2.cause_str(), "gc-read");
    }
}
