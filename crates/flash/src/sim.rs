//! The virtual-time flash scheduler.

use crate::{BlockId, FlashCounters, FlashGeometry, LatencyModel, Ns, OpCause, PageKind, Ppa};

/// Configuration of a simulated flash device: geometry plus latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashConfig {
    /// Physical layout.
    pub geometry: FlashGeometry,
    /// NAND timing parameters.
    pub latency: LatencyModel,
    /// Residual delay cap a foreground operation pays when it preempts
    /// in-flight background work on its chip — the NAND program/erase
    /// suspend latency (~100 µs on modern TLC).
    pub bg_residual_ns: Ns,
}

impl FlashConfig {
    /// The paper's device shape at a given raw capacity.
    pub fn paper_shape(raw_bytes: u64, page_size: u32, pages_per_block: u32) -> Self {
        let bg_residual_ns = std::env::var("ANYKEY_BG_RESIDUAL_NS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000);
        Self {
            geometry: FlashGeometry::paper_shape(raw_bytes, page_size, pages_per_block),
            latency: LatencyModel::paper_tlc(),
            bg_residual_ns,
        }
    }

    /// A tiny 64 MiB device for unit tests.
    pub fn small_test() -> Self {
        Self::paper_shape(64 << 20, 8 << 10, 128)
    }
}

impl Default for FlashConfig {
    fn default() -> Self {
        Self {
            geometry: FlashGeometry::default(),
            latency: LatencyModel::default(),
            bg_residual_ns: 100_000,
        }
    }
}

/// Scheduling class of an operation.
///
/// Foreground operations (host-issued reads on the GET/SCAN critical path)
/// have priority: they queue only behind other foreground work plus a
/// bounded residual of whatever background page the chip is currently
/// executing (modern NAND supports program/erase suspend). Background
/// operations (compaction, GC, buffered writes) accumulate per-chip
/// backlog that drains in foreground-idle gaps — so they consume real
/// device time and slow the host down through write stalls, without every
/// read queueing behind an entire compaction burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Fg,
    Bg,
}

impl OpCause {
    fn lane(self) -> Lane {
        match self {
            // GET/SCAN critical-path reads.
            OpCause::HostRead | OpCause::MetaRead | OpCause::LogRead => Lane::Fg,
            // Everything else is device-internal/buffered.
            _ => Lane::Bg,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Chip {
    /// Time the chip becomes free of foreground work.
    fg_free: Ns,
    /// Time the chip finishes all queued background work.
    bg_done: Ns,
}

/// A flash device with one two-lane timeline per chip.
#[derive(Debug, Clone)]
pub struct FlashSim {
    cfg: FlashConfig,
    chips: Vec<Chip>,
    counters: FlashCounters,
}

impl FlashSim {
    /// Creates an idle device.
    pub fn new(cfg: FlashConfig) -> Self {
        let chips = cfg.geometry.chips() as usize;
        Self {
            cfg,
            chips: vec![Chip::default(); chips],
            counters: FlashCounters::new(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.cfg
    }

    /// The device geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.cfg.geometry
    }

    /// Accumulated operation counters.
    pub fn counters(&self) -> &FlashCounters {
        &self.counters
    }

    /// The time at which the busiest chip finishes all queued work
    /// (foreground plus backlog).
    pub fn horizon(&self) -> Ns {
        self.chips
            .iter()
            .map(|c| c.fg_free.max(c.bg_done))
            .max()
            .unwrap_or(0)
    }

    fn schedule(&mut self, chip_idx: u32, lane: Lane, latency: Ns, at: Ns) -> Ns {
        let chip = &mut self.chips[chip_idx as usize];
        match lane {
            Lane::Fg => {
                let mut start = at.max(chip.fg_free);
                if chip.bg_done > start {
                    // The chip is inside a background window. Only a read
                    // arriving at a foreground-idle chip can find a
                    // background page op mid-flight and pay the suspend
                    // residual; back-to-back foreground reads keep the chip
                    // and pay nothing extra. Either way the stolen chip
                    // time pushes the background window out.
                    if at >= chip.fg_free {
                        let resid = (chip.bg_done - start).min(self.cfg.bg_residual_ns);
                        start += resid;
                    }
                    chip.bg_done += latency;
                }
                chip.fg_free = start + latency;
                chip.fg_free
            }
            Lane::Bg => {
                // Background work runs whenever the chip is free of
                // foreground work, after previously queued background work.
                let start = at.max(chip.bg_done).max(chip.fg_free);
                chip.bg_done = start + latency;
                chip.bg_done
            }
        }
    }

    /// Reads one page; returns its completion time.
    pub fn read(&mut self, ppa: Ppa, cause: OpCause, at: Ns) -> Ns {
        debug_assert!(cause.is_read(), "read issued with write cause {cause}");
        let chip = self.cfg.geometry.chip_of_block(ppa.block.0);
        let lat = self.cfg.latency.read(PageKind::of_page(ppa.page));
        self.counters.count_read(cause);
        self.schedule(chip, cause.lane(), lat, at)
    }

    /// Programs one page; returns its completion time.
    pub fn program(&mut self, ppa: Ppa, cause: OpCause, at: Ns) -> Ns {
        debug_assert!(!cause.is_read(), "program issued with read cause {cause}");
        let chip = self.cfg.geometry.chip_of_block(ppa.block.0);
        let lat = self.cfg.latency.program(PageKind::of_page(ppa.page));
        self.counters.count_write(cause);
        self.schedule(chip, cause.lane(), lat, at)
    }

    /// Erases a block; returns its completion time.
    pub fn erase(&mut self, block: BlockId, at: Ns) -> Ns {
        let chip = self.cfg.geometry.chip_of_block(block.0);
        let lat = self.cfg.latency.erase();
        self.counters.count_erase();
        self.schedule(chip, Lane::Bg, lat, at)
    }

    /// Reads a set of independent pages in parallel; returns the time the
    /// last one completes.
    ///
    /// Pages on different chips overlap fully; pages on the same chip
    /// serialize on that chip's timeline.
    pub fn read_many<I>(&mut self, ppas: I, cause: OpCause, at: Ns) -> Ns
    where
        I: IntoIterator<Item = Ppa>,
    {
        let mut done = at;
        for ppa in ppas {
            done = done.max(self.read(ppa, cause, at));
        }
        done
    }

    /// Programs a set of independent pages in parallel; returns the time
    /// the last one completes.
    pub fn program_many<I>(&mut self, ppas: I, cause: OpCause, at: Ns) -> Ns
    where
        I: IntoIterator<Item = Ppa>,
    {
        let mut done = at;
        for ppa in ppas {
            done = done.max(self.program(ppa, cause, at));
        }
        done
    }

    /// Resets the counters (e.g. at the end of warm-up) without touching
    /// the chip timelines.
    pub fn reset_counters(&mut self) {
        self.counters = FlashCounters::new();
    }

    /// Test-only corruption hook forwarding to
    /// [`FlashCounters::desync_for_test`]; exists so the negative-path
    /// auditor tests can desynchronize a live engine's counters.
    #[doc(hidden)]
    pub fn desync_counters_for_test(&mut self) {
        self.counters.desync_for_test();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FlashSim {
        FlashSim::new(FlashConfig::small_test())
    }

    #[test]
    fn same_chip_fg_ops_serialize() {
        let mut s = sim();
        let p = Ppa::new(0, 0);
        let d1 = s.read(p, OpCause::HostRead, 0);
        let d2 = s.read(p, OpCause::HostRead, 0);
        assert!(d2 >= 2 * d1 - 1, "second op must queue behind the first");
    }

    #[test]
    fn different_chips_overlap() {
        let mut s = sim();
        // Block 0 and block 1 live on different chips (striping).
        let d1 = s.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        let d2 = s.read(Ppa::new(1, 0), OpCause::HostRead, 0);
        assert_eq!(d1, d2, "independent chips should not queue");
    }

    #[test]
    fn completion_is_monotone_in_issue_time() {
        let mut a = sim();
        let mut b = sim();
        let p = Ppa::new(3, 4);
        let early = a.read(p, OpCause::HostRead, 100);
        let late = b.read(p, OpCause::HostRead, 5_000_000);
        assert!(late > early);
    }

    #[test]
    fn foreground_pays_only_bounded_residual_of_background() {
        let mut s = sim();
        // Pile a huge compaction burst on chip 0.
        for page in 0..64 {
            s.program(Ppa::new(0, page), OpCause::CompactionWrite, 0);
        }
        let read_done = s.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        let plain = LatencyModel::paper_tlc().read(PageKind::Lsb);
        let cap = FlashConfig::small_test().bg_residual_ns;
        assert!(
            read_done <= plain + cap,
            "read {read_done} must not wait for the whole burst"
        );
        assert!(read_done > plain, "read must pay some residual");
    }

    #[test]
    fn background_backlog_drains_in_idle_gaps() {
        let mut s = sim();
        let est = s.program(Ppa::new(0, 0), OpCause::CompactionWrite, 0);
        // A read issued long after the backlog finished pays nothing.
        let read_done = s.read(Ppa::new(0, 0), OpCause::HostRead, est + 10_000_000);
        let plain = LatencyModel::paper_tlc().read(PageKind::Lsb);
        assert_eq!(read_done, est + 10_000_000 + plain);
    }

    #[test]
    fn background_completion_reflects_backlog() {
        let mut s = sim();
        let d1 = s.program(Ppa::new(0, 0), OpCause::CompactionWrite, 0);
        let d2 = s.program(Ppa::new(0, 0), OpCause::CompactionWrite, 0);
        assert!(d2 > d1, "backlog accumulates");
    }

    #[test]
    fn erase_counts_and_advances_time() {
        let mut s = sim();
        let done = s.erase(BlockId(0), 0);
        assert_eq!(done, LatencyModel::paper_tlc().erase());
        assert_eq!(s.counters().erases(), 1);
    }

    #[test]
    fn read_many_parallelism_bounded_by_chips() {
        let mut s = sim();
        let chips = s.geometry().chips();
        let ppas: Vec<Ppa> = (0..chips).map(|b| Ppa::new(b, 0)).collect();
        let done = s.read_many(ppas.iter().copied(), OpCause::HostRead, 0);
        let single = LatencyModel::paper_tlc().read(PageKind::Lsb);
        assert_eq!(done, single);
    }

    #[test]
    fn horizon_tracks_total_outstanding_work() {
        let mut s = sim();
        assert_eq!(s.horizon(), 0);
        let done = s.program(Ppa::new(0, 0), OpCause::LogWrite, 0);
        assert_eq!(s.horizon(), done);
        let read_done = s.read(Ppa::new(1, 0), OpCause::HostRead, 0);
        assert!(s.horizon() >= read_done.min(done));
    }

    #[test]
    fn reset_counters_keeps_timelines() {
        let mut s = sim();
        s.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        s.reset_counters();
        assert_eq!(s.counters().total_reads(), 0);
        assert!(s.horizon() > 0);
    }
}
