//! The virtual-time flash scheduler.

use crate::{
    BlockId, FaultModel, FlashCounters, FlashGeometry, LatencyModel, Ns, OpCause, PageKind, Ppa,
};

/// Configuration of a simulated flash device: geometry, latency model, and
/// fault model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashConfig {
    /// Physical layout.
    pub geometry: FlashGeometry,
    /// NAND timing parameters.
    pub latency: LatencyModel,
    /// Residual delay cap a foreground operation pays when it preempts
    /// in-flight background work on its chip — the NAND program/erase
    /// suspend latency (~100 µs on modern TLC).
    ///
    /// Always set explicitly (the builder/bench CLI plumb it through); no
    /// environment variable is consulted, so a recorded config reproduces
    /// the run exactly.
    pub bg_residual_ns: Ns,
    /// Seed-driven media error model; [`FaultModel::disabled`] (the
    /// default) reproduces the paper's perfect-media FEMU behaviour.
    pub fault: FaultModel,
}

impl FlashConfig {
    /// The paper's device shape at a given raw capacity.
    pub fn paper_shape(raw_bytes: u64, page_size: u32, pages_per_block: u32) -> Self {
        Self {
            geometry: FlashGeometry::paper_shape(raw_bytes, page_size, pages_per_block),
            latency: LatencyModel::paper_tlc(),
            bg_residual_ns: 100_000,
            fault: FaultModel::disabled(),
        }
    }

    /// A tiny 64 MiB device for unit tests.
    pub fn small_test() -> Self {
        Self::paper_shape(64 << 20, 8 << 10, 128)
    }
}

impl Default for FlashConfig {
    fn default() -> Self {
        Self {
            geometry: FlashGeometry::default(),
            latency: LatencyModel::default(),
            bg_residual_ns: 100_000,
            fault: FaultModel::disabled(),
        }
    }
}

/// Media status of a completed flash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashOpStatus {
    /// The operation succeeded. Reads always land here: transient read
    /// errors are resolved inside the simulator by stepped read-retry,
    /// which lengthens the completion time instead.
    Ok,
    /// The page program failed; the caller must re-issue the page at a
    /// fresh physical location. The failed attempt still occupied the chip.
    ProgramFail,
    /// The block erase failed; the caller must retire the block via
    /// [`crate::BlockAllocator::retire`] instead of freeing it.
    EraseFail,
}

impl FlashOpStatus {
    /// Whether the media reported success.
    pub fn is_ok(self) -> bool {
        matches!(self, FlashOpStatus::Ok)
    }
}

/// Outcome of a flash operation: when it completed on the chip timeline and
/// whether the media reported success.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a flash operation may have failed; check the status"]
pub struct FlashOpResult {
    /// Time the chip started executing the operation; `start − issue time`
    /// is the queueing stall the op suffered behind other traffic.
    pub start: Ns,
    /// Completion time, including any read-retry steps.
    pub done: Ns,
    /// Media status; failed operations still consumed chip time.
    pub status: FlashOpStatus,
}

/// Scheduling class of an operation.
///
/// Foreground operations (host-issued reads on the GET/SCAN critical path)
/// have priority: they queue only behind other foreground work plus a
/// bounded residual of whatever background page the chip is currently
/// executing (modern NAND supports program/erase suspend). Background
/// operations (compaction, GC, buffered writes) accumulate per-chip
/// backlog that drains in foreground-idle gaps — so they consume real
/// device time and slow the host down through write stalls, without every
/// read queueing behind an entire compaction burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Fg,
    Bg,
}

impl OpCause {
    fn lane(self) -> Lane {
        match self {
            // GET/SCAN critical-path reads.
            OpCause::HostRead | OpCause::MetaRead | OpCause::LogRead => Lane::Fg,
            // Everything else is device-internal/buffered.
            _ => Lane::Bg,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Chip {
    /// Time the chip becomes free of foreground work.
    fg_free: Ns,
    /// Time the chip finishes all queued background work.
    bg_done: Ns,
}

/// A device-level state snapshot for telemetry timelines: the virtual
/// horizon plus the erase-count spread over all blocks (the wear-leveling
/// signal the paper's GC discussion reasons about). Produced by
/// [`FlashSim::sample_state`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashStateSample {
    /// Latest busy instant across all chips (foreground or background).
    pub horizon: Ns,
    /// Total blocks in the device.
    pub blocks: u64,
    /// Minimum completed P/E cycles over all blocks.
    pub wear_min: u64,
    /// Maximum completed P/E cycles over all blocks.
    pub wear_max: u64,
    /// Total completed P/E cycles over all blocks.
    pub wear_total: u64,
}

/// A flash device with one two-lane timeline per chip.
#[derive(Debug, Clone)]
pub struct FlashSim {
    cfg: FlashConfig,
    chips: Vec<Chip>,
    counters: FlashCounters,
    /// Completed P/E cycles per global block, driving the wear-dependent
    /// fault probabilities. Tracked by the device (it sees every erase),
    /// independently of the engines' allocators.
    wear: Vec<u32>,
    /// Monotone operation sequence number mixed into fault draws so two
    /// ops on the same page at different points of the run draw
    /// independently.
    op_seq: u64,
    /// Recorded op-lifecycle events; populated only while tracing is on.
    #[cfg(feature = "trace")]
    events: Vec<crate::trace::FlashEvent>,
    /// Whether op-lifecycle recording is active.
    #[cfg(feature = "trace")]
    tracing: bool,
}

impl FlashSim {
    /// Creates an idle device.
    pub fn new(cfg: FlashConfig) -> Self {
        let chips = cfg.geometry.chips() as usize;
        let blocks = cfg.geometry.blocks() as usize;
        Self {
            cfg,
            chips: vec![Chip::default(); chips],
            counters: FlashCounters::new(),
            wear: vec![0; blocks],
            op_seq: 0,
            #[cfg(feature = "trace")]
            events: Vec::new(),
            #[cfg(feature = "trace")]
            tracing: false,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.cfg
    }

    /// The device geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.cfg.geometry
    }

    /// Accumulated operation counters.
    pub fn counters(&self) -> &FlashCounters {
        &self.counters
    }

    /// The time at which the busiest chip finishes all queued work
    /// (foreground plus backlog).
    pub fn horizon(&self) -> Ns {
        self.chips
            .iter()
            .map(|c| c.fg_free.max(c.bg_done))
            .max()
            .unwrap_or(0)
    }

    /// Places one op of `latency` on a chip's lane timeline; returns its
    /// `(start, done)` pair on the chip timeline.
    fn schedule(&mut self, chip_idx: u32, lane: Lane, latency: Ns, at: Ns) -> (Ns, Ns) {
        let chip = &mut self.chips[chip_idx as usize];
        match lane {
            Lane::Fg => {
                let mut start = at.max(chip.fg_free);
                if chip.bg_done > start {
                    // The chip is inside a background window. Only a read
                    // arriving at a foreground-idle chip can find a
                    // background page op mid-flight and pay the suspend
                    // residual; back-to-back foreground reads keep the chip
                    // and pay nothing extra. Either way the stolen chip
                    // time pushes the background window out.
                    if at >= chip.fg_free {
                        let resid = (chip.bg_done - start).min(self.cfg.bg_residual_ns);
                        start += resid;
                    }
                    chip.bg_done += latency;
                }
                chip.fg_free = start + latency;
                (start, chip.fg_free)
            }
            Lane::Bg => {
                // Background work runs whenever the chip is free of
                // foreground work, after previously queued background work.
                let start = at.max(chip.bg_done).max(chip.fg_free);
                chip.bg_done = start + latency;
                (start, chip.bg_done)
            }
        }
    }

    /// Records one op lifecycle into the trace buffer (when tracing).
    #[cfg(feature = "trace")]
    #[allow(clippy::too_many_arguments)]
    fn record_op(
        &mut self,
        op: crate::trace::FlashOpKind,
        cause: Option<OpCause>,
        chip: u32,
        issued: Ns,
        start: Ns,
        done: Ns,
        retries: u32,
    ) {
        if self.tracing {
            self.events.push(crate::trace::FlashEvent {
                op,
                cause,
                chip,
                issued,
                start,
                done,
                retries,
            });
        }
    }

    /// No-op twin of the tracing recorder when the `trace` feature is off:
    /// the call sites stay unconditional and the optimizer erases them.
    #[cfg(not(feature = "trace"))]
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn record_op(
        &mut self,
        _op: crate::trace::FlashOpKind,
        _cause: Option<OpCause>,
        _chip: u32,
        _issued: Ns,
        _start: Ns,
        _done: Ns,
        _retries: u32,
    ) {
    }

    /// Enables or disables flash-op lifecycle recording. Enabling clears
    /// any previously recorded events. Without the `trace` cargo feature
    /// this is a no-op and recording is always off.
    pub fn set_tracing(&mut self, on: bool) {
        #[cfg(feature = "trace")]
        {
            self.tracing = on;
            if on {
                self.events.clear();
            }
        }
        #[cfg(not(feature = "trace"))]
        let _ = on;
    }

    /// Whether op-lifecycle recording is currently active.
    pub fn is_tracing(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.tracing
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Drains the recorded op-lifecycle events (empty without the `trace`
    /// feature or when tracing was never enabled).
    pub fn take_trace_events(&mut self) -> Vec<crate::trace::FlashEvent> {
        #[cfg(feature = "trace")]
        {
            std::mem::take(&mut self.events)
        }
        #[cfg(not(feature = "trace"))]
        {
            Vec::new()
        }
    }

    /// Takes the next fault-draw sequence number.
    fn next_seq(&mut self) -> u64 {
        let seq = self.op_seq;
        self.op_seq += 1;
        seq
    }

    /// Reads one page; returns its completion time and status.
    ///
    /// Reads always succeed: when the fault model injects a transient read
    /// error, the simulator resolves it internally with stepped read-retry
    /// — each step re-pays one page sense on the chip timeline and
    /// increments the cause-tagged `retry_reads` counter — so the caller
    /// only sees a longer completion time.
    pub fn read(&mut self, ppa: Ppa, cause: OpCause, at: Ns) -> FlashOpResult {
        debug_assert!(cause.is_read(), "read issued with write cause {cause}");
        let chip = self.cfg.geometry.chip_of_block(ppa.block.0);
        let kind = PageKind::of_page(ppa.page);
        let mut lat = self.cfg.latency.read(kind);
        self.counters.count_read(cause);
        let seq = self.next_seq();
        let mut retries = 0u32;
        if self.cfg.fault.is_enabled() {
            let wear = self.block_wear(ppa.block);
            retries = self
                .cfg
                .fault
                .read_retries(wear, ppa.block.0, ppa.page, seq);
            if retries > 0 {
                self.counters.count_retry_reads(cause, u64::from(retries));
                lat += u64::from(retries) * self.cfg.latency.read_sense(kind);
            }
        }
        let (start, done) = self.schedule(chip, cause.lane(), lat, at);
        self.record_op(
            crate::trace::FlashOpKind::Read,
            Some(cause),
            chip,
            at,
            start,
            done,
            retries,
        );
        FlashOpResult {
            start,
            done,
            status: FlashOpStatus::Ok,
        }
    }

    /// Programs one page; returns its completion time and status.
    ///
    /// A [`FlashOpStatus::ProgramFail`] still occupies the chip for the
    /// full program latency and is counted as a write; the caller must
    /// re-issue the page at a fresh physical location.
    pub fn program(&mut self, ppa: Ppa, cause: OpCause, at: Ns) -> FlashOpResult {
        debug_assert!(!cause.is_read(), "program issued with read cause {cause}");
        let chip = self.cfg.geometry.chip_of_block(ppa.block.0);
        let lat = self.cfg.latency.program(PageKind::of_page(ppa.page));
        self.counters.count_write(cause);
        let seq = self.next_seq();
        let mut status = FlashOpStatus::Ok;
        if self.cfg.fault.is_enabled() {
            let wear = self.block_wear(ppa.block);
            if self
                .cfg
                .fault
                .program_fails(wear, ppa.block.0, ppa.page, seq)
            {
                self.counters.count_program_fail();
                status = FlashOpStatus::ProgramFail;
            }
        }
        let (start, done) = self.schedule(chip, cause.lane(), lat, at);
        self.record_op(
            crate::trace::FlashOpKind::Program,
            Some(cause),
            chip,
            at,
            start,
            done,
            0,
        );
        FlashOpResult {
            start,
            done,
            status,
        }
    }

    /// Erases a block; returns its completion time and status.
    ///
    /// A successful erase completes one P/E cycle of block wear. A
    /// [`FlashOpStatus::EraseFail`] means the block has grown bad; the
    /// caller must retire it from its allocator instead of freeing it.
    pub fn erase(&mut self, block: BlockId, at: Ns) -> FlashOpResult {
        let chip = self.cfg.geometry.chip_of_block(block.0);
        let lat = self.cfg.latency.erase();
        self.counters.count_erase();
        let seq = self.next_seq();
        let mut status = FlashOpStatus::Ok;
        if self.cfg.fault.is_enabled()
            && self
                .cfg
                .fault
                .erase_fails(self.block_wear(block), block.0, seq)
        {
            self.counters.count_erase_fail();
            status = FlashOpStatus::EraseFail;
        }
        if status.is_ok() {
            if let Some(w) = self.wear.get_mut(block.0 as usize) {
                *w = w.saturating_add(1);
            }
        }
        let (start, done) = self.schedule(chip, Lane::Bg, lat, at);
        self.record_op(
            crate::trace::FlashOpKind::Erase,
            None,
            chip,
            at,
            start,
            done,
            0,
        );
        FlashOpResult {
            start,
            done,
            status,
        }
    }

    /// Reads a set of independent pages in parallel; returns the time the
    /// last one completes (reads always succeed, see [`FlashSim::read`]).
    ///
    /// Pages on different chips overlap fully; pages on the same chip
    /// serialize on that chip's timeline.
    pub fn read_many<I>(&mut self, ppas: I, cause: OpCause, at: Ns) -> Ns
    where
        I: IntoIterator<Item = Ppa>,
    {
        let mut done = at;
        for ppa in ppas {
            done = done.max(self.read(ppa, cause, at).done);
        }
        done
    }

    /// Programs a set of independent pages in parallel; returns the time
    /// the last one completes and `Ok` only if every page programmed
    /// cleanly.
    ///
    /// Callers that need to know *which* page failed (to re-place it)
    /// should issue per-page [`FlashSim::program`] calls with a shared
    /// issue time instead — the chip-timeline outcome is identical.
    pub fn program_many<I>(&mut self, ppas: I, cause: OpCause, at: Ns) -> FlashOpResult
    where
        I: IntoIterator<Item = Ppa>,
    {
        let mut out = FlashOpResult {
            start: at,
            done: at,
            status: FlashOpStatus::Ok,
        };
        let mut first = true;
        for ppa in ppas {
            let r = self.program(ppa, cause, at);
            out.start = if first {
                r.start
            } else {
                out.start.min(r.start)
            };
            first = false;
            out.done = out.done.max(r.done);
            if !r.status.is_ok() {
                out.status = r.status;
            }
        }
        out
    }

    /// Completed P/E cycles of a block, as seen by the device.
    pub fn block_wear(&self, block: BlockId) -> u32 {
        self.wear.get(block.0 as usize).copied().unwrap_or(0)
    }

    /// Snapshots the device-level state a telemetry timeline samples:
    /// the virtual-time horizon and the erase-count spread over all
    /// blocks. Pure observation — never mutates chip timelines, counters,
    /// or wear.
    pub fn sample_state(&self) -> FlashStateSample {
        let mut s = FlashStateSample {
            horizon: self.horizon(),
            blocks: self.wear.len() as u64,
            wear_min: self.wear.iter().copied().min().unwrap_or(0).into(),
            ..FlashStateSample::default()
        };
        for &w in &self.wear {
            let w = u64::from(w);
            s.wear_max = s.wear_max.max(w);
            s.wear_total += w;
        }
        s
    }

    /// Resets the counters (e.g. at the end of warm-up) without touching
    /// the chip timelines.
    pub fn reset_counters(&mut self) {
        self.counters = FlashCounters::new();
    }

    /// Test-only corruption hook forwarding to
    /// [`FlashCounters::desync_for_test`]; exists so the negative-path
    /// auditor tests can desynchronize a live engine's counters.
    #[doc(hidden)]
    pub fn desync_counters_for_test(&mut self) {
        self.counters.desync_for_test();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FlashSim {
        FlashSim::new(FlashConfig::small_test())
    }

    #[test]
    fn same_chip_fg_ops_serialize() {
        let mut s = sim();
        let p = Ppa::new(0, 0);
        let d1 = s.read(p, OpCause::HostRead, 0).done;
        let d2 = s.read(p, OpCause::HostRead, 0).done;
        assert!(d2 >= 2 * d1 - 1, "second op must queue behind the first");
    }

    #[test]
    fn different_chips_overlap() {
        let mut s = sim();
        // Block 0 and block 1 live on different chips (striping).
        let d1 = s.read(Ppa::new(0, 0), OpCause::HostRead, 0).done;
        let d2 = s.read(Ppa::new(1, 0), OpCause::HostRead, 0).done;
        assert_eq!(d1, d2, "independent chips should not queue");
    }

    #[test]
    fn completion_is_monotone_in_issue_time() {
        let mut a = sim();
        let mut b = sim();
        let p = Ppa::new(3, 4);
        let early = a.read(p, OpCause::HostRead, 100).done;
        let late = b.read(p, OpCause::HostRead, 5_000_000).done;
        assert!(late > early);
    }

    #[test]
    fn foreground_pays_only_bounded_residual_of_background() {
        let mut s = sim();
        // Pile a huge compaction burst on chip 0.
        for page in 0..64 {
            let _ = s.program(Ppa::new(0, page), OpCause::CompactionWrite, 0);
        }
        let read_done = s.read(Ppa::new(0, 0), OpCause::HostRead, 0).done;
        let plain = LatencyModel::paper_tlc().read(PageKind::Lsb);
        let cap = FlashConfig::small_test().bg_residual_ns;
        assert!(
            read_done <= plain + cap,
            "read {read_done} must not wait for the whole burst"
        );
        assert!(read_done > plain, "read must pay some residual");
    }

    #[test]
    fn background_backlog_drains_in_idle_gaps() {
        let mut s = sim();
        let est = s.program(Ppa::new(0, 0), OpCause::CompactionWrite, 0).done;
        // A read issued long after the backlog finished pays nothing.
        let read_done = s
            .read(Ppa::new(0, 0), OpCause::HostRead, est + 10_000_000)
            .done;
        let plain = LatencyModel::paper_tlc().read(PageKind::Lsb);
        assert_eq!(read_done, est + 10_000_000 + plain);
    }

    #[test]
    fn background_completion_reflects_backlog() {
        let mut s = sim();
        let d1 = s.program(Ppa::new(0, 0), OpCause::CompactionWrite, 0).done;
        let d2 = s.program(Ppa::new(0, 0), OpCause::CompactionWrite, 0).done;
        assert!(d2 > d1, "backlog accumulates");
    }

    #[test]
    fn erase_counts_and_advances_time() {
        let mut s = sim();
        let r = s.erase(BlockId(0), 0);
        assert_eq!(r.done, LatencyModel::paper_tlc().erase());
        assert!(r.status.is_ok());
        assert_eq!(s.counters().erases(), 1);
        assert_eq!(s.block_wear(BlockId(0)), 1, "clean erase completes a P/E");
    }

    #[test]
    fn read_many_parallelism_bounded_by_chips() {
        let mut s = sim();
        let chips = s.geometry().chips();
        let ppas: Vec<Ppa> = (0..chips).map(|b| Ppa::new(b, 0)).collect();
        let done = s.read_many(ppas.iter().copied(), OpCause::HostRead, 0);
        let single = LatencyModel::paper_tlc().read(PageKind::Lsb);
        assert_eq!(done, single);
    }

    #[test]
    fn horizon_tracks_total_outstanding_work() {
        let mut s = sim();
        assert_eq!(s.horizon(), 0);
        let done = s.program(Ppa::new(0, 0), OpCause::LogWrite, 0).done;
        assert_eq!(s.horizon(), done);
        let read_done = s.read(Ppa::new(1, 0), OpCause::HostRead, 0).done;
        assert!(s.horizon() >= read_done.min(done));
    }

    #[test]
    fn reset_counters_keeps_timelines() {
        let mut s = sim();
        let _ = s.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        s.reset_counters();
        assert_eq!(s.counters().total_reads(), 0);
        assert!(s.horizon() > 0);
    }

    fn faulty_sim(read_ppm: u32) -> FlashSim {
        let mut cfg = FlashConfig::small_test();
        cfg.fault = FaultModel::uniform(0xF00D, read_ppm);
        FlashSim::new(cfg)
    }

    #[test]
    fn read_retries_lengthen_reads_and_are_counted() {
        let mut s = faulty_sim(500_000);
        let plain = LatencyModel::paper_tlc().read(PageKind::Lsb);
        let mut slowed = 0;
        for block in 0..64 {
            let r = s.read(
                Ppa::new(block % 8, 0),
                OpCause::HostRead,
                1_000_000_000 * u64::from(block),
            );
            assert!(r.status.is_ok(), "reads always resolve");
            if r.done > 1_000_000_000 * u64::from(block) + plain {
                slowed += 1;
            }
        }
        assert!(slowed > 0, "a 50% error rate must slow some reads");
        assert!(s.counters().total_retry_reads() > 0);
        assert_eq!(
            s.counters().retry_reads(OpCause::HostRead),
            s.counters().total_retry_reads()
        );
        assert_eq!(s.counters().audit(), Ok(()));
    }

    #[test]
    fn program_failures_are_reported_and_counted() {
        let mut s = faulty_sim(1_000_000);
        let mut failed = 0;
        for page in 0..64 {
            let r = s.program(Ppa::new(0, page), OpCause::LogWrite, 0);
            if !r.status.is_ok() {
                assert_eq!(r.status, FlashOpStatus::ProgramFail);
                failed += 1;
            }
        }
        assert!(
            failed > 0,
            "a 12.5% program-fail rate must fire in 64 tries"
        );
        assert_eq!(s.counters().program_fails(), failed);
        // Failed programs still count as writes (they occupied the chip).
        assert_eq!(s.counters().total_writes(), 64);
    }

    #[test]
    fn erase_failures_are_reported_and_skip_wear() {
        let mut s = faulty_sim(1_000_000);
        let mut failed = 0;
        let mut completed = 0;
        for block in 0..64 {
            let r = s.erase(BlockId(block % 8), 0);
            if r.status.is_ok() {
                completed += 1;
            } else {
                assert_eq!(r.status, FlashOpStatus::EraseFail);
                failed += 1;
            }
        }
        assert!(failed > 0, "a 6.25% erase-fail rate must fire in 64 tries");
        assert_eq!(s.counters().erase_fails(), failed);
        assert_eq!(s.counters().erases(), 64);
        let total_wear: u64 = (0..8).map(|b| u64::from(s.block_wear(BlockId(b)))).sum();
        assert_eq!(total_wear, completed, "only clean erases complete a P/E");
    }

    #[test]
    fn fault_injection_is_deterministic_across_runs() {
        let run = || {
            let mut s = faulty_sim(200_000);
            for i in 0..256u32 {
                let ppa = Ppa::new(i % 64, i % 128);
                let _ = s.program(ppa, OpCause::CompactionWrite, u64::from(i));
                let _ = s.read(ppa, OpCause::HostRead, u64::from(i) * 2);
                if i % 16 == 0 {
                    let _ = s.erase(BlockId(i % 64), u64::from(i));
                }
            }
            (s.counters().clone(), s.horizon())
        };
        let (c1, h1) = run();
        let (c2, h2) = run();
        assert_eq!(c1, c2, "same seed + same op sequence => same counters");
        assert_eq!(h1, h2, "same seed + same op sequence => same horizon");
    }

    #[test]
    fn tracing_off_records_nothing() {
        let mut s = sim();
        let _ = s.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        assert!(!s.is_tracing());
        assert!(s.take_trace_events().is_empty());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn tracing_records_lifecycle_without_perturbing_time() {
        use crate::trace::FlashOpKind;
        let mut traced = sim();
        let mut plain = sim();
        traced.set_tracing(true);
        assert!(traced.is_tracing());
        let t1 = traced.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        let p1 = plain.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        assert_eq!(t1, p1, "tracing must not change the timeline");
        let _ = traced.program(Ppa::new(0, 1), OpCause::CompactionWrite, 0);
        let _ = traced.erase(BlockId(1), 0);
        let events = traced.take_trace_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].op, FlashOpKind::Read);
        assert_eq!(events[0].cause_str(), "host-read");
        assert_eq!(events[0].issued, 0);
        assert_eq!(events[0].done, t1.done);
        assert!(events[0].issued <= events[0].start && events[0].start <= events[0].done);
        assert_eq!(events[2].op, FlashOpKind::Erase);
        assert_eq!(events[2].cause_str(), "erase");
        // Drained: the buffer is empty until re-enabled work arrives.
        assert!(traced.take_trace_events().is_empty());
        // Disabling stops recording.
        traced.set_tracing(false);
        let _ = traced.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        assert!(traced.take_trace_events().is_empty());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn fg_op_start_reflects_queueing_stall() {
        let mut s = sim();
        s.set_tracing(true);
        let r1 = s.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        let r2 = s.read(Ppa::new(0, 0), OpCause::HostRead, 0);
        assert_eq!(r1.start, 0, "first op starts immediately");
        assert_eq!(r2.start, r1.done, "second op stalls behind the first");
        let events = s.take_trace_events();
        assert_eq!(events[1].start - events[1].issued, r1.done);
    }

    #[test]
    fn disabled_fault_model_is_zero_cost() {
        let mut plain = sim();
        let mut explicit = FlashSim::new(FlashConfig {
            fault: FaultModel::disabled(),
            ..FlashConfig::small_test()
        });
        for i in 0..128u32 {
            let ppa = Ppa::new(i % 64, i % 128);
            let a = plain.read(ppa, OpCause::HostRead, u64::from(i));
            let b = explicit.read(ppa, OpCause::HostRead, u64::from(i));
            assert_eq!(a, b);
        }
        assert_eq!(plain.counters(), explicit.counters());
        assert_eq!(plain.counters().total_retry_reads(), 0);
    }
}
