//! Deterministic, seed-driven NAND fault injection.
//!
//! The paper evaluates on FEMU, a perfect-media emulator: every page read,
//! page program, and block erase succeeds. Real NAND does not behave this
//! way — raw bit-error rates grow with block wear until the on-die ECC
//! needs *stepped read-retry* (re-sensing the page at shifted reference
//! voltages), programs occasionally fail and force the FTL to re-place the
//! page elsewhere, and erase failures grow the bad-block list. Full-system
//! SSD simulators (SimpleSSD, Amber) model these as first-class events;
//! this module brings the same error modes to the AnyKey reproduction.
//!
//! Everything is **deterministic**: fault decisions come from a SplitMix64
//! hash of `(seed, block, page, op-sequence, retry-step)`, never from
//! wall-clock time or an OS entropy source. Two runs with the same seed and
//! the same operation sequence inject byte-identical faults, so latency
//! results under faulty media are exactly reproducible. With the default
//! (all-zero) model the simulator takes none of the fault branches and the
//! device behaves exactly as before — the zero-cost default path.
//!
//! Probabilities are expressed in **parts per million** ([`PPM_SCALE`]) and
//! grow linearly with the block's program/erase (P/E) count, matching the
//! wear-dependent raw-bit-error profiles in the NAND literature.

/// Denominator of every fault probability: draws are uniform in
/// `0..PPM_SCALE`, so a field value of `1_000` means a 0.1 % chance.
pub const PPM_SCALE: u64 = 1_000_000;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used as a stateless PRNG
/// keyed by the operation's identity rather than as a sequential generator,
/// so fault decisions depend only on `(seed, ppa, op-sequence)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One deterministic draw in `0..PPM_SCALE` for the operation identified by
/// the key fields.
fn draw(seed: u64, block: u32, page: u32, seq: u64, step: u32) -> u64 {
    let key = seed
        ^ splitmix64(u64::from(block) << 32 | u64::from(page))
        ^ splitmix64(seq.wrapping_mul(0xA076_1D64_78BD_642F))
        ^ u64::from(step).wrapping_mul(0xE703_7ED1_A0B4_28DB);
    splitmix64(key) % PPM_SCALE
}

/// Seed-driven NAND error model, part of [`crate::FlashConfig`].
///
/// All-zero rates (the [`Default`]) disable injection entirely; the
/// simulator then never consults the model and behaves byte-identically to
/// a fault-free device. Rates are in parts per million and grow linearly
/// with block wear (P/E count), so a long-running workload sees its media
/// degrade over time the way real TLC does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultModel {
    /// Seed mixed into every fault draw. Runs with equal seeds and equal
    /// operation sequences inject identical faults.
    pub seed: u64,
    /// Probability (ppm) that a page read at zero wear needs at least one
    /// retry step before ECC decodes it.
    pub read_error_ppm: u32,
    /// Additional read-error ppm per P/E cycle of the page's block.
    pub read_error_ppm_per_pe: u32,
    /// Upper bound on retry steps per read; after this many shifted-voltage
    /// senses the read is considered hard-decoded and returns data. Each
    /// step re-pays the page sense latency on the chip timeline.
    pub max_read_retries: u32,
    /// Probability (ppm) that a page program fails at zero wear.
    pub program_fail_ppm: u32,
    /// Additional program-failure ppm per P/E cycle of the block.
    pub program_fail_ppm_per_pe: u32,
    /// Probability (ppm) that a block erase fails at zero wear, retiring
    /// the block.
    pub erase_fail_ppm: u32,
    /// Additional erase-failure ppm per P/E cycle of the block.
    pub erase_fail_ppm_per_pe: u32,
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultModel {
    /// The perfect-media model: no faults are ever injected.
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            read_error_ppm: 0,
            read_error_ppm_per_pe: 0,
            max_read_retries: 7,
            program_fail_ppm: 0,
            program_fail_ppm_per_pe: 0,
            erase_fail_ppm: 0,
            erase_fail_ppm_per_pe: 0,
        }
    }

    /// A proportional profile for sweeps: read errors at `read_error_ppm`,
    /// program failures at an eighth of that, erase failures at a
    /// sixteenth, each growing by 1/64 of its base per P/E cycle.
    pub fn uniform(seed: u64, read_error_ppm: u32) -> Self {
        Self {
            seed,
            read_error_ppm,
            read_error_ppm_per_pe: read_error_ppm / 64,
            max_read_retries: 7,
            program_fail_ppm: read_error_ppm / 8,
            program_fail_ppm_per_pe: read_error_ppm / 512,
            erase_fail_ppm: read_error_ppm / 16,
            erase_fail_ppm_per_pe: read_error_ppm / 1024,
        }
    }

    /// Whether any fault class has a nonzero rate. When false the simulator
    /// skips the model entirely.
    pub fn is_enabled(&self) -> bool {
        self.read_error_ppm != 0
            || self.read_error_ppm_per_pe != 0
            || self.program_fail_ppm != 0
            || self.program_fail_ppm_per_pe != 0
            || self.erase_fail_ppm != 0
            || self.erase_fail_ppm_per_pe != 0
    }

    /// Wear-scaled probability in `0..=PPM_SCALE`.
    fn scaled(base: u32, per_pe: u32, wear: u32) -> u64 {
        let grown = u64::from(per_pe).saturating_mul(u64::from(wear));
        u64::from(base).saturating_add(grown).min(PPM_SCALE)
    }

    /// Number of retry steps a read of `(block, page)` at the given wear
    /// needs before it decodes. Step `s` fails with probability
    /// `p >> s` — each shifted-voltage sense is exponentially more likely
    /// to succeed — capped at [`FaultModel::max_read_retries`].
    pub(crate) fn read_retries(&self, wear: u32, block: u32, page: u32, seq: u64) -> u32 {
        let p = Self::scaled(self.read_error_ppm, self.read_error_ppm_per_pe, wear);
        let mut retries = 0;
        while retries < self.max_read_retries {
            if draw(self.seed, block, page, seq, retries) >= p >> retries {
                break;
            }
            retries += 1;
        }
        retries
    }

    /// Whether the program of `(block, page)` at the given wear fails.
    pub(crate) fn program_fails(&self, wear: u32, block: u32, page: u32, seq: u64) -> bool {
        let p = Self::scaled(self.program_fail_ppm, self.program_fail_ppm_per_pe, wear);
        p > 0 && draw(self.seed, block, page, seq, u32::MAX) < p
    }

    /// Whether the erase of `block` at the given wear fails (retiring it).
    pub(crate) fn erase_fails(&self, wear: u32, block: u32, seq: u64) -> bool {
        let p = Self::scaled(self.erase_fail_ppm, self.erase_fail_ppm_per_pe, wear);
        p > 0 && draw(self.seed, block, u32::MAX, seq, u32::MAX) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled() {
        assert!(!FaultModel::default().is_enabled());
        assert_eq!(FaultModel::default(), FaultModel::disabled());
    }

    #[test]
    fn uniform_is_enabled_and_proportional() {
        let m = FaultModel::uniform(7, 8_000);
        assert!(m.is_enabled());
        assert_eq!(m.program_fail_ppm, 1_000);
        assert_eq!(m.erase_fail_ppm, 500);
    }

    #[test]
    fn draws_are_deterministic() {
        let m = FaultModel::uniform(42, 300_000);
        for seq in 0..64 {
            assert_eq!(m.read_retries(3, 9, 17, seq), m.read_retries(3, 9, 17, seq));
            assert_eq!(
                m.program_fails(3, 9, 17, seq),
                m.program_fails(3, 9, 17, seq)
            );
            assert_eq!(m.erase_fails(3, 9, seq), m.erase_fails(3, 9, seq));
        }
    }

    #[test]
    fn zero_rates_never_fire() {
        let m = FaultModel::disabled();
        for seq in 0..256 {
            assert_eq!(m.read_retries(1000, 1, 2, seq), 0);
            assert!(!m.program_fails(1000, 1, 2, seq));
            assert!(!m.erase_fails(1000, 1, seq));
        }
    }

    #[test]
    fn certain_error_caps_at_max_retries() {
        let m = FaultModel {
            read_error_ppm: 1_000_000,
            max_read_retries: 5,
            ..FaultModel::disabled()
        };
        // Step 0 fails with certainty; later steps halve the probability,
        // so the count is between 1 and the cap and deterministic.
        let r = m.read_retries(0, 0, 0, 0);
        assert!((1..=5).contains(&r), "retries {r} out of range");
    }

    #[test]
    fn wear_raises_error_rates() {
        let m = FaultModel {
            read_error_ppm: 0,
            read_error_ppm_per_pe: 10_000,
            ..FaultModel::disabled()
        };
        let fired_fresh: u32 = (0..512).map(|s| m.read_retries(0, 0, 0, s).min(1)).sum();
        let fired_worn: u32 = (0..512).map(|s| m.read_retries(90, 0, 0, s).min(1)).sum();
        assert_eq!(fired_fresh, 0, "zero wear means zero rate");
        assert!(fired_worn > 0, "wear must grow the error rate");
    }
}
