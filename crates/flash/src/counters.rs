//! Cause-tagged accounting of flash traffic.
//!
//! Every simulated page read, page program, and block erase is attributed to
//! a cause. The benchmark harness aggregates these to regenerate the paper's
//! Table 3 (compaction vs. GC page reads/writes per system) and Figure 13
//! (total page writes, a proxy for device lifetime).

use std::fmt;

/// Why a flash operation was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCause {
    /// Foreground read servicing a host GET/SCAN (data segment pages).
    HostRead,
    /// Foreground program writing host data outside compaction (rare; both
    /// engines write host data during L0→L1 compaction, tagged as such).
    HostWrite,
    /// Read of flash-resident metadata (PinK meta segments / spilled level
    /// lists) on the GET path.
    MetaRead,
    /// Program of flash-resident metadata (PinK meta segments).
    MetaWrite,
    /// Read issued by a compaction (tree- or log-triggered).
    CompactionRead,
    /// Program issued by a compaction.
    CompactionWrite,
    /// Read issued by garbage collection (valid-data relocation).
    GcRead,
    /// Program issued by garbage collection.
    GcWrite,
    /// Read of a value-log page on the GET path or during log-triggered
    /// compaction.
    LogRead,
    /// Program of a value-log page (initial value placement or write-back).
    LogWrite,
}

impl OpCause {
    /// All causes, for iteration in reports.
    pub const ALL: [OpCause; 10] = [
        OpCause::HostRead,
        OpCause::HostWrite,
        OpCause::MetaRead,
        OpCause::MetaWrite,
        OpCause::CompactionRead,
        OpCause::CompactionWrite,
        OpCause::GcRead,
        OpCause::GcWrite,
        OpCause::LogRead,
        OpCause::LogWrite,
    ];

    fn idx(self) -> usize {
        match self {
            OpCause::HostRead => 0,
            OpCause::HostWrite => 1,
            OpCause::MetaRead => 2,
            OpCause::MetaWrite => 3,
            OpCause::CompactionRead => 4,
            OpCause::CompactionWrite => 5,
            OpCause::GcRead => 6,
            OpCause::GcWrite => 7,
            OpCause::LogRead => 8,
            OpCause::LogWrite => 9,
        }
    }

    /// Stable lowercase name of the cause (what [`fmt::Display`] prints
    /// and the trace exporters embed).
    pub fn as_str(self) -> &'static str {
        match self {
            OpCause::HostRead => "host-read",
            OpCause::HostWrite => "host-write",
            OpCause::MetaRead => "meta-read",
            OpCause::MetaWrite => "meta-write",
            OpCause::CompactionRead => "compaction-read",
            OpCause::CompactionWrite => "compaction-write",
            OpCause::GcRead => "gc-read",
            OpCause::GcWrite => "gc-write",
            OpCause::LogRead => "log-read",
            OpCause::LogWrite => "log-write",
        }
    }

    /// Whether this cause is a read-side cause.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            OpCause::HostRead
                | OpCause::MetaRead
                | OpCause::CompactionRead
                | OpCause::GcRead
                | OpCause::LogRead
        )
    }
}

impl fmt::Display for OpCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-cause totals of page reads, page programs and block erases.
///
/// The grand totals (`total_reads`, `total_writes`) are maintained as
/// *independent* counters rather than computed sums, so [`FlashCounters::audit`]
/// can verify cause-tagged conservation: if any path ever counted an
/// operation against one ledger but not the other, the audit reports the
/// skew instead of silently folding it into a "total".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlashCounters {
    reads: [u64; 10],
    writes: [u64; 10],
    retry_reads: [u64; 10],
    reads_total: u64,
    writes_total: u64,
    retry_reads_total: u64,
    erases: u64,
    program_fails: u64,
    erase_fails: u64,
}

/// Counter-conservation failure reported by [`FlashCounters::audit`]: a
/// per-cause ledger no longer sums to the independently maintained total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSkew {
    /// Which ledger diverged: `"reads"` or `"writes"`.
    pub ledger: &'static str,
    /// Sum over the ten per-[`OpCause`] entries.
    pub per_cause_sum: u64,
    /// The independently maintained grand total.
    pub total: u64,
}

impl fmt::Display for CounterSkew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flash {} counter skew: per-cause sum {} != independent total {}",
            self.ledger, self.per_cause_sum, self.total
        )
    }
}

impl std::error::Error for CounterSkew {}

impl FlashCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_read(&mut self, cause: OpCause) {
        self.reads[cause.idx()] += 1;
        self.reads_total += 1;
    }

    pub(crate) fn count_write(&mut self, cause: OpCause) {
        self.writes[cause.idx()] += 1;
        self.writes_total += 1;
    }

    pub(crate) fn count_erase(&mut self) {
        self.erases += 1;
    }

    pub(crate) fn count_retry_reads(&mut self, cause: OpCause, steps: u64) {
        self.retry_reads[cause.idx()] += steps;
        self.retry_reads_total += steps;
    }

    pub(crate) fn count_program_fail(&mut self) {
        self.program_fails += 1;
    }

    pub(crate) fn count_erase_fail(&mut self) {
        self.erase_fails += 1;
    }

    /// Verifies cause-tagged conservation: each per-cause ledger must sum
    /// exactly to its independent grand total.
    pub fn audit(&self) -> Result<(), CounterSkew> {
        let read_sum: u64 = self.reads.iter().sum();
        if read_sum != self.reads_total {
            return Err(CounterSkew {
                ledger: "reads",
                per_cause_sum: read_sum,
                total: self.reads_total,
            });
        }
        let write_sum: u64 = self.writes.iter().sum();
        if write_sum != self.writes_total {
            return Err(CounterSkew {
                ledger: "writes",
                per_cause_sum: write_sum,
                total: self.writes_total,
            });
        }
        let retry_sum: u64 = self.retry_reads.iter().sum();
        if retry_sum != self.retry_reads_total {
            return Err(CounterSkew {
                ledger: "retry-reads",
                per_cause_sum: retry_sum,
                total: self.retry_reads_total,
            });
        }
        Ok(())
    }

    /// Test-only corruption hook: bumps the independent read total without
    /// touching the per-cause ledger, so [`FlashCounters::audit`] must fail.
    /// Exists for the negative-path auditor tests.
    #[doc(hidden)]
    pub fn desync_for_test(&mut self) {
        self.reads_total += 1;
    }

    /// Page reads attributed to `cause`.
    pub fn reads(&self, cause: OpCause) -> u64 {
        self.reads[cause.idx()]
    }

    /// Page programs attributed to `cause`.
    pub fn writes(&self, cause: OpCause) -> u64 {
        self.writes[cause.idx()]
    }

    /// Total block erases.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// Read-retry steps attributed to `cause` (0 unless the fault model is
    /// enabled). Each step re-paid one page sense on the chip timeline.
    pub fn retry_reads(&self, cause: OpCause) -> u64 {
        self.retry_reads[cause.idx()]
    }

    /// Total read-retry steps across all causes.
    pub fn total_retry_reads(&self) -> u64 {
        self.retry_reads_total
    }

    /// Total page programs that reported a program failure (the page still
    /// occupied the chip; the FTL re-issued it elsewhere).
    pub fn program_fails(&self) -> u64 {
        self.program_fails
    }

    /// Total block erases that failed, retiring the block.
    pub fn erase_fails(&self) -> u64 {
        self.erase_fails
    }

    /// Total page reads across all causes.
    pub fn total_reads(&self) -> u64 {
        self.reads_total
    }

    /// Total page programs across all causes — the paper's Figure 13 metric
    /// (total page writes ∝ inverse device lifetime).
    pub fn total_writes(&self) -> u64 {
        self.writes_total
    }

    /// Difference against an earlier snapshot (`self - earlier`), used to
    /// report only the measured phase after warm-up.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn since(&self, earlier: &FlashCounters) -> FlashCounters {
        let mut out = FlashCounters::new();
        for i in 0..10 {
            debug_assert!(self.reads[i] >= earlier.reads[i]);
            debug_assert!(self.writes[i] >= earlier.writes[i]);
            debug_assert!(self.retry_reads[i] >= earlier.retry_reads[i]);
            out.reads[i] = self.reads[i] - earlier.reads[i];
            out.writes[i] = self.writes[i] - earlier.writes[i];
            out.retry_reads[i] = self.retry_reads[i] - earlier.retry_reads[i];
        }
        out.reads_total = self.reads_total - earlier.reads_total;
        out.writes_total = self.writes_total - earlier.writes_total;
        out.retry_reads_total = self.retry_reads_total - earlier.retry_reads_total;
        out.erases = self.erases - earlier.erases;
        out.program_fails = self.program_fails - earlier.program_fails;
        out.erase_fails = self.erase_fails - earlier.erase_fails;
        out
    }
}

impl fmt::Display for FlashCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for cause in OpCause::ALL {
            let (r, w) = (self.reads(cause), self.writes(cause));
            if r > 0 || w > 0 {
                writeln!(f, "{cause:>18}: reads {r:>12} writes {w:>12}")?;
            }
        }
        if self.retry_reads_total > 0 || self.program_fails > 0 || self.erase_fails > 0 {
            writeln!(
                f,
                "{:>18}: retries {} program-fails {} erase-fails {}",
                "media faults", self.retry_reads_total, self.program_fails, self.erase_fails
            )?;
        }
        write!(f, "{:>18}: {}", "erases", self.erases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_cause() {
        let mut c = FlashCounters::new();
        c.count_read(OpCause::HostRead);
        c.count_read(OpCause::HostRead);
        c.count_write(OpCause::CompactionWrite);
        c.count_erase();
        assert_eq!(c.reads(OpCause::HostRead), 2);
        assert_eq!(c.reads(OpCause::GcRead), 0);
        assert_eq!(c.writes(OpCause::CompactionWrite), 1);
        assert_eq!(c.total_reads(), 2);
        assert_eq!(c.total_writes(), 1);
        assert_eq!(c.erases(), 1);
    }

    #[test]
    fn since_subtracts_snapshots() {
        let mut c = FlashCounters::new();
        c.count_read(OpCause::MetaRead);
        let snap = c.clone();
        c.count_read(OpCause::MetaRead);
        c.count_write(OpCause::LogWrite);
        let d = c.since(&snap);
        assert_eq!(d.reads(OpCause::MetaRead), 1);
        assert_eq!(d.writes(OpCause::LogWrite), 1);
    }

    #[test]
    fn all_causes_are_distinct() {
        use std::collections::HashSet;
        let set: HashSet<usize> = OpCause::ALL.iter().map(|c| c.idx()).collect();
        assert_eq!(set.len(), OpCause::ALL.len());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!FlashCounters::new().to_string().is_empty());
    }

    #[test]
    fn audit_passes_on_consistent_counters() {
        let mut c = FlashCounters::new();
        for cause in OpCause::ALL {
            if cause.is_read() {
                c.count_read(cause);
            } else {
                c.count_write(cause);
            }
        }
        assert_eq!(c.audit(), Ok(()));
        assert_eq!(c.total_reads(), 5);
        assert_eq!(c.total_writes(), 5);
    }

    #[test]
    fn audit_detects_desynchronized_total() {
        let mut c = FlashCounters::new();
        c.count_read(OpCause::HostRead);
        c.desync_for_test();
        let err = c.audit().unwrap_err();
        assert_eq!(err.ledger, "reads");
        assert_eq!(err.per_cause_sum, 1);
        assert_eq!(err.total, 2);
        assert!(err.to_string().contains("counter skew"));
    }

    #[test]
    fn retry_ledger_is_cause_tagged_and_audited() {
        let mut c = FlashCounters::new();
        c.count_retry_reads(OpCause::HostRead, 3);
        c.count_retry_reads(OpCause::MetaRead, 1);
        c.count_program_fail();
        c.count_erase_fail();
        assert_eq!(c.retry_reads(OpCause::HostRead), 3);
        assert_eq!(c.retry_reads(OpCause::MetaRead), 1);
        assert_eq!(c.total_retry_reads(), 4);
        assert_eq!(c.program_fails(), 1);
        assert_eq!(c.erase_fails(), 1);
        assert_eq!(c.audit(), Ok(()));
        let snap = c.clone();
        c.count_retry_reads(OpCause::HostRead, 2);
        c.count_program_fail();
        let d = c.since(&snap);
        assert_eq!(d.total_retry_reads(), 2);
        assert_eq!(d.program_fails(), 1);
        assert_eq!(d.erase_fails(), 0);
        assert_eq!(d.audit(), Ok(()));
    }

    #[test]
    fn since_preserves_audit_consistency() {
        let mut c = FlashCounters::new();
        c.count_read(OpCause::MetaRead);
        let snap = c.clone();
        c.count_read(OpCause::MetaRead);
        c.count_write(OpCause::LogWrite);
        assert_eq!(c.since(&snap).audit(), Ok(()));
    }
}
