//! The TLC NAND latency model.

use crate::{Ns, MICROSECOND, MILLISECOND};

/// The three page types of a TLC flash cell, which have different read and
/// program latencies.
///
/// The paper (Section 5.1, citing \[34\]) assumes a modern TLC flash with
/// read times (56.5, 77.5, 106) µs and program times (0.8, 2.2, 5.7) ms for
/// the three page types, and a 3 ms block erase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// Fastest page of the tri-level cell (LSB).
    Lsb,
    /// Middle page (CSB).
    Csb,
    /// Slowest page (MSB).
    Msb,
}

impl PageKind {
    /// The page kind of a page index within its block.
    ///
    /// Real TLC devices interleave page types across word lines; a simple
    /// `index mod 3` mapping reproduces the 1/3-each mix that matters for
    /// average and tail latencies.
    pub fn of_page(page_index: u32) -> Self {
        match page_index % 3 {
            0 => PageKind::Lsb,
            1 => PageKind::Csb,
            _ => PageKind::Msb,
        }
    }

    fn idx(self) -> usize {
        match self {
            PageKind::Lsb => 0,
            PageKind::Csb => 1,
            PageKind::Msb => 2,
        }
    }
}

/// Read/program/erase latencies of the simulated NAND.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Page read latency for each [`PageKind`], in nanoseconds.
    pub read_ns: [Ns; 3],
    /// Page program latency for each [`PageKind`], in nanoseconds.
    pub program_ns: [Ns; 3],
    /// Block erase latency in nanoseconds.
    pub erase_ns: Ns,
    /// Per-page data transfer cost over the channel, in nanoseconds.
    ///
    /// 8 KiB over an ONFI-class channel (~800 MB/s) is ~10 µs; this serializes
    /// transfers so that a burst of reads is not infinitely parallel.
    pub transfer_ns: Ns,
}

impl LatencyModel {
    /// The TLC latency parameters used by the paper (Section 5.1).
    pub fn paper_tlc() -> Self {
        Self {
            read_ns: [
                56_500,            // 56.5 us
                77_500,            // 77.5 us
                106 * MICROSECOND, // 106 us
            ],
            program_ns: [
                800 * MICROSECOND,   // 0.8 ms
                2_200 * MICROSECOND, // 2.2 ms
                5_700 * MICROSECOND, // 5.7 ms
            ],
            erase_ns: 3 * MILLISECOND,
            transfer_ns: 10 * MICROSECOND,
        }
    }

    /// Read latency of a page of the given kind.
    pub fn read(&self, kind: PageKind) -> Ns {
        self.read_ns[kind.idx()] + self.transfer_ns
    }

    /// Cost of one stepped read-retry sense of a page of the given kind:
    /// the array is re-sensed at a shifted reference voltage but the data
    /// crosses the channel only once, so a retry re-pays the cell read
    /// without the transfer.
    pub fn read_sense(&self, kind: PageKind) -> Ns {
        self.read_ns[kind.idx()]
    }

    /// Program latency of a page of the given kind.
    pub fn program(&self, kind: PageKind) -> Ns {
        self.program_ns[kind.idx()] + self.transfer_ns
    }

    /// Block erase latency.
    pub fn erase(&self) -> Ns {
        self.erase_ns
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_tlc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_section_5_1() {
        let m = LatencyModel::paper_tlc();
        assert_eq!(m.read_ns, [56_500, 77_500, 106_000]);
        assert_eq!(m.program_ns, [800_000, 2_200_000, 5_700_000]);
        assert_eq!(m.erase_ns, 3_000_000);
    }

    #[test]
    fn page_kinds_cycle() {
        assert_eq!(PageKind::of_page(0), PageKind::Lsb);
        assert_eq!(PageKind::of_page(1), PageKind::Csb);
        assert_eq!(PageKind::of_page(2), PageKind::Msb);
        assert_eq!(PageKind::of_page(3), PageKind::Lsb);
    }

    #[test]
    fn reads_are_faster_than_programs() {
        let m = LatencyModel::default();
        for kind in [PageKind::Lsb, PageKind::Csb, PageKind::Msb] {
            assert!(m.read(kind) < m.program(kind));
        }
    }
}
