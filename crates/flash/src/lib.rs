//! # anykey-flash
//!
//! A virtual-time NAND flash SSD simulator, the hardware substrate for the
//! AnyKey / PinK key-value SSD reproduction.
//!
//! The paper ("AnyKey: A Key-Value SSD for All Workload Types", ASPLOS 2025)
//! evaluates on FEMU, a QEMU-based flash emulator with an 8-channel ×
//! 8-chips-per-channel TLC device. This crate reproduces the part of FEMU
//! the experiments depend on:
//!
//! * device **geometry** (channels, chips, blocks, pages, page size),
//! * a **TLC latency model** (per-page-type read/program latencies and a
//!   block erase latency),
//! * a **virtual-time scheduler**: every chip has a busy-until timeline and
//!   each operation issued at time `t` completes at
//!   `max(t, chip_free) + latency`, so foreground requests queue behind
//!   background compaction and garbage-collection traffic exactly as they
//!   do on real hardware,
//! * **cause-tagged counters** for every page read, page program, and block
//!   erase, which the benchmark harness uses to regenerate the paper's
//!   Table 3 (compaction/GC traffic) and Figure 13 (total page writes).
//!
//! Nothing here stores user data: content lives in the simulated FTL
//! structures of `anykey-core`; this crate provides *time* and *accounting*.
//!
//! ```
//! use anykey_flash::{FlashConfig, FlashSim, OpCause, Ppa};
//!
//! let sim_cfg = FlashConfig::small_test();
//! let mut sim = FlashSim::new(sim_cfg);
//! let r = sim.read(Ppa::new(0, 0), OpCause::HostRead, 0);
//! assert!(r.status.is_ok() && r.done > 0);
//! assert_eq!(sim.counters().reads(OpCause::HostRead), 1);
//! ```
//!
//! A deterministic, seed-driven **fault model** ([`FaultModel`], default
//! off) can additionally inject transient read errors (resolved by stepped
//! read-retry on the chip timeline), program failures, and erase failures
//! that retire blocks — see the [`fault`] module.

/// Physical page addresses and block identifiers.
pub mod address;
/// Free-block bookkeeping, wear tracking, and bad-block retirement.
pub mod allocator;
/// Cause-tagged page/erase counters (the paper's Table 3 accounting).
pub mod counters;
/// Seed-driven NAND fault injection (read-retry, program/erase failures).
pub mod fault;
/// Device shape: channels, chips, blocks, pages.
pub mod geometry;
/// TLC latency model for reads, programs, and erases.
pub mod latency;
/// The virtual-time flash device simulator.
pub mod sim;
/// Flash-op lifecycle events for the tracing subsystem.
pub mod trace;

/// Flash addressing primitives.
pub use address::{BlockId, Ppa};
/// Allocator over a contiguous erase-block range, with retirement errors.
pub use allocator::{AllocSkew, BlockAllocator, FreeError};
/// Operation accounting: per-cause counters and their audit error.
pub use counters::{CounterSkew, FlashCounters, OpCause};
/// Deterministic media error model.
pub use fault::FaultModel;
/// Physical device geometry.
pub use geometry::FlashGeometry;
/// Page-type-aware latency tables.
pub use latency::{LatencyModel, PageKind};
/// Simulator configuration, operation outcomes, and the simulator itself.
pub use sim::{FlashConfig, FlashOpResult, FlashOpStatus, FlashSim, FlashStateSample};
/// Flash-op lifecycle events recorded while tracing.
pub use trace::{FlashEvent, FlashOpKind};

/// Simulated time in nanoseconds since the start of the run.
pub type Ns = u64;

/// One microsecond in [`Ns`].
pub const MICROSECOND: Ns = 1_000;
/// One millisecond in [`Ns`].
pub const MILLISECOND: Ns = 1_000_000;
/// One second in [`Ns`].
pub const SECOND: Ns = 1_000_000_000;
