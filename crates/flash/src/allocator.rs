//! Erase-block allocation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;

use crate::BlockId;

/// Allocates erase blocks from a contiguous range of global block ids.
///
/// Each FTL region (data segment groups, value log, PinK meta area) owns an
/// allocator over its share of the device; in multi-tenant experiments
/// (paper Section 6.9) each tenant's engine gets a disjoint range, so two
/// engines can share one [`crate::FlashSim`] without stepping on each other.
///
/// Blocks are handed out lowest-id-first; since global block ids are striped
/// across chips, sequentially allocated blocks land on different chips and a
/// compaction writing several blocks gets chip parallelism for free.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    range: Range<u32>,
    free: BinaryHeap<Reverse<u32>>,
    allocated: Vec<bool>,
}

impl BlockAllocator {
    /// An allocator owning every block id in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(range: Range<u32>) -> Self {
        assert!(!range.is_empty(), "block allocator range must be non-empty");
        let free = range.clone().map(Reverse).collect();
        let allocated = vec![false; range.len()];
        Self {
            range,
            free,
            allocated,
        }
    }

    /// Checked index of an in-range block id into the `allocated` table.
    fn slot_index(&self, id: u32) -> usize {
        debug_assert!(self.range.contains(&id));
        // A u32 offset always fits usize on the simulator's targets; the
        // saturation fallback exists only to avoid a bare cast.
        usize::try_from(id - self.range.start).unwrap_or(usize::MAX)
    }

    /// Takes the lowest-id free block, or `None` when the region is
    /// exhausted.
    pub fn alloc(&mut self) -> Option<BlockId> {
        let Reverse(id) = self.free.pop()?;
        let slot = self.slot_index(id);
        self.allocated[slot] = true;
        Some(BlockId(id))
    }

    /// Returns a block to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if the block is outside this allocator's range or not
    /// currently allocated (double free).
    pub fn free(&mut self, block: BlockId) {
        assert!(
            self.range.contains(&block.0),
            "{block} is outside allocator range {:?}",
            self.range
        );
        let idx = self.slot_index(block.0);
        let slot = &mut self.allocated[idx];
        assert!(*slot, "double free of {block}");
        *slot = false;
        self.free.push(Reverse(block.0));
    }

    /// Number of blocks currently free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of blocks currently allocated.
    pub fn allocated_count(&self) -> usize {
        self.len() - self.free_count()
    }

    /// Total number of blocks in the region.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the region has no blocks (never true for a constructed
    /// allocator).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The range of block ids this allocator owns.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_first() {
        let mut a = BlockAllocator::new(10..14);
        assert_eq!(a.alloc(), Some(BlockId(10)));
        assert_eq!(a.alloc(), Some(BlockId(11)));
        a.free(BlockId(10));
        assert_eq!(a.alloc(), Some(BlockId(10)));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = BlockAllocator::new(0..2);
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some());
        assert_eq!(a.alloc(), None);
        assert_eq!(a.free_count(), 0);
        assert_eq!(a.allocated_count(), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = BlockAllocator::new(0..2);
        let b = a.alloc().unwrap();
        a.free(b);
        a.free(b);
    }

    #[test]
    #[should_panic(expected = "outside allocator range")]
    fn foreign_block_panics() {
        let mut a = BlockAllocator::new(0..2);
        a.free(BlockId(5));
    }

    #[test]
    fn counts_are_consistent() {
        let mut a = BlockAllocator::new(0..8);
        let blocks: Vec<_> = (0..5).map(|_| a.alloc().unwrap()).collect();
        assert_eq!(a.free_count(), 3);
        assert_eq!(a.allocated_count(), 5);
        for b in blocks {
            a.free(b);
        }
        assert_eq!(a.free_count(), 8);
    }
}
