//! Erase-block allocation, wear tracking, and bad-block retirement.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::Range;

use crate::BlockId;

/// Misuse reported by [`BlockAllocator::free`] and
/// [`BlockAllocator::retire`]: the block cannot change state as requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeError {
    /// The block id is outside this allocator's range.
    OutOfRange {
        /// The offending global block id.
        block: u32,
    },
    /// The block is not currently allocated (double free / double retire).
    NotAllocated {
        /// The offending global block id.
        block: u32,
    },
    /// The block was retired as a bad block and can never re-enter the
    /// free pool.
    Retired {
        /// The offending global block id.
        block: u32,
    },
}

impl fmt::Display for FreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreeError::OutOfRange { block } => {
                write!(f, "block B{block} is outside the allocator range")
            }
            FreeError::NotAllocated { block } => {
                write!(f, "block B{block} is not allocated (double free)")
            }
            FreeError::Retired { block } => {
                write!(f, "block B{block} is retired and cannot be freed")
            }
        }
    }
}

impl std::error::Error for FreeError {}

/// Conservation failure reported by [`BlockAllocator::audit`]: the free
/// heap, allocation flags, and retirement flags no longer partition the
/// block range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSkew {
    /// Blocks sitting in the free heap.
    pub free: usize,
    /// Blocks with the allocated flag set.
    pub allocated: usize,
    /// Blocks counted as retired.
    pub retired: usize,
    /// Total blocks in the range.
    pub total: usize,
}

impl fmt::Display for AllocSkew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block accounting skew: free {} + allocated {} + retired {} != total {}",
            self.free, self.allocated, self.retired, self.total
        )
    }
}

impl std::error::Error for AllocSkew {}

/// Allocates erase blocks from a contiguous range of global block ids.
///
/// Each FTL region (data segment groups, value log, PinK meta area) owns an
/// allocator over its share of the device; in multi-tenant experiments
/// (paper Section 6.9) each tenant's engine gets a disjoint range, so two
/// engines can share one [`crate::FlashSim`] without stepping on each other.
///
/// By default blocks are handed out lowest-id-first; since global block ids
/// are striped across chips, sequentially allocated blocks land on
/// different chips and a compaction writing several blocks gets chip
/// parallelism for free. With [`BlockAllocator::set_wear_aware`] the
/// allocator instead prefers the least-erased free block (ties broken by
/// lowest id), levelling P/E wear when the fault model makes wear matter.
///
/// The allocator also owns the grown-bad-block list: [`BlockAllocator::retire`]
/// permanently removes a block from rotation after an erase failure, which
/// shrinks the free-block headroom the engines' GC triggers watch.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    range: Range<u32>,
    /// Min-heap keyed by `(wear-key, id)`; the wear key is pinned to zero
    /// unless wear-aware mode is on, reproducing plain lowest-id order.
    free: BinaryHeap<Reverse<(u32, u32)>>,
    allocated: Vec<bool>,
    retired: Vec<bool>,
    wear: Vec<u32>,
    retired_count: usize,
    wear_aware: bool,
}

impl BlockAllocator {
    /// An allocator owning every block id in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(range: Range<u32>) -> Self {
        assert!(!range.is_empty(), "block allocator range must be non-empty");
        let free = range.clone().map(|id| Reverse((0, id))).collect();
        let slots = range.len();
        Self {
            range,
            free,
            allocated: vec![false; slots],
            retired: vec![false; slots],
            wear: vec![0; slots],
            retired_count: 0,
            wear_aware: false,
        }
    }

    /// Switches between lowest-id-first (false, the default) and
    /// least-erased-first (true) allocation. Engines enable this when the
    /// fault model is active; the default order is byte-identical to the
    /// pre-wear-tracking allocator.
    pub fn set_wear_aware(&mut self, on: bool) {
        self.wear_aware = on;
    }

    /// Checked index of an in-range block id into the per-slot tables.
    fn slot_index(&self, id: u32) -> usize {
        debug_assert!(self.range.contains(&id));
        // A u32 offset always fits usize on the simulator's targets; the
        // saturation fallback exists only to avoid a bare cast.
        usize::try_from(id - self.range.start).unwrap_or(usize::MAX)
    }

    /// Takes the preferred free block (lowest id, or least-erased when
    /// wear-aware), or `None` when the region is exhausted.
    pub fn alloc(&mut self) -> Option<BlockId> {
        let Reverse((_, id)) = self.free.pop()?;
        let slot = self.slot_index(id);
        self.allocated[slot] = true;
        Some(BlockId(id))
    }

    /// Returns an erased block to the free pool, recording one P/E cycle
    /// of wear (the engines always erase a block before freeing it).
    pub fn free(&mut self, block: BlockId) -> Result<(), FreeError> {
        let idx = self.checked_slot(block)?;
        self.allocated[idx] = false;
        self.wear[idx] = self.wear[idx].saturating_add(1);
        let key = if self.wear_aware { self.wear[idx] } else { 0 };
        self.free.push(Reverse((key, block.0)));
        Ok(())
    }

    /// Permanently retires an allocated block (grown bad block after an
    /// erase failure). The block never re-enters the free pool, shrinking
    /// the region's usable capacity.
    pub fn retire(&mut self, block: BlockId) -> Result<(), FreeError> {
        let idx = self.checked_slot(block)?;
        self.allocated[idx] = false;
        self.retired[idx] = true;
        self.retired_count += 1;
        Ok(())
    }

    /// Validates that `block` is in range, allocated, and not retired.
    fn checked_slot(&self, block: BlockId) -> Result<usize, FreeError> {
        if !self.range.contains(&block.0) {
            return Err(FreeError::OutOfRange { block: block.0 });
        }
        let idx = self.slot_index(block.0);
        if self.retired[idx] {
            return Err(FreeError::Retired { block: block.0 });
        }
        if !self.allocated[idx] {
            return Err(FreeError::NotAllocated { block: block.0 });
        }
        Ok(idx)
    }

    /// Number of blocks currently free.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of blocks currently allocated.
    pub fn allocated_count(&self) -> usize {
        self.len() - self.free_count() - self.retired_count
    }

    /// Number of blocks permanently retired as bad.
    pub fn retired_count(&self) -> usize {
        self.retired_count
    }

    /// Whether `block` has been retired. Blocks outside the range are not
    /// retired by definition.
    pub fn is_retired(&self, block: BlockId) -> bool {
        self.range.contains(&block.0) && self.retired[self.slot_index(block.0)]
    }

    /// P/E cycles recorded for `block` (0 for blocks outside the range).
    pub fn wear(&self, block: BlockId) -> u32 {
        if self.range.contains(&block.0) {
            self.wear[self.slot_index(block.0)]
        } else {
            0
        }
    }

    /// Sum of recorded P/E cycles across the region.
    pub fn total_wear(&self) -> u64 {
        self.wear.iter().map(|&w| u64::from(w)).sum()
    }

    /// Verifies block-state conservation: the free heap, allocated flags,
    /// and retired flags must partition the range, and the retired counter
    /// must match its flags.
    pub fn audit(&self) -> Result<(), AllocSkew> {
        let allocated = self.allocated.iter().filter(|&&a| a).count();
        let retired = self.retired.iter().filter(|&&r| r).count();
        let overlap = self
            .allocated
            .iter()
            .zip(self.retired.iter())
            .any(|(&a, &r)| a && r);
        if overlap
            || retired != self.retired_count
            || self.free.len() + allocated + retired != self.len()
        {
            return Err(AllocSkew {
                free: self.free.len(),
                allocated,
                retired: self.retired_count,
                total: self.len(),
            });
        }
        Ok(())
    }

    /// Test-only corruption hook: bumps the retired counter without
    /// retiring a block, so [`BlockAllocator::audit`] must fail. Exists for
    /// the negative-path auditor tests.
    #[doc(hidden)]
    pub fn desync_retired_for_test(&mut self) {
        self.retired_count += 1;
    }

    /// Total number of blocks in the region.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the region has no blocks (never true for a constructed
    /// allocator).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The range of block ids this allocator owns.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_first() {
        let mut a = BlockAllocator::new(10..14);
        assert_eq!(a.alloc(), Some(BlockId(10)));
        assert_eq!(a.alloc(), Some(BlockId(11)));
        a.free(BlockId(10)).unwrap();
        assert_eq!(a.alloc(), Some(BlockId(10)));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = BlockAllocator::new(0..2);
        assert!(a.alloc().is_some());
        assert!(a.alloc().is_some());
        assert_eq!(a.alloc(), None);
        assert_eq!(a.free_count(), 0);
        assert_eq!(a.allocated_count(), 2);
    }

    #[test]
    fn double_free_is_reported() {
        let mut a = BlockAllocator::new(0..2);
        let b = a.alloc().unwrap();
        assert_eq!(a.free(b), Ok(()));
        assert_eq!(a.free(b), Err(FreeError::NotAllocated { block: b.0 }));
    }

    #[test]
    fn foreign_block_is_reported() {
        let mut a = BlockAllocator::new(0..2);
        assert_eq!(a.free(BlockId(5)), Err(FreeError::OutOfRange { block: 5 }));
        assert_eq!(
            a.retire(BlockId(5)),
            Err(FreeError::OutOfRange { block: 5 })
        );
    }

    #[test]
    fn counts_are_consistent() {
        let mut a = BlockAllocator::new(0..8);
        let blocks: Vec<_> = (0..5).map(|_| a.alloc().unwrap()).collect();
        assert_eq!(a.free_count(), 3);
        assert_eq!(a.allocated_count(), 5);
        for b in blocks {
            a.free(b).unwrap();
        }
        assert_eq!(a.free_count(), 8);
        assert_eq!(a.audit(), Ok(()));
    }

    #[test]
    fn retire_removes_block_from_rotation() {
        let mut a = BlockAllocator::new(0..3);
        let b = a.alloc().unwrap();
        a.retire(b).unwrap();
        assert_eq!(a.retired_count(), 1);
        assert!(a.is_retired(b));
        assert_eq!(a.free(b), Err(FreeError::Retired { block: b.0 }));
        assert_eq!(a.retire(b), Err(FreeError::Retired { block: b.0 }));
        let mut seen = Vec::new();
        while let Some(x) = a.alloc() {
            seen.push(x);
        }
        assert!(!seen.contains(&b), "retired block must never be handed out");
        assert_eq!(seen.len(), 2);
        assert_eq!(a.audit(), Ok(()));
    }

    #[test]
    fn free_records_wear() {
        let mut a = BlockAllocator::new(0..2);
        let b = a.alloc().unwrap();
        assert_eq!(a.wear(b), 0);
        a.free(b).unwrap();
        assert_eq!(a.wear(b), 1);
        assert_eq!(a.total_wear(), 1);
    }

    #[test]
    fn wear_aware_prefers_least_erased() {
        let mut a = BlockAllocator::new(0..2);
        a.set_wear_aware(true);
        let b0 = a.alloc().unwrap();
        assert_eq!(b0, BlockId(0));
        a.free(b0).unwrap();
        // Heap holds block 0 at wear 1 and untouched block 1 at wear 0.
        assert_eq!(a.alloc(), Some(BlockId(1)), "unworn block beats id order");
        a.free(BlockId(1)).unwrap();
        // Both at wear 1: the tie breaks by lowest id.
        assert_eq!(a.alloc(), Some(BlockId(0)), "wear ties break by id");
    }

    #[test]
    fn default_mode_ignores_wear() {
        let mut a = BlockAllocator::new(0..2);
        let b0 = a.alloc().unwrap();
        a.free(b0).unwrap();
        // Block 0 is more worn than block 1 but still allocates first.
        assert_eq!(a.wear(BlockId(0)), 1);
        assert_eq!(a.alloc(), Some(BlockId(0)));
    }

    #[test]
    fn audit_catches_retirement_desync() {
        let mut a = BlockAllocator::new(0..4);
        assert_eq!(a.audit(), Ok(()));
        a.desync_retired_for_test();
        let skew = a.audit().unwrap_err();
        assert_eq!(skew.total, 4);
        assert!(skew.to_string().contains("accounting skew"));
    }
}
