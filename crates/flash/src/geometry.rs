//! Physical layout of the simulated device.

/// Physical geometry of a simulated flash device.
///
/// The paper's testbed is an 8-channel device with 8 flash chips per channel
/// and 8 KB pages (Section 5.1); block size is not reported, so we default to
/// 128 pages per block (1 MiB blocks), which gives the same
/// groups-per-block granularity the paper's 32-page data segment groups
/// need.
///
/// Blocks are numbered globally; consecutive block ids are striped across
/// chips so that sequentially allocated blocks exploit chip parallelism,
/// matching how an FTL stripes superblocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Number of channels on the device.
    pub channels: u32,
    /// Number of flash chips attached to each channel.
    pub chips_per_channel: u32,
    /// Number of erase blocks on each chip.
    pub blocks_per_chip: u32,
    /// Number of pages in each erase block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_size: u32,
}

impl FlashGeometry {
    /// Geometry matching the paper's testbed shape (8 channels × 8 chips,
    /// 8 KiB pages) scaled to the requested raw capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `raw_bytes` is not large enough for at least one block per
    /// chip.
    pub fn paper_shape(raw_bytes: u64, page_size: u32, pages_per_block: u32) -> Self {
        let channels: u32 = 8;
        let chips_per_channel: u32 = 8;
        let chips = u64::from(channels * chips_per_channel);
        let block_bytes = u64::from(page_size) * u64::from(pages_per_block);
        let blocks_per_chip = raw_bytes / (chips * block_bytes);
        assert!(
            blocks_per_chip >= 1,
            "raw capacity {raw_bytes} too small for one {block_bytes}-byte block on each of {chips} chips"
        );
        assert!(
            blocks_per_chip * chips * block_bytes == raw_bytes,
            "raw capacity {raw_bytes} must be a multiple of {} (chips x block bytes), or the device would silently shrink",
            chips * block_bytes
        );
        assert!(
            blocks_per_chip <= u64::from(u32::MAX),
            "raw capacity {raw_bytes} implies {blocks_per_chip} blocks per chip, beyond the 32-bit block-id space"
        );
        // Checked above; saturation can never engage.
        let blocks_per_chip = u32::try_from(blocks_per_chip).unwrap_or(u32::MAX);
        Self {
            channels,
            chips_per_channel,
            blocks_per_chip,
            pages_per_block,
            page_size,
        }
    }

    /// Total number of chips on the device.
    pub fn chips(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// Total number of erase blocks on the device.
    pub fn blocks(&self) -> u32 {
        self.chips() * self.blocks_per_chip
    }

    /// Total number of pages on the device.
    pub fn pages(&self) -> u64 {
        u64::from(self.blocks()) * u64::from(self.pages_per_block)
    }

    /// Raw device capacity in bytes.
    pub fn raw_bytes(&self) -> u64 {
        self.pages() * u64::from(self.page_size)
    }

    /// Bytes per erase block.
    pub fn block_bytes(&self) -> u64 {
        u64::from(self.pages_per_block) * u64::from(self.page_size)
    }

    /// The chip that owns a global block id (blocks are striped round-robin
    /// over chips).
    pub fn chip_of_block(&self, block: u32) -> u32 {
        block % self.chips()
    }

    /// The channel a chip hangs off (chips are grouped per channel:
    /// chips `0..chips_per_channel` on channel 0, and so on). Used by the
    /// trace exporters to label chip tracks.
    pub fn channel_of_chip(&self, chip: u32) -> u32 {
        chip / self.chips_per_channel
    }
}

impl Default for FlashGeometry {
    /// A 256 MiB device in the paper's shape — the default experiment scale
    /// (the paper's 64 GB device scaled 256×, with DRAM scaled by the same
    /// ratio elsewhere).
    fn default() -> Self {
        Self::paper_shape(256 << 20, 8 << 10, 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_roundtrips_capacity() {
        let g = FlashGeometry::paper_shape(256 << 20, 8 << 10, 128);
        assert_eq!(g.raw_bytes(), 256 << 20);
        assert_eq!(g.chips(), 64);
        assert_eq!(g.block_bytes(), 1 << 20);
        assert_eq!(g.blocks(), 256);
    }

    #[test]
    fn block_striping_covers_all_chips() {
        let g = FlashGeometry::default();
        let mut seen = vec![false; g.chips() as usize];
        for b in 0..g.chips() {
            seen[g.chip_of_block(b) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn paper_shape_rejects_tiny_capacity() {
        let _ = FlashGeometry::paper_shape(1 << 20, 8 << 10, 128);
    }

    #[test]
    fn default_is_256mib() {
        assert_eq!(FlashGeometry::default().raw_bytes(), 256 << 20);
    }
}
