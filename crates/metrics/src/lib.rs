//! # anykey-metrics
//!
//! Measurement toolkit for the AnyKey reproduction experiments: latency
//! histograms with percentile/CDF extraction (the paper reports p95 tail
//! latencies and latency CDFs), IOPS computation over virtual time, and
//! ASCII/CSV report rendering for the benchmark harness.
//!
//! ```
//! use anykey_metrics::LatencyHist;
//!
//! let mut h = LatencyHist::new();
//! for v in [100, 200, 300, 400, 1_000_000] {
//!     h.record(v);
//! }
//! assert!(h.quantile(0.5) >= 200);
//! assert!(h.quantile(0.99) >= 400_000);
//! ```

/// Log-bucketed latency histograms.
pub mod hist;
/// Run-report assembly and rendering.
pub mod report;
/// Machine-readable `summary.json` schema, parser, and tolerance diff.
pub mod summary;
/// Virtual-time state-sample timelines, exporters, and the steady-state
/// analyzer.
pub mod timeline;
/// Virtual-time trace events, phase attribution, and exporters.
pub mod trace;

/// Log-bucketed latency histogram with exact quantile queries.
pub use hist::LatencyHist;
/// Report renderers (CSV and aligned-table output).
pub use report::{Csv, Table};
/// The `summary.json` schema and diff entry points.
pub use summary::{diff, parse, PointSummary, RunSummary};
/// The timeline sample model and steady-state detector.
pub use timeline::{
    detect_steady_state, LevelSample, StateSample, SteadyState, WafPoint, TIMELINE_SCHEMA_VERSION,
};
/// The trace event model and phase-breakdown aggregates.
pub use trace::{PhaseBreakdown, PhaseHists, TraceEvent, TRACE_SCHEMA_VERSION};
