//! Machine-readable run summaries (`summary.json`) and the
//! tolerance-band comparison behind `xtask bench-diff`.
//!
//! Every benchmark run emits one [`RunSummary`]: a stable, line-oriented
//! JSON document with one entry per experiment [`PointSummary`] (the
//! scheduler's unit of work). The schema is deliberately flat — every
//! metric is a top-level field of its point — so the diff logic can treat
//! a point as a list of `(metric, raw-token)` pairs and compare *raw
//! serialized tokens* for the deterministic metrics. That sidesteps any
//! float round-trip concern: two runs of the same simulation produce the
//! same bits, hence the same serialized token.
//!
//! Two metric classes exist:
//!
//! - **Exact** (everything except wall time): products of the
//!   discrete-virtual-time simulation. Any difference is a real behaviour
//!   change and fails the diff.
//! - **Wall time** (`wall_secs`, `total_wall_secs`): host-machine
//!   measurements. Compared with a multiplicative band (candidate may not
//!   exceed `baseline × band`); getting *faster* never fails.
//!
//! Everything here is dependency-free: the writer and the recursive-descent
//! parser are small enough that pulling in a JSON crate would cost more
//! than it saves (and the workspace is hermetic — no registry access).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Version stamp of the `summary.json` schema. Bump on any field change so
/// `bench-diff` can refuse to compare incompatible documents.
///
/// v2 added the per-point phase-breakdown fields (`phase_*_ns`,
/// `phase_*_p99_ns`) so the regression gate can localize *which phase* of
/// the request path regressed, not just that end-to-end latency moved.
///
/// v3 added `p95_read_ns`/`p95_write_ns` (the paper reports p95 tails) and
/// the steady-state fields `converged_waf`/`burnin_ns` derived from the
/// runner's always-on cumulative-WAF curve, so the gate can tell a
/// converged measurement from one still in burn-in.
pub const SCHEMA_VERSION: u64 = 3;

/// Default multiplicative tolerance for wall-time metrics: the candidate
/// may take up to 5× the baseline's wall seconds before the diff fails.
/// Deliberately loose — CI runners and developer machines differ widely,
/// and the deterministic metrics are the real gate.
pub const DEFAULT_WALL_BAND: f64 = 5.0;

/// Field names whose values are host wall-time measurements and therefore
/// compared with a band instead of exactly.
pub const WALL_FIELDS: [&str; 2] = ["wall_secs", "total_wall_secs"];

/// Absolute floor (seconds) of the wall-time tolerance: a candidate below
/// this never fails, whatever the baseline. Sub-second points inflate
/// several-fold from scheduling noise alone (e.g. `--jobs 4` on one core),
/// which says nothing about the simulation.
pub const WALL_FLOOR_SECS: f64 = 1.0;

/// One scheduled experiment point's metrics, as written to `summary.json`.
///
/// All latency metrics are virtual nanoseconds; `wall_secs` is the only
/// host-clock field.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSummary {
    /// Unique row key within the run (`experiment/workload/system[/variant]`).
    pub key: String,
    /// Experiment id (`fig10`, `table3`, ...).
    pub experiment: String,
    /// Workload name.
    pub workload: String,
    /// System under test (display label, e.g. `AnyKey+`).
    pub system: String,
    /// Operations executed in the measured phase (0 for warm-up/fill
    /// points).
    pub ops: u64,
    /// Measured GET operations.
    pub read_ops: u64,
    /// Measured PUT/DELETE operations.
    pub write_ops: u64,
    /// Measured SCAN operations.
    pub scan_ops: u64,
    /// Virtual-time span of the point (end − start of the measured phase,
    /// or the device horizon for warm-up/fill points).
    pub virtual_ns: u64,
    /// Operations per virtual second over the measured phase.
    pub iops: f64,
    /// Median GET latency (virtual ns).
    pub p50_read_ns: u64,
    /// 95th-percentile GET latency (virtual ns).
    pub p95_read_ns: u64,
    /// 99th-percentile GET latency (virtual ns).
    pub p99_read_ns: u64,
    /// Median PUT/DELETE latency (virtual ns).
    pub p50_write_ns: u64,
    /// 95th-percentile PUT/DELETE latency (virtual ns).
    pub p95_write_ns: u64,
    /// 99th-percentile PUT/DELETE latency (virtual ns).
    pub p99_write_ns: u64,
    /// Write amplification: flash page programs ÷ minimal pages for the
    /// host bytes written (see the bench scheduler for the denominator).
    pub waf: f64,
    /// Mean cumulative WAF over the detected steady-state window of the
    /// measured phase (0 when the curve never settled or the point has no
    /// measured ops).
    pub converged_waf: f64,
    /// Virtual ns from measured-phase start to the steady-state window (0
    /// when never settled or not applicable).
    pub burnin_ns: u64,
    /// Flash page reads servicing host GETs/SCANs.
    pub host_reads: u64,
    /// Flash page programs of host data outside compaction.
    pub host_writes: u64,
    /// Flash reads of flash-resident metadata on the GET path.
    pub meta_reads: u64,
    /// Flash programs of flash-resident metadata.
    pub meta_writes: u64,
    /// Flash reads issued by compaction.
    pub comp_reads: u64,
    /// Flash programs issued by compaction.
    pub comp_writes: u64,
    /// Flash reads issued by garbage collection.
    pub gc_reads: u64,
    /// Flash programs issued by garbage collection.
    pub gc_writes: u64,
    /// Value-log page reads.
    pub log_reads: u64,
    /// Value-log page programs.
    pub log_writes: u64,
    /// Block erases.
    pub erases: u64,
    /// Media read-retry steps (nonzero only under fault injection).
    pub retry_reads: u64,
    /// Total virtual ns measured requests spent queue-waiting (the
    /// unattributed residual: flush stalls, closed-loop head-of-line).
    pub phase_queue_ns: u64,
    /// Total virtual ns measured requests spent in metadata flash reads.
    pub phase_meta_ns: u64,
    /// Total virtual ns measured requests spent in data flash reads.
    pub phase_data_ns: u64,
    /// Total virtual ns measured requests spent in value-log flash reads.
    pub phase_log_ns: u64,
    /// Total virtual ns measured requests spent in engine CPU bookkeeping.
    pub phase_engine_ns: u64,
    /// p99 of the per-request queue-wait phase (virtual ns).
    pub phase_queue_p99_ns: u64,
    /// p99 of the per-request metadata-read phase (virtual ns).
    pub phase_meta_p99_ns: u64,
    /// p99 of the per-request data-read phase (virtual ns).
    pub phase_data_p99_ns: u64,
    /// p99 of the per-request value-log-read phase (virtual ns).
    pub phase_log_p99_ns: u64,
    /// p99 of the per-request engine-bookkeeping phase (virtual ns).
    pub phase_engine_p99_ns: u64,
    /// Host wall-clock seconds the point took to simulate (band-compared).
    pub wall_secs: f64,
}

/// A whole benchmark run's summary: scale identity plus one
/// [`PointSummary`] per scheduled point, in deterministic point order.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Device capacity in bytes the run was scaled to.
    pub capacity_bytes: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Host wall-clock seconds for the whole sweep (band-compared).
    pub total_wall_secs: f64,
    /// Per-point metrics, in scheduler point order.
    pub points: Vec<PointSummary>,
}

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl RunSummary {
    /// Renders the summary as stable, human-diffable JSON: one point per
    /// block, fixed field order, fixed float precision.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"capacity_bytes\": {},", self.capacity_bytes);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"total_wall_secs\": {:.6},", self.total_wall_secs);
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"key\": \"{}\",", esc(&p.key));
            let _ = writeln!(s, "      \"experiment\": \"{}\",", esc(&p.experiment));
            let _ = writeln!(s, "      \"workload\": \"{}\",", esc(&p.workload));
            let _ = writeln!(s, "      \"system\": \"{}\",", esc(&p.system));
            let _ = writeln!(s, "      \"ops\": {},", p.ops);
            let _ = writeln!(s, "      \"read_ops\": {},", p.read_ops);
            let _ = writeln!(s, "      \"write_ops\": {},", p.write_ops);
            let _ = writeln!(s, "      \"scan_ops\": {},", p.scan_ops);
            let _ = writeln!(s, "      \"virtual_ns\": {},", p.virtual_ns);
            let _ = writeln!(s, "      \"iops\": {:.6},", p.iops);
            let _ = writeln!(s, "      \"p50_read_ns\": {},", p.p50_read_ns);
            let _ = writeln!(s, "      \"p95_read_ns\": {},", p.p95_read_ns);
            let _ = writeln!(s, "      \"p99_read_ns\": {},", p.p99_read_ns);
            let _ = writeln!(s, "      \"p50_write_ns\": {},", p.p50_write_ns);
            let _ = writeln!(s, "      \"p95_write_ns\": {},", p.p95_write_ns);
            let _ = writeln!(s, "      \"p99_write_ns\": {},", p.p99_write_ns);
            let _ = writeln!(s, "      \"waf\": {:.6},", p.waf);
            let _ = writeln!(s, "      \"converged_waf\": {:.6},", p.converged_waf);
            let _ = writeln!(s, "      \"burnin_ns\": {},", p.burnin_ns);
            let _ = writeln!(s, "      \"host_reads\": {},", p.host_reads);
            let _ = writeln!(s, "      \"host_writes\": {},", p.host_writes);
            let _ = writeln!(s, "      \"meta_reads\": {},", p.meta_reads);
            let _ = writeln!(s, "      \"meta_writes\": {},", p.meta_writes);
            let _ = writeln!(s, "      \"comp_reads\": {},", p.comp_reads);
            let _ = writeln!(s, "      \"comp_writes\": {},", p.comp_writes);
            let _ = writeln!(s, "      \"gc_reads\": {},", p.gc_reads);
            let _ = writeln!(s, "      \"gc_writes\": {},", p.gc_writes);
            let _ = writeln!(s, "      \"log_reads\": {},", p.log_reads);
            let _ = writeln!(s, "      \"log_writes\": {},", p.log_writes);
            let _ = writeln!(s, "      \"erases\": {},", p.erases);
            let _ = writeln!(s, "      \"retry_reads\": {},", p.retry_reads);
            let _ = writeln!(s, "      \"phase_queue_ns\": {},", p.phase_queue_ns);
            let _ = writeln!(s, "      \"phase_meta_ns\": {},", p.phase_meta_ns);
            let _ = writeln!(s, "      \"phase_data_ns\": {},", p.phase_data_ns);
            let _ = writeln!(s, "      \"phase_log_ns\": {},", p.phase_log_ns);
            let _ = writeln!(s, "      \"phase_engine_ns\": {},", p.phase_engine_ns);
            let _ = writeln!(s, "      \"phase_queue_p99_ns\": {},", p.phase_queue_p99_ns);
            let _ = writeln!(s, "      \"phase_meta_p99_ns\": {},", p.phase_meta_p99_ns);
            let _ = writeln!(s, "      \"phase_data_p99_ns\": {},", p.phase_data_p99_ns);
            let _ = writeln!(s, "      \"phase_log_p99_ns\": {},", p.phase_log_p99_ns);
            let _ = writeln!(
                s,
                "      \"phase_engine_p99_ns\": {},",
                p.phase_engine_p99_ns
            );
            let _ = writeln!(s, "      \"wall_secs\": {:.6}", p.wall_secs);
            s.push_str(if i + 1 == self.points.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the JSON rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

// ---------------------------------------------------------------------------
// Parsing: a minimal recursive-descent JSON reader that keeps every scalar
// as its *raw token* (so exact comparison is token equality, with no float
// round-trip in between).
// ---------------------------------------------------------------------------

/// A summary document as parsed back from disk: field names mapped to raw
/// serialized tokens, plus the per-point field lists.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSummary {
    /// Top-level scalar fields (`schema_version`, `seed`, ...), in document
    /// order, as `(name, raw token)`.
    pub fields: Vec<(String, String)>,
    /// Per-point field lists, in document order.
    pub points: Vec<ParsedPoint>,
}

/// One parsed point: its key plus all scalar fields as raw tokens.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedPoint {
    /// The point's unique `key` field (unescaped).
    pub key: String,
    /// All scalar fields, in document order, as `(name, raw token)`.
    pub fields: Vec<(String, String)>,
}

impl ParsedSummary {
    /// Looks up a top-level field's raw token.
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

impl ParsedPoint {
    /// Looks up a point field's raw token.
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A summary parse failure, with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected or found.
    pub msg: String,
    /// Byte offset into the document.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "summary parse error at byte {}: {}", self.at, self.msg)
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.to_string(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self
            .src
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.src.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.src.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.src.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self.src.get(self.pos + 1..self.pos + 5);
                            let code = hex
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match code {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    // Multibyte UTF-8 passes through byte by byte; the
                    // source is a &str upstream so it is valid UTF-8.
                    out.push_str(
                        std::str::from_utf8(&self.src[self.pos..self.pos + utf8_len(c)]).map_err(
                            |_| ParseError {
                                msg: "invalid utf-8".into(),
                                at: self.pos,
                            },
                        )?,
                    );
                    self.pos += utf8_len(c);
                }
            }
        }
    }

    /// A scalar (number / string / bool / null) as its raw token text.
    /// Strings are returned unescaped-and-requoted so token comparison is
    /// content comparison.
    fn scalar(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(format!("\"{}\"", esc(&self.string()?))),
            Some(c) if c == b'-' || c.is_ascii_digit() || c == b't' || c == b'f' || c == b'n' => {
                let start = self.pos;
                while self.src.get(self.pos).is_some_and(|&b| {
                    b.is_ascii_alphanumeric() || b == b'-' || b == b'+' || b == b'.'
                }) {
                    self.pos += 1;
                }
                if self.pos == start {
                    return self.err("empty scalar");
                }
                Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
            }
            _ => self.err("expected scalar"),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Parses a `summary.json` document produced by [`RunSummary::to_json`]
/// (or a hand-edited equivalent: field order is free, unknown fields are
/// kept and compared like any other).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed JSON or a document whose shape is
/// not `{scalars..., "points": [{scalars...}...]}`.
pub fn parse(src: &str) -> Result<ParsedSummary, ParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut out = ParsedSummary {
        fields: Vec::new(),
        points: Vec::new(),
    };
    p.eat(b'{')?;
    loop {
        if p.peek() == Some(b'}') {
            break;
        }
        let name = p.string()?;
        p.eat(b':')?;
        if name == "points" {
            p.eat(b'[')?;
            loop {
                if p.peek() == Some(b']') {
                    p.pos += 1;
                    break;
                }
                p.eat(b'{')?;
                let mut point = ParsedPoint {
                    key: String::new(),
                    fields: Vec::new(),
                };
                loop {
                    if p.peek() == Some(b'}') {
                        p.pos += 1;
                        break;
                    }
                    let fname = p.string()?;
                    p.eat(b':')?;
                    let raw = if fname == "key" && p.peek() == Some(b'"') {
                        let s = p.string()?;
                        let raw = format!("\"{}\"", esc(&s));
                        point.key = s;
                        raw
                    } else {
                        p.scalar()?
                    };
                    point.fields.push((fname, raw));
                    if p.peek() == Some(b',') {
                        p.pos += 1;
                    }
                }
                out.points.push(point);
                if p.peek() == Some(b',') {
                    p.pos += 1;
                }
            }
        } else {
            out.fields.push((name, p.scalar()?));
        }
        if p.peek() == Some(b',') {
            p.pos += 1;
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

/// How a single compared metric fared.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Point key (empty for top-level fields).
    pub key: String,
    /// Metric name.
    pub metric: String,
    /// Baseline raw token (empty when missing).
    pub baseline: String,
    /// Candidate raw token (empty when missing).
    pub candidate: String,
    /// Whether this row is within tolerance.
    pub ok: bool,
    /// Whether a band (wall-time) comparison was used instead of exact.
    pub banded: bool,
}

/// The outcome of comparing two summaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Every failed comparison (passing rows are not recorded to keep the
    /// report proportional to the damage).
    pub failures: Vec<DiffRow>,
    /// Point keys present in the baseline but not the candidate.
    pub missing: Vec<String>,
    /// Point keys present in the candidate but not the baseline.
    pub extra: Vec<String>,
    /// Metrics compared in total (both exact and banded).
    pub compared: usize,
}

impl DiffReport {
    /// Whether the candidate is free of regressions.
    pub fn pass(&self) -> bool {
        self.failures.is_empty() && self.missing.is_empty() && self.extra.is_empty()
    }
}

fn band_ok(base: &str, cand: &str, band: f64) -> bool {
    match (base.parse::<f64>(), cand.parse::<f64>()) {
        (Ok(b), Ok(c)) => c <= (b * band).max(WALL_FLOOR_SECS),
        _ => false,
    }
}

/// Compares `candidate` against `baseline`.
///
/// Exact metrics (everything but [`WALL_FIELDS`]) must match token for
/// token; wall-time metrics pass while `candidate ≤ baseline × wall_band`
/// (with a small absolute floor so near-zero baselines do not flap).
/// Points are matched by `key`; missing or extra points fail the diff.
pub fn diff(baseline: &ParsedSummary, candidate: &ParsedSummary, wall_band: f64) -> DiffReport {
    let mut report = DiffReport::default();
    let mut check = |key: &str, metric: &str, base: Option<&str>, cand: Option<&str>| {
        let banded = WALL_FIELDS.contains(&metric);
        let (base, cand) = (base.unwrap_or(""), cand.unwrap_or(""));
        let ok = if banded {
            band_ok(base, cand, wall_band)
        } else {
            !base.is_empty() && base == cand
        };
        report.compared += 1;
        if !ok {
            report.failures.push(DiffRow {
                key: key.to_string(),
                metric: metric.to_string(),
                baseline: base.to_string(),
                candidate: cand.to_string(),
                ok,
                banded,
            });
        }
    };

    for (name, base) in &baseline.fields {
        check("", name, Some(base), candidate.field(name));
    }
    for bp in &baseline.points {
        let Some(cp) = candidate.points.iter().find(|p| p.key == bp.key) else {
            report.missing.push(bp.key.clone());
            continue;
        };
        for (name, base) in &bp.fields {
            if name == "key" {
                continue;
            }
            check(&bp.key, name, Some(base), cp.field(name));
        }
    }
    for cp in &candidate.points {
        if !baseline.points.iter().any(|p| p.key == cp.key) {
            report.extra.push(cp.key.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_point(key: &str, iops: f64, wall: f64) -> PointSummary {
        PointSummary {
            key: key.to_string(),
            experiment: "fig10".into(),
            workload: "ZippyDB".into(),
            system: "AnyKey+".into(),
            ops: 1000,
            read_ops: 800,
            write_ops: 200,
            scan_ops: 0,
            virtual_ns: 5_000_000,
            iops,
            p50_read_ns: 100,
            p95_read_ns: 700,
            p99_read_ns: 900,
            p50_write_ns: 110,
            p95_write_ns: 750,
            p99_write_ns: 950,
            waf: 2.5,
            converged_waf: 2.4,
            burnin_ns: 1_000_000,
            host_reads: 10,
            host_writes: 2,
            meta_reads: 3,
            meta_writes: 4,
            comp_reads: 5,
            comp_writes: 6,
            gc_reads: 0,
            gc_writes: 0,
            log_reads: 7,
            log_writes: 8,
            erases: 9,
            retry_reads: 0,
            phase_queue_ns: 11,
            phase_meta_ns: 12,
            phase_data_ns: 13,
            phase_log_ns: 14,
            phase_engine_ns: 15,
            phase_queue_p99_ns: 21,
            phase_meta_p99_ns: 22,
            phase_data_p99_ns: 23,
            phase_log_p99_ns: 24,
            phase_engine_p99_ns: 25,
            wall_secs: wall,
        }
    }

    fn sample(iops: f64, wall: f64) -> RunSummary {
        RunSummary {
            schema_version: SCHEMA_VERSION,
            capacity_bytes: 64 << 20,
            seed: 42,
            total_wall_secs: wall * 2.0,
            points: vec![
                sample_point("fig10/ZippyDB/AnyKey+", iops, wall),
                sample_point("fig10/ZippyDB/PinK", iops / 3.0, wall),
            ],
        }
    }

    #[test]
    fn json_roundtrip_preserves_fields() {
        let s = sample(123456.789, 1.5);
        let parsed = parse(&s.to_json()).unwrap();
        assert_eq!(parsed.field("schema_version"), Some("3"));
        assert_eq!(parsed.points[0].field("phase_data_ns"), Some("13"));
        assert_eq!(parsed.points[0].field("p95_read_ns"), Some("700"));
        assert_eq!(parsed.points[0].field("converged_waf"), Some("2.400000"));
        assert_eq!(parsed.points[0].field("burnin_ns"), Some("1000000"));
        assert_eq!(parsed.field("seed"), Some("42"));
        assert_eq!(parsed.points.len(), 2);
        assert_eq!(parsed.points[0].key, "fig10/ZippyDB/AnyKey+");
        assert_eq!(parsed.points[0].field("iops"), Some("123456.789000"));
        assert_eq!(parsed.points[0].field("erases"), Some("9"));
    }

    #[test]
    fn identical_summaries_pass() {
        let s = sample(1000.0, 1.0);
        let a = parse(&s.to_json()).unwrap();
        let b = parse(&s.to_json()).unwrap();
        let d = diff(&a, &b, DEFAULT_WALL_BAND);
        assert!(d.pass(), "unexpected failures: {:?}", d.failures);
        assert!(d.compared > 50);
    }

    #[test]
    fn exact_metric_mismatch_fails() {
        let base = sample(1000.0, 1.0);
        let mut cand = sample(1000.0, 1.0);
        cand.points[1].erases += 1;
        let d = diff(
            &parse(&base.to_json()).unwrap(),
            &parse(&cand.to_json()).unwrap(),
            DEFAULT_WALL_BAND,
        );
        assert!(!d.pass());
        assert_eq!(d.failures.len(), 1);
        assert_eq!(d.failures[0].metric, "erases");
        assert_eq!(d.failures[0].key, "fig10/ZippyDB/PinK");
        assert!(!d.failures[0].banded);
    }

    #[test]
    fn wall_time_within_band_passes() {
        let base = sample(1000.0, 1.0);
        let mut cand = sample(1000.0, 1.0);
        // 3× slower: inside the default 5× band. Also exercise "faster
        // never fails".
        cand.points[0].wall_secs = 3.0;
        cand.points[1].wall_secs = 0.01;
        cand.total_wall_secs = 3.01;
        let d = diff(
            &parse(&base.to_json()).unwrap(),
            &parse(&cand.to_json()).unwrap(),
            DEFAULT_WALL_BAND,
        );
        assert!(d.pass(), "unexpected failures: {:?}", d.failures);
    }

    #[test]
    fn wall_time_band_exceeded_fails() {
        let base = sample(1000.0, 1.0);
        let mut cand = sample(1000.0, 1.0);
        cand.points[0].wall_secs = 6.0; // > 5× baseline
        let d = diff(
            &parse(&base.to_json()).unwrap(),
            &parse(&cand.to_json()).unwrap(),
            DEFAULT_WALL_BAND,
        );
        assert!(!d.pass());
        assert_eq!(d.failures.len(), 1);
        assert!(d.failures[0].banded);
        assert_eq!(d.failures[0].metric, "wall_secs");
    }

    #[test]
    fn missing_and_extra_points_fail() {
        let base = sample(1000.0, 1.0);
        let mut cand = sample(1000.0, 1.0);
        cand.points[1].key = "fig10/ZippyDB/AnyKey".into();
        let d = diff(
            &parse(&base.to_json()).unwrap(),
            &parse(&cand.to_json()).unwrap(),
            DEFAULT_WALL_BAND,
        );
        assert!(!d.pass());
        assert_eq!(d.missing, vec!["fig10/ZippyDB/PinK".to_string()]);
        assert_eq!(d.extra, vec!["fig10/ZippyDB/AnyKey".to_string()]);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut s = sample(1.0, 1.0);
        s.points[0].key = "odd \"key\"\nwith\\stuff".into();
        s.points[0].workload = "w,1".into();
        let parsed = parse(&s.to_json()).unwrap();
        assert_eq!(parsed.points[0].key, "odd \"key\"\nwith\\stuff");
    }

    #[test]
    fn near_zero_wall_baseline_does_not_flap() {
        let mut base = sample(1.0, 0.0);
        base.total_wall_secs = 0.0;
        let mut cand = sample(1.0, 0.0);
        cand.total_wall_secs = 0.0005;
        cand.points[0].wall_secs = 0.0009;
        let d = diff(
            &parse(&base.to_json()).unwrap(),
            &parse(&cand.to_json()).unwrap(),
            DEFAULT_WALL_BAND,
        );
        assert!(d.pass(), "unexpected failures: {:?}", d.failures);
    }
}
