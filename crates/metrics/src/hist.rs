//! Log-bucketed latency histograms.

use std::fmt;

/// Sub-buckets per power-of-two octave. 32 sub-buckets bound the relative
/// quantile error at ~3 %, plenty for tail-latency comparison.
const SUBS: usize = 32;
/// Number of octaves covered: values up to 2^40 ns (~18 minutes).
const OCTAVES: usize = 41;

/// A latency histogram over nanosecond samples.
///
/// Values are binned into `octave × sub-bucket` cells (an HDR-histogram-like
/// layout) so that recording is O(1), memory is constant, and quantiles up
/// to p99.99 are accurate to a few percent — the precision the paper's CDF
/// plots need.
#[derive(Clone)]
pub struct LatencyHist {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; SUBS * OCTAVES],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUBS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as usize; // floor(log2(value))
        let shift = octave.saturating_sub(5); // 2^5 = SUBS
        let sub = ((value >> shift) as usize) & (SUBS - 1);
        let idx = (octave - 4) * SUBS + sub;
        idx.min(SUBS * OCTAVES - 1)
    }

    fn bucket_upper_bound(idx: usize) -> u64 {
        if idx < SUBS {
            return idx as u64;
        }
        let octave = idx / SUBS + 4;
        let sub = idx % SUBS;
        let shift = octave.saturating_sub(5);
        ((((1u64 << 5) + sub as u64 + 1) << shift) - 1).max(1)
    }

    /// Records one sample.
    pub fn record(&mut self, value_ns: u64) {
        self.buckets[Self::bucket_of(value_ns)] += 1;
        self.count += 1;
        self.sum += value_ns as u128;
        self.max = self.max.max(value_ns);
        self.min = self.min.min(value_ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of all samples, or 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// The `q`-quantile (e.g. `0.95` for the paper's p95 tail latency).
    ///
    /// Returns the upper bound of the bucket containing the quantile, or 0
    /// when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median latency — shorthand for `quantile(0.50)`.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency (the paper's headline tail metric) —
    /// shorthand for `quantile(0.95)`.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency — shorthand for `quantile(0.99)`.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency — shorthand for `quantile(0.999)`.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Sum of all recorded samples, saturating at `u64::MAX`.
    pub fn total(&self) -> u64 {
        u64::try_from(self.sum).unwrap_or(u64::MAX)
    }

    /// CDF sample points `(latency_ns, cumulative_fraction)` over non-empty
    /// buckets — one row per bucket, ready for plotting the paper's
    /// Figure 10/15/16/17/18 curves.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                Self::bucket_upper_bound(i).min(self.max),
                seen as f64 / self.count as f64,
            ));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHist")
            .field("count", &self.count)
            .field("mean_ns", &self.mean())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

impl fmt::Display for LatencyHist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={}us p50={}us p95={}us p99={}us max={}us",
            self.count,
            self.mean() / 1000,
            self.p50() / 1000,
            self.p95() / 1000,
            self.p99() / 1000,
            self.max() / 1000,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.95), 0);
        assert_eq!(h.mean(), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn empty_histogram_accessors_are_zero() {
        let h = LatencyHist::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.p999(), 0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn single_value_dominates_all_quantiles() {
        let mut h = LatencyHist::new();
        h.record(12345);
        assert_eq!(h.quantile(0.0), 12345);
        assert_eq!(h.quantile(1.0), 12345);
        assert_eq!(h.max(), 12345);
        assert_eq!(h.min(), 12345);
    }

    #[test]
    fn single_sample_accessors_all_return_it() {
        let mut h = LatencyHist::new();
        h.record(777);
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p95(), 777);
        assert_eq!(h.p99(), 777);
        assert_eq!(h.p999(), 777);
        assert_eq!(h.total(), 777);
    }

    #[test]
    fn accessors_match_generic_quantile() {
        let mut h = LatencyHist::new();
        for i in 1..=10_000u64 {
            h.record(i * 13);
        }
        assert_eq!(h.p50(), h.quantile(0.50));
        assert_eq!(h.p95(), h.quantile(0.95));
        assert_eq!(h.p99(), h.quantile(0.99));
        assert_eq!(h.p999(), h.quantile(0.999));
    }

    #[test]
    fn total_saturates_instead_of_overflowing() {
        let mut h = LatencyHist::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.total(), u64::MAX);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LatencyHist::new();
        for i in 1..=100_000u64 {
            h.record(i * 17);
        }
        let exact_p95 = 95_000 * 17;
        let est = h.quantile(0.95);
        let rel = (est as f64 - exact_p95 as f64).abs() / exact_p95 as f64;
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LatencyHist::new();
        for i in 0..1000u64 {
            h.record(i * i);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut whole = LatencyHist::new();
        for i in 0..5000u64 {
            let v = i * 31 % 100_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile(0.95), whole.quantile(0.95));
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn tiny_values_use_exact_buckets() {
        let mut h = LatencyHist::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LatencyHist::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(0.5) > 0);
    }
}
