//! Virtual-time tracing: flash-op lifecycle events, engine spans,
//! per-request phase breakdown, and the JSONL / Chrome-trace exporters.
//!
//! The simulator runs on a discrete virtual clock, so a trace is not a
//! *sample* of behaviour the way a wall-clock profiler's output is — it is
//! the behaviour, bit for bit. Every timestamp below is virtual
//! nanoseconds; none of this module may ever touch the host clock (the
//! `trace-no-wall-clock` xtask lint enforces that). As a consequence,
//! traces are byte-identical across runs, machines, and `--jobs` levels.
//!
//! Three event kinds exist, one per layer of the stack:
//!
//! - [`TraceEvent::FlashOp`] — one flash operation's lifecycle as the chip
//!   scheduler saw it: issue time, dispatch (start) time, completion, the
//!   cause tag, and the chip/channel it ran on. `start − issued` is the
//!   queueing stall the op suffered behind other traffic.
//! - [`TraceEvent::Span`] — one background activity window in an engine:
//!   a flush, compaction, or GC relocation, with the level/group it worked
//!   on and the flash pages it moved.
//! - [`TraceEvent::Request`] — one host request with its final
//!   [`PhaseBreakdown`]: where, phase by phase, its latency went.
//!
//! Two export formats share the same event model: line-oriented JSONL
//! (schema-versioned, parsed back by [`parse_jsonl`] and summarized by
//! `xtask trace`) and Chrome trace-event JSON loadable in Perfetto, with
//! one track per chip and flow arrows from compaction/GC spans to the
//! flash traffic they cause.

use std::fmt;

use crate::hist::LatencyHist;
use crate::summary::esc;

/// Version stamp of the JSONL trace schema. Bump on any event-shape
/// change so `xtask trace` can refuse files it does not understand.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Where one request's latency went, phase by phase, in virtual ns.
///
/// The four attributed phases are accumulated on the request's critical
/// path as the engine executes it; `queue_wait` is the exact residual
/// `latency − (attributed sum)`, which is where head-of-line blocking
/// (e.g. a PUT stalling behind a buffer flush) lands. The five fields
/// therefore always sum to the request's end-to-end latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Unattributed residual: queueing and head-of-line blocking.
    pub queue_wait: u64,
    /// Flash reads of engine metadata (level lists, spilled segments).
    pub meta_read: u64,
    /// Flash reads of key/value data pages.
    pub data_read: u64,
    /// Flash reads of the value log.
    pub log_read: u64,
    /// Engine CPU bookkeeping (hashing, DRAM index operations).
    pub engine: u64,
}

impl PhaseBreakdown {
    /// Sum of the explicitly attributed phases (everything but
    /// `queue_wait`).
    pub fn attributed(&self) -> u64 {
        self.meta_read
            .saturating_add(self.data_read)
            .saturating_add(self.log_read)
            .saturating_add(self.engine)
    }

    /// Closes the breakdown for a request of total latency `latency_ns`:
    /// sets `queue_wait` to the unattributed residual.
    pub fn finish(&mut self, latency_ns: u64) {
        self.queue_wait = latency_ns.saturating_sub(self.attributed());
    }

    /// Sum of all five phases — the request's end-to-end latency once
    /// [`PhaseBreakdown::finish`] ran.
    pub fn total(&self) -> u64 {
        self.queue_wait.saturating_add(self.attributed())
    }
}

/// Per-phase latency histograms over a run's measured requests.
///
/// This is the *aggregate* the bench harness keeps always-on (it feeds the
/// `phase_*` fields of `summary.json` v2); raw [`TraceEvent`] streams are
/// only collected when tracing is requested.
#[derive(Debug, Clone, Default)]
pub struct PhaseHists {
    /// Queue-wait phase samples, one per request.
    pub queue_wait: LatencyHist,
    /// Metadata-read phase samples, one per request.
    pub meta_read: LatencyHist,
    /// Data-read phase samples, one per request.
    pub data_read: LatencyHist,
    /// Value-log-read phase samples, one per request.
    pub log_read: LatencyHist,
    /// Engine-bookkeeping phase samples, one per request.
    pub engine: LatencyHist,
}

impl PhaseHists {
    /// Empty histograms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request's breakdown (one sample into each phase hist).
    pub fn record(&mut self, pb: &PhaseBreakdown) {
        self.queue_wait.record(pb.queue_wait);
        self.meta_read.record(pb.meta_read);
        self.data_read.record(pb.data_read);
        self.log_read.record(pb.log_read);
        self.engine.record(pb.engine);
    }

    /// Merges another set of phase histograms into this one.
    pub fn merge(&mut self, other: &PhaseHists) {
        self.queue_wait.merge(&other.queue_wait);
        self.meta_read.merge(&other.meta_read);
        self.data_read.merge(&other.data_read);
        self.log_read.merge(&other.log_read);
        self.engine.merge(&other.engine);
    }

    /// `(name, hist)` pairs in canonical display order.
    pub fn named(&self) -> [(&'static str, &LatencyHist); 5] {
        [
            ("queue-wait", &self.queue_wait),
            ("meta-read", &self.meta_read),
            ("data-read", &self.data_read),
            ("log-read", &self.log_read),
            ("engine", &self.engine),
        ]
    }
}

/// One trace event, in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One flash operation's lifecycle on a chip.
    FlashOp {
        /// Operation kind: `read`, `program`, or `erase`.
        op: String,
        /// Cause tag (`host-read`, `compaction-write`, ...).
        cause: String,
        /// Chip index the op ran on.
        chip: u32,
        /// Channel the chip belongs to.
        channel: u32,
        /// Virtual ns the op was issued (entered the chip queue).
        issued: u64,
        /// Virtual ns the chip started executing the op.
        start: u64,
        /// Virtual ns the op completed.
        done: u64,
        /// Media retry steps the op needed (fault injection).
        retries: u32,
    },
    /// One engine background-activity window (flush / compaction / GC).
    Span {
        /// Span kind: `flush`, `compaction`, or `gc`.
        kind: String,
        /// Detail label within the kind (e.g. `inline-rewrite`).
        label: String,
        /// Level / group the span worked on (0 when not applicable).
        level: u32,
        /// Monotone span id, unique within one engine's trace.
        id: u64,
        /// Virtual ns the span began.
        start: u64,
        /// Virtual ns the span ended.
        end: u64,
        /// Flash pages read during the span.
        pages_read: u64,
        /// Flash pages programmed during the span.
        pages_written: u64,
    },
    /// One host request with its final phase attribution.
    Request {
        /// Request kind: `get`, `put`, `delete`, or `scan`.
        op: String,
        /// Zero-based request sequence number within the run.
        seq: u64,
        /// Virtual ns the request was issued.
        issued: u64,
        /// Virtual ns the request completed.
        done: u64,
        /// Whether the key was found (GET/DELETE; `true` for PUT/SCAN).
        found: bool,
        /// Flash page reads on the request's critical path.
        flash_reads: u32,
        /// Final phase breakdown; fields sum to `done − issued`.
        phases: PhaseBreakdown,
    },
}

impl TraceEvent {
    /// The event's primary timestamp, used for timeline ordering: issue
    /// time for flash ops and requests, start time for spans.
    pub fn ts(&self) -> u64 {
        match self {
            TraceEvent::FlashOp { issued, .. } => *issued,
            TraceEvent::Span { start, .. } => *start,
            TraceEvent::Request { issued, .. } => *issued,
        }
    }
}

/// Sorts a merged event buffer into canonical order: primary timestamp,
/// then a total tie-break over every discriminating field. The order must
/// not depend on recording order at all — engines may enumerate internal
/// hash tables while issuing same-instant ops (e.g. a bulk erase touching
/// many chips), and byte-identical traces across runs and `--jobs` levels
/// require that such ties land deterministically.
pub fn sort_events(events: &mut [TraceEvent]) {
    events.sort_by(|a, b| canonical_key(a).cmp(&canonical_key(b)));
}

/// Total-order key for [`sort_events`]: timestamp, event-kind rank, then
/// enough fields to discriminate any two distinct events (span ids and
/// request seqs are unique per trace; flash ops are told apart by chip,
/// completion, op and cause — two ops identical in all of those render
/// identical lines, so their relative order cannot matter).
fn canonical_key(e: &TraceEvent) -> (u64, u8, u64, u64, u64, &str, &str) {
    match e {
        TraceEvent::FlashOp {
            op,
            cause,
            chip,
            issued,
            start,
            done,
            ..
        } => (
            *issued,
            0,
            *done,
            u64::from(*chip),
            *start,
            op.as_str(),
            cause.as_str(),
        ),
        TraceEvent::Span { id, start, .. } => (*start, 1, *id, 0, 0, "", ""),
        TraceEvent::Request { seq, issued, .. } => (*issued, 2, *seq, 0, 0, "", ""),
    }
}

// ---------------------------------------------------------------------------
// JSONL export
// ---------------------------------------------------------------------------

/// Renders the JSONL header line (without trailing newline).
pub fn jsonl_header() -> String {
    format!(
        "{{\"event\":\"header\",\"schema_version\":{},\"clock\":\"virtual-ns\"}}",
        TRACE_SCHEMA_VERSION
    )
}

/// Renders a point-marker line: all following event lines (until the next
/// marker) belong to the named experiment point.
pub fn jsonl_point(key: &str) -> String {
    format!("{{\"event\":\"point\",\"key\":\"{}\"}}", esc(key))
}

/// Renders one event line (without trailing newline). Field order is
/// fixed so traces are byte-comparable.
pub fn jsonl_event(e: &TraceEvent) -> String {
    match e {
        TraceEvent::FlashOp {
            op,
            cause,
            chip,
            channel,
            issued,
            start,
            done,
            retries,
        } => format!(
            "{{\"event\":\"flash\",\"op\":\"{}\",\"cause\":\"{}\",\"chip\":{},\
             \"channel\":{},\"issued\":{},\"start\":{},\"done\":{},\"retries\":{}}}",
            esc(op),
            esc(cause),
            chip,
            channel,
            issued,
            start,
            done,
            retries
        ),
        TraceEvent::Span {
            kind,
            label,
            level,
            id,
            start,
            end,
            pages_read,
            pages_written,
        } => format!(
            "{{\"event\":\"span\",\"kind\":\"{}\",\"label\":\"{}\",\"level\":{},\
             \"id\":{},\"start\":{},\"end\":{},\"pages_read\":{},\"pages_written\":{}}}",
            esc(kind),
            esc(label),
            level,
            id,
            start,
            end,
            pages_read,
            pages_written
        ),
        TraceEvent::Request {
            op,
            seq,
            issued,
            done,
            found,
            flash_reads,
            phases,
        } => format!(
            "{{\"event\":\"request\",\"op\":\"{}\",\"seq\":{},\"issued\":{},\
             \"done\":{},\"found\":{},\"flash_reads\":{},\"queue_wait\":{},\
             \"meta_read\":{},\"data_read\":{},\"log_read\":{},\"engine\":{}}}",
            esc(op),
            seq,
            issued,
            done,
            found,
            flash_reads,
            phases.queue_wait,
            phases.meta_read,
            phases.data_read,
            phases.log_read,
            phases.engine
        ),
    }
}

/// Renders a whole trace document — header line, then for each point a
/// marker line followed by its events — as JSONL.
pub fn write_jsonl(points: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = String::new();
    out.push_str(&jsonl_header());
    out.push('\n');
    for (key, events) in points {
        out.push_str(&jsonl_point(key));
        out.push('\n');
        for e in events {
            out.push_str(&jsonl_event(e));
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chrome trace-event (Perfetto) export
// ---------------------------------------------------------------------------

/// Formats virtual ns as the microsecond decimal Chrome's `ts`/`dur`
/// fields expect, without going through floats (exact, deterministic).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn chrome_push(out: &mut String, first: &mut bool, line: &str) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
    out.push_str(line);
}

/// Renders a trace as Chrome trace-event JSON, loadable in Perfetto or
/// `chrome://tracing`.
///
/// Track layout per experiment point (one Perfetto "process" per point):
/// tid 0 carries requests as async begin/end pairs, tid 1 carries engine
/// spans (flush/compaction/GC) as complete events, and tid `2 + chip`
/// carries that chip's flash ops, named by cause. Each engine span also
/// emits a flow arrow (`s`/`f`) to the first flash op it caused, so
/// Perfetto draws the interference visually.
pub fn write_chrome(points: &[(String, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for (pid, (key, events)) in points.iter().enumerate() {
        chrome_push(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid,
                esc(key)
            ),
        );
        for (tid, name) in [(0u64, "requests"), (1, "engine")] {
            chrome_push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    pid, tid, name
                ),
            );
        }
        let mut chips: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FlashOp { chip, .. } => Some(*chip),
                _ => None,
            })
            .collect();
        chips.sort_unstable();
        chips.dedup();
        for chip in &chips {
            chrome_push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"chip {}\"}}}}",
                    pid,
                    2 + u64::from(*chip),
                    chip
                ),
            );
        }
        for e in events {
            match e {
                TraceEvent::FlashOp {
                    op,
                    cause,
                    chip,
                    channel,
                    issued,
                    start,
                    done,
                    retries,
                } => chrome_push(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"{}\",\"cat\":\"flash\",\"ph\":\"X\",\"pid\":{},\
                         \"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"op\":\"{}\",\
                         \"channel\":{},\"stall_ns\":{},\"retries\":{}}}}}",
                        esc(cause),
                        pid,
                        2 + u64::from(*chip),
                        us(*start),
                        us(done.saturating_sub(*start)),
                        esc(op),
                        channel,
                        start.saturating_sub(*issued),
                        retries
                    ),
                ),
                TraceEvent::Span {
                    kind,
                    label,
                    level,
                    id,
                    start,
                    end,
                    pages_read,
                    pages_written,
                } => {
                    chrome_push(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"{}:{}\",\"cat\":\"engine\",\"ph\":\"X\",\
                             \"pid\":{},\"tid\":1,\"ts\":{},\"dur\":{},\
                             \"args\":{{\"level\":{},\"pages_read\":{},\
                             \"pages_written\":{}}}}}",
                            esc(kind),
                            esc(label),
                            pid,
                            us(*start),
                            us(end.saturating_sub(*start)),
                            level,
                            pages_read,
                            pages_written
                        ),
                    );
                    // Flow arrow from the span to the first flash op it
                    // caused (matched by cause prefix inside the window).
                    let prefix = match kind.as_str() {
                        "gc" => "gc-",
                        "flush" => "log-",
                        _ => "compaction-",
                    };
                    let target = events.iter().find_map(|f| match f {
                        TraceEvent::FlashOp {
                            cause,
                            chip,
                            start: fs,
                            ..
                        } if cause.starts_with(prefix) && *fs >= *start && *fs < *end => {
                            Some((*chip, *fs))
                        }
                        _ => None,
                    });
                    if let Some((chip, fs)) = target {
                        chrome_push(
                            &mut out,
                            &mut first,
                            &format!(
                                "{{\"name\":\"{}\",\"cat\":\"bg-flow\",\"ph\":\"s\",\
                                 \"pid\":{},\"tid\":1,\"ts\":{},\"id\":{}}}",
                                esc(kind),
                                pid,
                                us(*start),
                                id
                            ),
                        );
                        chrome_push(
                            &mut out,
                            &mut first,
                            &format!(
                                "{{\"name\":\"{}\",\"cat\":\"bg-flow\",\"ph\":\"f\",\
                                 \"bp\":\"e\",\"pid\":{},\"tid\":{},\"ts\":{},\"id\":{}}}",
                                esc(kind),
                                pid,
                                2 + u64::from(chip),
                                us(fs),
                                id
                            ),
                        );
                    }
                }
                TraceEvent::Request {
                    op,
                    seq,
                    issued,
                    done,
                    found,
                    flash_reads,
                    phases,
                } => {
                    chrome_push(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"b\",\
                             \"pid\":{},\"tid\":0,\"ts\":{},\"id\":{}}}",
                            esc(op),
                            pid,
                            us(*issued),
                            seq
                        ),
                    );
                    chrome_push(
                        &mut out,
                        &mut first,
                        &format!(
                            "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"e\",\
                             \"pid\":{},\"tid\":0,\"ts\":{},\"id\":{},\
                             \"args\":{{\"found\":{},\"flash_reads\":{},\
                             \"queue_wait\":{},\"meta_read\":{},\"data_read\":{},\
                             \"log_read\":{},\"engine\":{}}}}}",
                            esc(op),
                            pid,
                            us(*done),
                            seq,
                            found,
                            flash_reads,
                            phases.queue_wait,
                            phases.meta_read,
                            phases.data_read,
                            phases.log_read,
                            phases.engine
                        ),
                    );
                }
            }
        }
    }
    out.push_str("\n]\n");
    out
}

// ---------------------------------------------------------------------------
// JSONL parsing
// ---------------------------------------------------------------------------

/// A trace parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// What went wrong.
    pub msg: String,
    /// 1-based line number in the JSONL document.
    pub line: usize,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.msg)
    }
}

/// A parsed trace document: schema version plus per-point event streams,
/// in document order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedTrace {
    /// Schema version from the header line.
    pub schema_version: u64,
    /// `(point key, events)` in document order.
    pub points: Vec<(String, Vec<TraceEvent>)>,
}

/// One scalar value inside a flat JSONL event line.
enum Scalar {
    Str(String),
    Num(u64),
    Bool(bool),
}

impl Scalar {
    fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<u64> {
        match self {
            Scalar::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object line into `(key, scalar)` pairs.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    let skip_ws = |pos: &mut usize| {
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
            *pos += 1;
        }
    };
    let eat = |pos: &mut usize, c: u8| -> Result<(), String> {
        skip_ws(pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    };
    let string = |pos: &mut usize| -> Result<String, String> {
        skip_ws(pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut s = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = bytes.get(*pos + 1..*pos + 5);
                            let code = hex
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match code {
                                Some(c) => {
                                    s.push(c);
                                    *pos += 4;
                                }
                                None => return Err("bad \\u escape".into()),
                            }
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(&c) if c < 0x80 => {
                    s.push(c as char);
                    *pos += 1;
                }
                Some(_) => {
                    // Multibyte UTF-8: find the char boundary via &str.
                    let rest = &line[*pos..];
                    match rest.chars().next() {
                        Some(c) => {
                            s.push(c);
                            *pos += c.len_utf8();
                        }
                        None => return Err("invalid utf-8".into()),
                    }
                }
            }
        }
    };
    eat(&mut pos, b'{')?;
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(out);
    }
    loop {
        let key = string(&mut pos)?;
        eat(&mut pos, b':')?;
        skip_ws(&mut pos);
        let val = match bytes.get(pos) {
            Some(b'"') => Scalar::Str(string(&mut pos)?),
            Some(b't') if bytes[pos..].starts_with(b"true") => {
                pos += 4;
                Scalar::Bool(true)
            }
            Some(b'f') if bytes[pos..].starts_with(b"false") => {
                pos += 5;
                Scalar::Bool(false)
            }
            Some(b) if b.is_ascii_digit() => {
                let start = pos;
                while bytes.get(pos).is_some_and(u8::is_ascii_digit) {
                    pos += 1;
                }
                let text = &line[start..pos];
                Scalar::Num(
                    text.parse::<u64>()
                        .map_err(|_| format!("bad number '{text}'"))?,
                )
            }
            _ => return Err(format!("expected value at byte {pos}")),
        };
        out.push((key, val));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(out),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn field<'a>(fields: &'a [(String, Scalar)], name: &str) -> Option<&'a Scalar> {
    fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
}

fn str_field(fields: &[(String, Scalar)], name: &str) -> Result<String, String> {
    field(fields, name)
        .and_then(Scalar::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{name}'"))
}

fn num_field(fields: &[(String, Scalar)], name: &str) -> Result<u64, String> {
    field(fields, name)
        .and_then(Scalar::as_num)
        .ok_or_else(|| format!("missing numeric field '{name}'"))
}

fn u32_field(fields: &[(String, Scalar)], name: &str) -> Result<u32, String> {
    u32::try_from(num_field(fields, name)?).map_err(|_| format!("field '{name}' exceeds u32"))
}

/// Parses a JSONL trace document produced by [`write_jsonl`].
///
/// # Errors
///
/// Returns a [`TraceParseError`] on malformed lines, a missing or
/// incompatible header, or events appearing before the first point marker.
pub fn parse_jsonl(src: &str) -> Result<ParsedTrace, TraceParseError> {
    let mut out = ParsedTrace::default();
    let mut saw_header = false;
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields =
            parse_flat_object(line).map_err(|msg| TraceParseError { msg, line: lineno })?;
        let mk_err = |msg: String| TraceParseError { msg, line: lineno };
        let event = str_field(&fields, "event").map_err(mk_err)?;
        let mk_err = |msg: String| TraceParseError { msg, line: lineno };
        match event.as_str() {
            "header" => {
                out.schema_version = num_field(&fields, "schema_version").map_err(mk_err)?;
                if out.schema_version != TRACE_SCHEMA_VERSION {
                    return Err(TraceParseError {
                        msg: format!(
                            "unsupported trace schema {} (expected {})",
                            out.schema_version, TRACE_SCHEMA_VERSION
                        ),
                        line: lineno,
                    });
                }
                saw_header = true;
            }
            "point" => {
                let key = str_field(&fields, "key").map_err(mk_err)?;
                out.points.push((key, Vec::new()));
            }
            kind @ ("flash" | "span" | "request") => {
                if !saw_header {
                    return Err(TraceParseError {
                        msg: "event before header line".into(),
                        line: lineno,
                    });
                }
                let ev = match kind {
                    "flash" => TraceEvent::FlashOp {
                        op: str_field(&fields, "op").map_err(mk_err)?,
                        cause: str_field(&fields, "cause").map_err(mk_err)?,
                        chip: u32_field(&fields, "chip").map_err(mk_err)?,
                        channel: u32_field(&fields, "channel").map_err(mk_err)?,
                        issued: num_field(&fields, "issued").map_err(mk_err)?,
                        start: num_field(&fields, "start").map_err(mk_err)?,
                        done: num_field(&fields, "done").map_err(mk_err)?,
                        retries: u32_field(&fields, "retries").map_err(mk_err)?,
                    },
                    "span" => TraceEvent::Span {
                        kind: str_field(&fields, "kind").map_err(mk_err)?,
                        label: str_field(&fields, "label").map_err(mk_err)?,
                        level: u32_field(&fields, "level").map_err(mk_err)?,
                        id: num_field(&fields, "id").map_err(mk_err)?,
                        start: num_field(&fields, "start").map_err(mk_err)?,
                        end: num_field(&fields, "end").map_err(mk_err)?,
                        pages_read: num_field(&fields, "pages_read").map_err(mk_err)?,
                        pages_written: num_field(&fields, "pages_written").map_err(mk_err)?,
                    },
                    _ => TraceEvent::Request {
                        op: str_field(&fields, "op").map_err(mk_err)?,
                        seq: num_field(&fields, "seq").map_err(mk_err)?,
                        issued: num_field(&fields, "issued").map_err(mk_err)?,
                        done: num_field(&fields, "done").map_err(mk_err)?,
                        found: field(&fields, "found")
                            .and_then(Scalar::as_bool)
                            .ok_or_else(|| mk_err("missing bool field 'found'".into()))?,
                        flash_reads: u32_field(&fields, "flash_reads").map_err(mk_err)?,
                        phases: PhaseBreakdown {
                            queue_wait: num_field(&fields, "queue_wait").map_err(mk_err)?,
                            meta_read: num_field(&fields, "meta_read").map_err(mk_err)?,
                            data_read: num_field(&fields, "data_read").map_err(mk_err)?,
                            log_read: num_field(&fields, "log_read").map_err(mk_err)?,
                            engine: num_field(&fields, "engine").map_err(mk_err)?,
                        },
                    },
                };
                match out.points.last_mut() {
                    Some((_, events)) => events.push(ev),
                    None => {
                        return Err(TraceParseError {
                            msg: "event before first point marker".into(),
                            line: lineno,
                        })
                    }
                }
            }
            other => {
                return Err(TraceParseError {
                    msg: format!("unknown event kind '{other}'"),
                    line: lineno,
                })
            }
        }
    }
    if !saw_header {
        return Err(TraceParseError {
            msg: "missing header line".into(),
            line: 0,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Analysis (`xtask trace`)
// ---------------------------------------------------------------------------

/// Per-cause interference totals over a trace's flash ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CauseTotal {
    /// Cause tag (`host-read`, `compaction-write`, ...).
    pub cause: String,
    /// Number of flash ops with this cause.
    pub ops: u64,
    /// Total chip-busy time (`done − start`) in virtual ns.
    pub busy_ns: u64,
    /// Total queueing stall (`start − issued`) in virtual ns.
    pub stall_ns: u64,
}

/// One of the longest flash queueing stalls in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallWindow {
    /// Stall length (`start − issued`) in virtual ns.
    pub stall_ns: u64,
    /// Cause tag of the stalled op.
    pub cause: String,
    /// Chip the op eventually ran on.
    pub chip: u32,
    /// Virtual ns the op was issued.
    pub issued: u64,
    /// Key of the experiment point the op belongs to.
    pub point: String,
}

/// Summary statistics extracted from a parsed trace.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalysis {
    /// Schema version of the analyzed document.
    pub schema_version: u64,
    /// Number of experiment points in the trace.
    pub points: usize,
    /// Total flash-op events.
    pub flash_ops: u64,
    /// Total engine span events.
    pub spans: u64,
    /// Total request events.
    pub requests: u64,
    /// Per-phase latency histograms over all request events.
    pub phases: PhaseHists,
    /// The top-K longest flash stall windows, longest first.
    pub stalls: Vec<StallWindow>,
    /// Per-cause totals, sorted by busy time descending.
    pub causes: Vec<CauseTotal>,
}

/// Analyzes a parsed trace: per-phase latency distributions, the `top_k`
/// longest flash stall windows, and per-cause interference totals.
pub fn analyze(trace: &ParsedTrace, top_k: usize) -> TraceAnalysis {
    let mut a = TraceAnalysis {
        schema_version: trace.schema_version,
        points: trace.points.len(),
        ..TraceAnalysis::default()
    };
    let mut causes: Vec<CauseTotal> = Vec::new();
    let mut stalls: Vec<StallWindow> = Vec::new();
    for (key, events) in &trace.points {
        for e in events {
            match e {
                TraceEvent::FlashOp {
                    cause,
                    chip,
                    issued,
                    start,
                    done,
                    ..
                } => {
                    a.flash_ops += 1;
                    let busy = done.saturating_sub(*start);
                    let stall = start.saturating_sub(*issued);
                    match causes.iter_mut().find(|c| c.cause == *cause) {
                        Some(c) => {
                            c.ops += 1;
                            c.busy_ns = c.busy_ns.saturating_add(busy);
                            c.stall_ns = c.stall_ns.saturating_add(stall);
                        }
                        None => causes.push(CauseTotal {
                            cause: cause.clone(),
                            ops: 1,
                            busy_ns: busy,
                            stall_ns: stall,
                        }),
                    }
                    if stall > 0 {
                        stalls.push(StallWindow {
                            stall_ns: stall,
                            cause: cause.clone(),
                            chip: *chip,
                            issued: *issued,
                            point: key.clone(),
                        });
                    }
                }
                TraceEvent::Span { .. } => a.spans += 1,
                TraceEvent::Request { phases, .. } => {
                    a.requests += 1;
                    a.phases.record(phases);
                }
            }
        }
    }
    // Longest first; ties broken deterministically by (issued, chip).
    stalls.sort_by(|x, y| {
        y.stall_ns
            .cmp(&x.stall_ns)
            .then(x.issued.cmp(&y.issued))
            .then(x.chip.cmp(&y.chip))
    });
    stalls.truncate(top_k);
    causes.sort_by(|x, y| y.busy_ns.cmp(&x.busy_ns).then(x.cause.cmp(&y.cause)));
    a.stalls = stalls;
    a.causes = causes;
    a
}

impl fmt::Display for TraceAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} point(s), {} flash ops, {} spans, {} requests (schema v{})",
            self.points, self.flash_ops, self.spans, self.requests, self.schema_version
        )?;
        writeln!(f)?;
        writeln!(f, "per-request phase latency (virtual ns):")?;
        writeln!(
            f,
            "  {:<12} {:>12} {:>12} {:>12} {:>16}",
            "phase", "p50", "p99", "p999", "total"
        )?;
        for (name, hist) in self.phases.named() {
            writeln!(
                f,
                "  {:<12} {:>12} {:>12} {:>12} {:>16}",
                name,
                hist.p50(),
                hist.p99(),
                hist.p999(),
                hist.total()
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "top {} flash stall windows (dispatch − issue):",
            self.stalls.len()
        )?;
        writeln!(
            f,
            "  {:>12} {:<18} {:>5} {:>14}  {}",
            "stall_ns", "cause", "chip", "issued_ns", "point"
        )?;
        for s in &self.stalls {
            writeln!(
                f,
                "  {:>12} {:<18} {:>5} {:>14}  {}",
                s.stall_ns, s.cause, s.chip, s.issued, s.point
            )?;
        }
        writeln!(f)?;
        writeln!(f, "per-cause interference totals:")?;
        writeln!(
            f,
            "  {:<18} {:>10} {:>16} {:>16}",
            "cause", "ops", "busy_ns", "stall_ns"
        )?;
        for c in &self.causes {
            writeln!(
                f,
                "  {:<18} {:>10} {:>16} {:>16}",
                c.cause, c.ops, c.busy_ns, c.stall_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::FlashOp {
                op: "read".into(),
                cause: "host-read".into(),
                chip: 3,
                channel: 1,
                issued: 100,
                start: 150,
                done: 250,
                retries: 0,
            },
            TraceEvent::Span {
                kind: "compaction".into(),
                label: "keep".into(),
                level: 1,
                id: 7,
                start: 90,
                end: 900,
                pages_read: 12,
                pages_written: 8,
            },
            TraceEvent::FlashOp {
                op: "program".into(),
                cause: "compaction-write".into(),
                chip: 0,
                channel: 0,
                issued: 200,
                start: 400,
                done: 700,
                retries: 1,
            },
            TraceEvent::Request {
                op: "get".into(),
                seq: 0,
                issued: 100,
                done: 260,
                found: true,
                flash_reads: 1,
                phases: PhaseBreakdown {
                    queue_wait: 50,
                    meta_read: 0,
                    data_read: 100,
                    log_read: 0,
                    engine: 10,
                },
            },
        ]
    }

    #[test]
    fn phase_breakdown_residual_is_exact() {
        let mut pb = PhaseBreakdown {
            meta_read: 10,
            data_read: 20,
            log_read: 5,
            engine: 3,
            ..PhaseBreakdown::default()
        };
        pb.finish(100);
        assert_eq!(pb.queue_wait, 62);
        assert_eq!(pb.total(), 100);
        // Attribution overshooting latency clamps to zero instead of
        // wrapping.
        let mut pb2 = PhaseBreakdown {
            engine: 10,
            ..PhaseBreakdown::default()
        };
        pb2.finish(5);
        assert_eq!(pb2.queue_wait, 0);
    }

    #[test]
    fn jsonl_roundtrips() {
        let doc = write_jsonl(&[("fig10/Zippy/AnyKey+".to_string(), sample_events())]);
        let parsed = parse_jsonl(&doc).unwrap();
        assert_eq!(parsed.schema_version, TRACE_SCHEMA_VERSION);
        assert_eq!(parsed.points.len(), 1);
        assert_eq!(parsed.points[0].0, "fig10/Zippy/AnyKey+");
        assert_eq!(parsed.points[0].1, sample_events());
        // Re-serializing the parse gives the same bytes.
        assert_eq!(write_jsonl(&parsed.points), doc);
    }

    #[test]
    fn jsonl_escapes_point_keys() {
        let doc = write_jsonl(&[("we\"ird\nkey".to_string(), Vec::new())]);
        let parsed = parse_jsonl(&doc).unwrap();
        assert_eq!(parsed.points[0].0, "we\"ird\nkey");
    }

    #[test]
    fn parse_rejects_missing_header() {
        let err = parse_jsonl("{\"event\":\"point\",\"key\":\"x\"}\n").unwrap_err();
        assert!(err.msg.contains("header"), "{err}");
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let doc = "{\"event\":\"header\",\"schema_version\":99}\n";
        let err = parse_jsonl(doc).unwrap_err();
        assert!(err.msg.contains("unsupported"), "{err}");
    }

    #[test]
    fn parse_rejects_event_outside_point() {
        let doc = format!("{}\n{}\n", jsonl_header(), jsonl_event(&sample_events()[0]));
        let err = parse_jsonl(&doc).unwrap_err();
        assert!(err.msg.contains("point marker"), "{err}");
    }

    #[test]
    fn analysis_totals_and_stalls() {
        let trace = ParsedTrace {
            schema_version: TRACE_SCHEMA_VERSION,
            points: vec![("p".to_string(), sample_events())],
        };
        let a = analyze(&trace, 10);
        assert_eq!(a.flash_ops, 2);
        assert_eq!(a.spans, 1);
        assert_eq!(a.requests, 1);
        // Longest stall first: compaction-write waited 200 ns, host-read 50.
        assert_eq!(a.stalls.len(), 2);
        assert_eq!(a.stalls[0].cause, "compaction-write");
        assert_eq!(a.stalls[0].stall_ns, 200);
        assert_eq!(a.stalls[1].stall_ns, 50);
        // Causes sorted by busy time: compaction-write 300 > host-read 100.
        assert_eq!(a.causes[0].cause, "compaction-write");
        assert_eq!(a.causes[0].busy_ns, 300);
        assert_eq!(a.causes[1].cause, "host-read");
        assert_eq!(a.causes[1].stall_ns, 50);
        // Phase hists saw the one request.
        assert_eq!(a.phases.data_read.count(), 1);
        assert_eq!(a.phases.data_read.total(), 100);
        // Report renders without panicking and mentions the cause.
        let text = a.to_string();
        assert!(text.contains("compaction-write"));
        assert!(text.contains("queue-wait"));
    }

    #[test]
    fn top_k_truncates() {
        let trace = ParsedTrace {
            schema_version: TRACE_SCHEMA_VERSION,
            points: vec![("p".to_string(), sample_events())],
        };
        let a = analyze(&trace, 1);
        assert_eq!(a.stalls.len(), 1);
        assert_eq!(a.stalls[0].stall_ns, 200);
    }

    #[test]
    fn chrome_export_has_tracks_and_flows() {
        let doc = write_chrome(&[("p0".to_string(), sample_events())]);
        // Chip tracks are announced as thread_name metadata.
        assert!(doc.contains("\"name\":\"chip 3\""));
        assert!(doc.contains("\"name\":\"chip 0\""));
        // The compaction span links to its compaction-write op.
        assert!(doc.contains("\"ph\":\"s\""));
        assert!(doc.contains("\"ph\":\"f\""));
        // Request async pair present.
        assert!(doc.contains("\"ph\":\"b\""));
        assert!(doc.contains("\"ph\":\"e\""));
        // Microsecond timestamps keep sub-us precision as decimals.
        assert!(doc.contains("\"ts\":0.150"));
        // Valid JSON array bracketing (cheap sanity, not a JSON parser).
        assert!(doc.starts_with("[\n"));
        assert!(doc.trim_end().ends_with(']'));
    }

    #[test]
    fn sort_events_is_stable_by_timestamp() {
        let mut evs = sample_events();
        sort_events(&mut evs);
        let ts: Vec<u64> = evs.iter().map(TraceEvent::ts).collect();
        assert_eq!(ts, vec![90, 100, 100, 200]);
        // The two ts=100 events keep their original relative order
        // (flash op recorded before the request).
        assert!(matches!(evs[1], TraceEvent::FlashOp { .. }));
        assert!(matches!(evs[2], TraceEvent::Request { .. }));
    }
}
