//! ASCII tables and CSV output for the experiment harness.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The machine-readable run-summary schema (`summary.json`) lives in
/// [`crate::summary`]; re-exported here so report consumers find the whole
/// reporting surface in one place.
pub use crate::summary::{PointSummary, RunSummary, SCHEMA_VERSION};

/// A simple column-aligned ASCII table.
///
/// The benchmark harness prints one of these per paper table/figure, with
/// the same rows/series the paper reports.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Helper for accumulating long-form CSV series (e.g. CDF curves with one
/// row per point), where a [`Table`] per curve would be unwieldy.
#[derive(Debug, Clone)]
pub struct Csv {
    header: String,
    lines: Vec<String>,
}

impl Csv {
    /// A CSV accumulator with the given comma-joined header.
    pub fn new(header: &str) -> Self {
        Self {
            header: header.to_string(),
            lines: Vec::new(),
        }
    }

    /// Appends one pre-formatted row.
    pub fn push<S: Into<String>>(&mut self, line: S) {
        self.lines.push(line.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Writes the accumulated rows to a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        let mut body = self.header.clone();
        body.push('\n');
        for l in &self.lines {
            body.push_str(l);
            body.push('\n');
        }
        fs::write(path, body)
    }
}

/// Formats nanoseconds as a human-readable latency (µs below 10 ms, ms
/// above).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 10_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    }
}

/// Formats a parts-per-million rate for table cells (`0` stays `"0"`, so
/// the fault-free baseline row reads cleanly).
pub fn fmt_ppm(ppm: u32) -> String {
    if ppm == 0 {
        "0".to_string()
    } else {
        format!("{}ppm", fmt_count(ppm as u64))
    }
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["workload", "iops"]);
        t.row(["ZippyDB", "123"]).row(["W-PinK", "45678"]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("ZippyDB"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("demo", &["name", "note"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_roundtrip_to_file() {
        let dir = std::env::temp_dir().join("anykey-metrics-test");
        let path = dir.join("t.csv");
        let mut t = Table::new("demo", &["a"]);
        t.row(["1"]);
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a\n1\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_ns(1500), "1.5us");
        assert_eq!(fmt_ns(25_000_000), "25.00ms");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(42), "42");
        assert_eq!(fmt_ppm(0), "0");
        assert_eq!(fmt_ppm(2500), "2,500ppm");
    }

    #[test]
    fn csv_accumulator_writes_header_first() {
        let dir = std::env::temp_dir().join("anykey-metrics-test2");
        let path = dir.join("series.csv");
        let mut c = Csv::new("x,y");
        c.push("1,2");
        c.push("3,4");
        c.write(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x,y\n1,2\n3,4\n");
        std::fs::remove_dir_all(dir).ok();
    }
}
