//! Virtual-time telemetry timelines: periodic device-state samples, the
//! JSONL/CSV exporters, the parser, and the steady-state analyzer behind
//! `xtask timeline`.
//!
//! The paper's headline claims are *steady-state* claims — AnyKey's wins
//! over PinK materialize only once the tree, hash lists, and value log
//! reach equilibrium — and a single end-of-run summary cannot show whether
//! a measurement ever got there. A timeline is the missing axis: the
//! runner snapshots a [`StateSample`] at a configurable virtual-time
//! interval, capturing how level occupancy, the DRAM budget split, the
//! value-log garbage ratio, the free-block pool, and the cumulative
//! per-cause write/read amplification evolved over the measured phase.
//!
//! Every timestamp is virtual nanoseconds. Like the trace module, this
//! module must never touch the host clock (the `trace-no-wall-clock`
//! xtask lint covers any path containing `timeline` too), so captures are
//! byte-identical across runs, machines, and `--jobs` levels. Sampling is
//! pure observation: a run with sampling enabled produces bit-identical
//! reports, CSVs, and traces to one without.
//!
//! Two serializations share the sample model: line-oriented JSONL
//! (schema-versioned; per-level occupancy rides as companion `level`
//! lines) parsed back by [`parse_jsonl`], and a flat CSV of the scalar
//! fields for plotting. The analyzer ([`analyze`]) detects the burn-in →
//! steady-state transition with a sliding-window WAF-slope test, reports
//! convergence values, and flags compaction-storm and GC-debt windows.

use std::fmt;
use std::fmt::Write as _;

use crate::summary::esc;

/// Version stamp of the JSONL timeline schema. Bump on any field change so
/// `xtask timeline` can refuse files it does not understand.
pub const TIMELINE_SCHEMA_VERSION: u64 = 1;

/// Default sliding-window length (in samples) of the steady-state
/// detector.
pub const DEFAULT_STEADY_WINDOW: usize = 8;

/// Default relative WAF-slope tolerance of the steady-state detector: a
/// window is "flat" when the cumulative WAF moved less than this fraction
/// across it.
pub const DEFAULT_STEADY_TOL: f64 = 0.05;

/// One LSM level's occupancy inside a [`StateSample`].
///
/// `entries` counts the level's placement units — data segment groups for
/// AnyKey, meta segments for PinK. `phys_bytes` is the flash footprint of
/// those units; `meta_bytes` the level's DRAM-facing metadata (level-list
/// bytes for both engines).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelSample {
    /// Level index (0 = top).
    pub level: u32,
    /// Placement units in the level (groups / meta segments).
    pub entries: u64,
    /// Logical KV bytes the level references.
    pub kv_bytes: u64,
    /// Physical flash bytes the level's units occupy.
    pub phys_bytes: u64,
    /// Level-list metadata bytes the level contributes.
    pub meta_bytes: u64,
}

/// One periodic snapshot of device state during a measured run.
///
/// The runner fills the identity, interval, and cumulative-traffic fields;
/// [`KvEngine::sample_state`](../../anykey_core/engine/trait.KvEngine.html)
/// fills the engine-state fields. All counters are cumulative since the
/// start of the measured phase (so they are monotone non-decreasing across
/// a point's samples); interval metrics cover only the span since the
/// previous sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateSample {
    /// Sample sequence number within the point (0 = phase start).
    pub seq: u64,
    /// Virtual ns of the snapshot.
    pub ts_ns: u64,
    /// Operations completed since the previous sample.
    pub interval_ops: u64,
    /// Operations per virtual second over the interval.
    pub interval_iops: f64,
    /// p99 GET latency over the interval (virtual ns).
    pub interval_read_p99_ns: u64,
    /// p99 PUT/DELETE latency over the interval (virtual ns).
    pub interval_write_p99_ns: u64,
    /// Cumulative flash page reads servicing host GETs/SCANs.
    pub host_reads: u64,
    /// Cumulative flash page programs of host data.
    pub host_writes: u64,
    /// Cumulative metadata flash reads.
    pub meta_reads: u64,
    /// Cumulative metadata flash programs.
    pub meta_writes: u64,
    /// Cumulative compaction flash reads.
    pub comp_reads: u64,
    /// Cumulative compaction flash programs.
    pub comp_writes: u64,
    /// Cumulative GC flash reads.
    pub gc_reads: u64,
    /// Cumulative GC flash programs.
    pub gc_writes: u64,
    /// Cumulative value-log flash reads.
    pub log_reads: u64,
    /// Cumulative value-log flash programs.
    pub log_writes: u64,
    /// Cumulative block erases.
    pub erases: u64,
    /// Cumulative write amplification: total flash programs ÷ minimal
    /// pages for the host bytes written so far (0 before the first write).
    pub cum_waf: f64,
    /// Cumulative read amplification: total flash reads ÷ host GETs so far
    /// (0 before the first read).
    pub cum_raf: f64,
    /// Configured DRAM capacity in bytes.
    pub dram_capacity: u64,
    /// DRAM bytes currently in use (write buffer + resident metadata).
    pub dram_used: u64,
    /// Level-list bytes across all levels.
    pub level_list_bytes: u64,
    /// Total AnyKey hash-list bytes (resident or not; 0 for PinK).
    pub hash_list_total_bytes: u64,
    /// Hash-list bytes currently DRAM-resident (0 for PinK).
    pub hash_list_resident_bytes: u64,
    /// PinK meta-segment bytes resident in DRAM (0 for AnyKey).
    pub meta_segment_dram_bytes: u64,
    /// PinK meta-segment bytes spilled to flash (0 for AnyKey).
    pub meta_segment_flash_bytes: u64,
    /// Total placement units across all levels (groups / meta segments).
    pub group_count: u64,
    /// Live value bytes parked in the value log (0 without a log).
    pub value_log_live_bytes: u64,
    /// Stale (superseded, not yet reclaimed) value-log bytes.
    pub value_log_stale_bytes: u64,
    /// Free erase blocks across the engine's regions — the headroom GC
    /// watches.
    pub free_blocks: u64,
    /// Minimum completed P/E cycles over all blocks.
    pub wear_min: u64,
    /// Maximum completed P/E cycles over all blocks.
    pub wear_max: u64,
    /// Total completed P/E cycles over all blocks.
    pub wear_total: u64,
    /// Per-level occupancy, top level first.
    pub levels: Vec<LevelSample>,
}

/// One point of the always-on cumulative-WAF curve the runner records
/// regardless of timeline export (it feeds the steady-state fields of
/// `summary.json`). Kept as raw integers so the WAF can be recomputed with
/// the same arithmetic the summary uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WafPoint {
    /// Virtual ns of the curve point.
    pub ts_ns: u64,
    /// Measured PUT/DELETE operations completed so far.
    pub write_ops: u64,
    /// Total flash page programs since the measured phase began.
    pub flash_writes: u64,
}

// ---------------------------------------------------------------------------
// JSONL export
// ---------------------------------------------------------------------------

/// Renders the JSONL header line (without trailing newline).
pub fn jsonl_header() -> String {
    format!(
        "{{\"event\":\"header\",\"schema_version\":{},\"clock\":\"virtual-ns\"}}",
        TIMELINE_SCHEMA_VERSION
    )
}

/// Renders a point-marker line: all following sample/level lines (until
/// the next marker) belong to the named experiment point.
pub fn jsonl_point(key: &str) -> String {
    format!("{{\"event\":\"point\",\"key\":\"{}\"}}", esc(key))
}

/// Renders one sample's scalar line (without trailing newline). Field
/// order is fixed so captures are byte-comparable; floats render with a
/// fixed six-decimal precision.
pub fn jsonl_sample(s: &StateSample) -> String {
    format!(
        "{{\"event\":\"sample\",\"seq\":{},\"ts\":{},\"interval_ops\":{},\
         \"interval_iops\":{:.6},\"interval_read_p99\":{},\"interval_write_p99\":{},\
         \"host_reads\":{},\"host_writes\":{},\"meta_reads\":{},\"meta_writes\":{},\
         \"comp_reads\":{},\"comp_writes\":{},\"gc_reads\":{},\"gc_writes\":{},\
         \"log_reads\":{},\"log_writes\":{},\"erases\":{},\"cum_waf\":{:.6},\
         \"cum_raf\":{:.6},\"dram_capacity\":{},\"dram_used\":{},\
         \"level_list_bytes\":{},\"hash_list_total_bytes\":{},\
         \"hash_list_resident_bytes\":{},\"meta_segment_dram_bytes\":{},\
         \"meta_segment_flash_bytes\":{},\"group_count\":{},\
         \"value_log_live_bytes\":{},\"value_log_stale_bytes\":{},\
         \"free_blocks\":{},\"wear_min\":{},\"wear_max\":{},\"wear_total\":{}}}",
        s.seq,
        s.ts_ns,
        s.interval_ops,
        s.interval_iops,
        s.interval_read_p99_ns,
        s.interval_write_p99_ns,
        s.host_reads,
        s.host_writes,
        s.meta_reads,
        s.meta_writes,
        s.comp_reads,
        s.comp_writes,
        s.gc_reads,
        s.gc_writes,
        s.log_reads,
        s.log_writes,
        s.erases,
        s.cum_waf,
        s.cum_raf,
        s.dram_capacity,
        s.dram_used,
        s.level_list_bytes,
        s.hash_list_total_bytes,
        s.hash_list_resident_bytes,
        s.meta_segment_dram_bytes,
        s.meta_segment_flash_bytes,
        s.group_count,
        s.value_log_live_bytes,
        s.value_log_stale_bytes,
        s.free_blocks,
        s.wear_min,
        s.wear_max,
        s.wear_total
    )
}

/// Renders one per-level companion line of a sample.
pub fn jsonl_level(seq: u64, l: &LevelSample) -> String {
    format!(
        "{{\"event\":\"level\",\"seq\":{},\"level\":{},\"entries\":{},\
         \"kv_bytes\":{},\"phys_bytes\":{},\"meta_bytes\":{}}}",
        seq, l.level, l.entries, l.kv_bytes, l.phys_bytes, l.meta_bytes
    )
}

/// Renders a whole timeline document — header line, then for each point a
/// marker line followed by its samples (each with its level lines) — as
/// JSONL.
pub fn write_jsonl(points: &[(String, Vec<StateSample>)]) -> String {
    let mut out = String::new();
    out.push_str(&jsonl_header());
    out.push('\n');
    for (key, samples) in points {
        out.push_str(&jsonl_point(key));
        out.push('\n');
        for s in samples {
            out.push_str(&jsonl_sample(s));
            out.push('\n');
            for l in &s.levels {
                out.push_str(&jsonl_level(s.seq, l));
                out.push('\n');
            }
        }
    }
    out
}

/// Column names of the CSV export, in order (per-level occupancy is
/// JSONL-only; the CSV stays flat for direct plotting).
pub const CSV_COLUMNS: [&str; 34] = [
    "point",
    "seq",
    "ts_ns",
    "interval_ops",
    "interval_iops",
    "interval_read_p99_ns",
    "interval_write_p99_ns",
    "host_reads",
    "host_writes",
    "meta_reads",
    "meta_writes",
    "comp_reads",
    "comp_writes",
    "gc_reads",
    "gc_writes",
    "log_reads",
    "log_writes",
    "erases",
    "cum_waf",
    "cum_raf",
    "dram_capacity",
    "dram_used",
    "level_list_bytes",
    "hash_list_total_bytes",
    "hash_list_resident_bytes",
    "meta_segment_dram_bytes",
    "meta_segment_flash_bytes",
    "group_count",
    "value_log_live_bytes",
    "value_log_stale_bytes",
    "free_blocks",
    "wear_min",
    "wear_max",
    "wear_total",
];

/// Renders a timeline as a flat CSV of the scalar sample fields, one row
/// per sample, point key in the first column.
pub fn write_csv(points: &[(String, Vec<StateSample>)]) -> String {
    let mut out = CSV_COLUMNS.join(",");
    out.push('\n');
    for (key, samples) in points {
        for s in samples {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},\
                 {},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                key,
                s.seq,
                s.ts_ns,
                s.interval_ops,
                s.interval_iops,
                s.interval_read_p99_ns,
                s.interval_write_p99_ns,
                s.host_reads,
                s.host_writes,
                s.meta_reads,
                s.meta_writes,
                s.comp_reads,
                s.comp_writes,
                s.gc_reads,
                s.gc_writes,
                s.log_reads,
                s.log_writes,
                s.erases,
                s.cum_waf,
                s.cum_raf,
                s.dram_capacity,
                s.dram_used,
                s.level_list_bytes,
                s.hash_list_total_bytes,
                s.hash_list_resident_bytes,
                s.meta_segment_dram_bytes,
                s.meta_segment_flash_bytes,
                s.group_count,
                s.value_log_live_bytes,
                s.value_log_stale_bytes,
                s.free_blocks,
                s.wear_min,
                s.wear_max,
                s.wear_total
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSONL parsing
// ---------------------------------------------------------------------------

/// A timeline parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineParseError {
    /// What went wrong.
    pub msg: String,
    /// 1-based line number in the JSONL document.
    pub line: usize,
}

impl fmt::Display for TimelineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timeline parse error at line {}: {}",
            self.line, self.msg
        )
    }
}

/// A parsed timeline document: schema version plus per-point sample
/// series, in document order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedTimeline {
    /// Schema version from the header line.
    pub schema_version: u64,
    /// `(point key, samples)` in document order.
    pub points: Vec<(String, Vec<StateSample>)>,
}

/// Parses one flat JSON object line into `(key, raw value token)` pairs.
/// Numbers stay raw text so integer and float fields convert exactly.
fn parse_flat(line: &str) -> Result<Vec<(String, String)>, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    let skip_ws = |pos: &mut usize| {
        while bytes.get(*pos).is_some_and(|b| b.is_ascii_whitespace()) {
            *pos += 1;
        }
    };
    let string = |pos: &mut usize| -> Result<String, String> {
        skip_ws(pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut s = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = bytes.get(*pos + 1..*pos + 5);
                            let code = hex
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match code {
                                Some(c) => {
                                    s.push(c);
                                    *pos += 4;
                                }
                                None => return Err("bad \\u escape".into()),
                            }
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(&c) if c < 0x80 => {
                    s.push(c as char);
                    *pos += 1;
                }
                Some(_) => match line[*pos..].chars().next() {
                    Some(c) => {
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err("invalid utf-8".into()),
                },
            }
        }
    };
    skip_ws(&mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err(format!("expected '{{' at byte {pos}"));
    }
    pos += 1;
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(out);
    }
    loop {
        let key = string(&mut pos)?;
        skip_ws(&mut pos);
        if bytes.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos += 1;
        skip_ws(&mut pos);
        let val = match bytes.get(pos) {
            Some(b'"') => format!("\"{}\"", string(&mut pos)?),
            Some(b) if b.is_ascii_digit() || *b == b'-' => {
                let start = pos;
                while bytes
                    .get(pos)
                    .is_some_and(|&b| b.is_ascii_digit() || b == b'.' || b == b'-')
                {
                    pos += 1;
                }
                line[start..pos].to_string()
            }
            Some(b't') if bytes[pos..].starts_with(b"true") => {
                pos += 4;
                "true".to_string()
            }
            Some(b'f') if bytes[pos..].starts_with(b"false") => {
                pos += 5;
                "false".to_string()
            }
            _ => return Err(format!("expected value at byte {pos}")),
        };
        out.push((key, val));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(out),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn raw<'a>(fields: &'a [(String, String)], name: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field '{name}'"))
}

fn u64_field(fields: &[(String, String)], name: &str) -> Result<u64, String> {
    raw(fields, name)?
        .parse::<u64>()
        .map_err(|_| format!("field '{name}' is not a u64"))
}

fn u32_field(fields: &[(String, String)], name: &str) -> Result<u32, String> {
    raw(fields, name)?
        .parse::<u32>()
        .map_err(|_| format!("field '{name}' is not a u32"))
}

fn f64_field(fields: &[(String, String)], name: &str) -> Result<f64, String> {
    raw(fields, name)?
        .parse::<f64>()
        .map_err(|_| format!("field '{name}' is not a number"))
}

fn str_field(fields: &[(String, String)], name: &str) -> Result<String, String> {
    let v = raw(fields, name)?;
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("field '{name}' is not a string"))
}

fn parse_sample(fields: &[(String, String)]) -> Result<StateSample, String> {
    Ok(StateSample {
        seq: u64_field(fields, "seq")?,
        ts_ns: u64_field(fields, "ts")?,
        interval_ops: u64_field(fields, "interval_ops")?,
        interval_iops: f64_field(fields, "interval_iops")?,
        interval_read_p99_ns: u64_field(fields, "interval_read_p99")?,
        interval_write_p99_ns: u64_field(fields, "interval_write_p99")?,
        host_reads: u64_field(fields, "host_reads")?,
        host_writes: u64_field(fields, "host_writes")?,
        meta_reads: u64_field(fields, "meta_reads")?,
        meta_writes: u64_field(fields, "meta_writes")?,
        comp_reads: u64_field(fields, "comp_reads")?,
        comp_writes: u64_field(fields, "comp_writes")?,
        gc_reads: u64_field(fields, "gc_reads")?,
        gc_writes: u64_field(fields, "gc_writes")?,
        log_reads: u64_field(fields, "log_reads")?,
        log_writes: u64_field(fields, "log_writes")?,
        erases: u64_field(fields, "erases")?,
        cum_waf: f64_field(fields, "cum_waf")?,
        cum_raf: f64_field(fields, "cum_raf")?,
        dram_capacity: u64_field(fields, "dram_capacity")?,
        dram_used: u64_field(fields, "dram_used")?,
        level_list_bytes: u64_field(fields, "level_list_bytes")?,
        hash_list_total_bytes: u64_field(fields, "hash_list_total_bytes")?,
        hash_list_resident_bytes: u64_field(fields, "hash_list_resident_bytes")?,
        meta_segment_dram_bytes: u64_field(fields, "meta_segment_dram_bytes")?,
        meta_segment_flash_bytes: u64_field(fields, "meta_segment_flash_bytes")?,
        group_count: u64_field(fields, "group_count")?,
        value_log_live_bytes: u64_field(fields, "value_log_live_bytes")?,
        value_log_stale_bytes: u64_field(fields, "value_log_stale_bytes")?,
        free_blocks: u64_field(fields, "free_blocks")?,
        wear_min: u64_field(fields, "wear_min")?,
        wear_max: u64_field(fields, "wear_max")?,
        wear_total: u64_field(fields, "wear_total")?,
        levels: Vec::new(),
    })
}

/// Parses a JSONL timeline document produced by [`write_jsonl`].
///
/// # Errors
///
/// Returns a [`TimelineParseError`] on malformed lines, a missing or
/// incompatible header, samples before the first point marker, or a
/// `level` line that does not follow its sample.
pub fn parse_jsonl(src: &str) -> Result<ParsedTimeline, TimelineParseError> {
    let mut out = ParsedTimeline::default();
    let mut saw_header = false;
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mk_err = |msg: String| TimelineParseError { msg, line: lineno };
        let fields = parse_flat(line).map_err(mk_err)?;
        let mk_err = |msg: String| TimelineParseError { msg, line: lineno };
        let event = str_field(&fields, "event").map_err(mk_err)?;
        let mk_err = |msg: String| TimelineParseError { msg, line: lineno };
        match event.as_str() {
            "header" => {
                out.schema_version = u64_field(&fields, "schema_version").map_err(mk_err)?;
                if out.schema_version != TIMELINE_SCHEMA_VERSION {
                    return Err(TimelineParseError {
                        msg: format!(
                            "unsupported timeline schema {} (expected {})",
                            out.schema_version, TIMELINE_SCHEMA_VERSION
                        ),
                        line: lineno,
                    });
                }
                saw_header = true;
            }
            "point" => {
                if !saw_header {
                    return Err(TimelineParseError {
                        msg: "point before header line".into(),
                        line: lineno,
                    });
                }
                let key = str_field(&fields, "key").map_err(mk_err)?;
                out.points.push((key, Vec::new()));
            }
            "sample" => {
                let s = parse_sample(&fields).map_err(mk_err)?;
                match out.points.last_mut() {
                    Some((_, samples)) => samples.push(s),
                    None => {
                        return Err(TimelineParseError {
                            msg: "sample before first point marker".into(),
                            line: lineno,
                        })
                    }
                }
            }
            "level" => {
                let seq = u64_field(&fields, "seq").map_err(mk_err)?;
                let l = LevelSample {
                    level: u32_field(&fields, "level").map_err(mk_err)?,
                    entries: u64_field(&fields, "entries").map_err(mk_err)?,
                    kv_bytes: u64_field(&fields, "kv_bytes").map_err(mk_err)?,
                    phys_bytes: u64_field(&fields, "phys_bytes").map_err(mk_err)?,
                    meta_bytes: u64_field(&fields, "meta_bytes").map_err(mk_err)?,
                };
                let sample = out
                    .points
                    .last_mut()
                    .and_then(|(_, samples)| samples.last_mut())
                    .filter(|s| s.seq == seq);
                match sample {
                    Some(s) => s.levels.push(l),
                    None => {
                        return Err(TimelineParseError {
                            msg: format!("level line for seq {seq} does not follow its sample"),
                            line: lineno,
                        })
                    }
                }
            }
            other => {
                return Err(TimelineParseError {
                    msg: format!("unknown event kind '{other}'"),
                    line: lineno,
                })
            }
        }
    }
    if !saw_header {
        return Err(TimelineParseError {
            msg: "missing header line".into(),
            line: 0,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Steady-state detection and analysis (`xtask timeline`)
// ---------------------------------------------------------------------------

/// The detected burn-in → steady-state transition of one WAF curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// Index of the first sample inside the steady-state window.
    pub start_idx: usize,
    /// Virtual ns of that sample — the burn-in horizon.
    pub start_ns: u64,
    /// Mean cumulative WAF over the steady-state window.
    pub converged_waf: f64,
}

/// Sliding-window WAF-slope steady-state detector.
///
/// A window of `window` consecutive samples is *flat* when the cumulative
/// WAF changed by less than `tol` (relative to its end value) across it.
/// The steady state begins at the earliest sample from which **every**
/// subsequent window is flat — a single late compaction storm therefore
/// pushes the burn-in horizon past itself, which is exactly the semantics
/// the paper's steady-state claims need. Returns `None` when the curve is
/// shorter than one window or never settles.
pub fn detect_steady_state(curve: &[(u64, f64)], window: usize, tol: f64) -> Option<SteadyState> {
    let window = window.max(2);
    let n = curve.len();
    if n < window {
        return None;
    }
    // Walk window starts from the end; the steady start is the first
    // sample of the longest all-flat suffix of windows.
    let mut start: Option<usize> = None;
    for i in (0..=n - window).rev() {
        let a = curve[i].1;
        let b = curve[i + window - 1].1;
        let rel = (b - a).abs() / b.abs().max(1e-12);
        if rel < tol {
            start = Some(i);
        } else {
            break;
        }
    }
    let start_idx = start?;
    let steady = &curve[start_idx..];
    let converged_waf = steady.iter().map(|(_, w)| w).sum::<f64>() / steady.len() as f64;
    Some(SteadyState {
        start_idx,
        start_ns: curve[start_idx].0,
        converged_waf,
    })
}

/// One window of consecutive samples where background (compaction + GC)
/// flash programs outweighed foreground programs — a compaction storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormWindow {
    /// Virtual ns of the first sample in the storm.
    pub start_ns: u64,
    /// Virtual ns of the last sample in the storm.
    pub end_ns: u64,
    /// Background (compaction + GC) programs over the window.
    pub bg_writes: u64,
    /// Foreground (host + log + meta) programs over the window.
    pub fg_writes: u64,
}

/// One window of consecutive samples where garbage accrued with no GC
/// progress: stale value-log bytes grew or the free-block pool shrank
/// while GC wrote nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DebtWindow {
    /// Virtual ns of the first sample in the window.
    pub start_ns: u64,
    /// Virtual ns of the last sample in the window.
    pub end_ns: u64,
    /// Stale value-log bytes accrued over the window.
    pub stale_growth: u64,
    /// Free blocks lost over the window.
    pub free_block_drop: u64,
}

/// Analysis of one experiment point's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PointTimeline {
    /// The point's key.
    pub key: String,
    /// Number of samples in the capture.
    pub samples: usize,
    /// Virtual-time span from first to last sample.
    pub span_ns: u64,
    /// Cumulative WAF at the final sample.
    pub final_waf: f64,
    /// Detected steady state, if the curve settled.
    pub steady: Option<SteadyState>,
    /// Compaction-storm windows, in time order.
    pub storms: Vec<StormWindow>,
    /// GC-debt windows, in time order.
    pub gc_debt: Vec<DebtWindow>,
}

/// Summary statistics extracted from a parsed timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineAnalysis {
    /// Schema version of the analyzed document.
    pub schema_version: u64,
    /// Detector window length used.
    pub window: usize,
    /// Detector relative tolerance used.
    pub tol: f64,
    /// Per-point analyses, in document order.
    pub points: Vec<PointTimeline>,
}

impl TimelineAnalysis {
    /// Whether every point with at least one detector window of samples
    /// reached a steady state — the `--assert-converged` CI gate.
    pub fn all_converged(&self) -> bool {
        self.points
            .iter()
            .filter(|p| p.samples >= self.window)
            .all(|p| p.steady.is_some())
    }
}

fn storms_of(samples: &[StateSample]) -> Vec<StormWindow> {
    let mut out: Vec<StormWindow> = Vec::new();
    let mut open = false;
    for w in samples.windows(2) {
        let (prev, cur) = (&w[0], &w[1]);
        let bg =
            (cur.comp_writes + cur.gc_writes).saturating_sub(prev.comp_writes + prev.gc_writes);
        let fg = (cur.host_writes + cur.log_writes + cur.meta_writes)
            .saturating_sub(prev.host_writes + prev.log_writes + prev.meta_writes);
        let stormy = bg > 0 && bg > 2 * fg;
        if stormy {
            if open {
                if let Some(last) = out.last_mut() {
                    last.end_ns = cur.ts_ns;
                    last.bg_writes += bg;
                    last.fg_writes += fg;
                }
            } else {
                out.push(StormWindow {
                    start_ns: prev.ts_ns,
                    end_ns: cur.ts_ns,
                    bg_writes: bg,
                    fg_writes: fg,
                });
            }
        }
        open = stormy;
    }
    out
}

fn debts_of(samples: &[StateSample]) -> Vec<DebtWindow> {
    let mut out: Vec<DebtWindow> = Vec::new();
    let mut open = false;
    for w in samples.windows(2) {
        let (prev, cur) = (&w[0], &w[1]);
        let gc_idle = cur.gc_writes == prev.gc_writes;
        let stale_growth = cur
            .value_log_stale_bytes
            .saturating_sub(prev.value_log_stale_bytes);
        let free_drop = prev.free_blocks.saturating_sub(cur.free_blocks);
        let indebted = gc_idle && (stale_growth > 0 || free_drop > 0);
        if indebted {
            if open {
                if let Some(last) = out.last_mut() {
                    last.end_ns = cur.ts_ns;
                    last.stale_growth += stale_growth;
                    last.free_block_drop += free_drop;
                }
            } else {
                out.push(DebtWindow {
                    start_ns: prev.ts_ns,
                    end_ns: cur.ts_ns,
                    stale_growth,
                    free_block_drop: free_drop,
                });
            }
        }
        open = indebted;
    }
    out
}

/// Analyzes a parsed timeline: per-point steady-state detection (sliding
/// WAF-slope window of `window` samples at relative tolerance `tol`),
/// convergence values, and compaction-storm / GC-debt windows.
pub fn analyze(t: &ParsedTimeline, window: usize, tol: f64) -> TimelineAnalysis {
    let mut a = TimelineAnalysis {
        schema_version: t.schema_version,
        window,
        tol,
        points: Vec::new(),
    };
    for (key, samples) in &t.points {
        // All reported times are relative to the point's first sample
        // (its measured-phase start), matching `burnin_ns` in
        // `summary.json` rather than the absolute virtual clock.
        let base = samples.first().map_or(0, |s| s.ts_ns);
        let curve: Vec<(u64, f64)> = samples
            .iter()
            .map(|s| (s.ts_ns.saturating_sub(base), s.cum_waf))
            .collect();
        let span_ns = samples.last().map_or(0, |l| l.ts_ns.saturating_sub(base));
        let rebase = |ns: u64| ns.saturating_sub(base);
        a.points.push(PointTimeline {
            key: key.clone(),
            samples: samples.len(),
            span_ns,
            final_waf: samples.last().map_or(0.0, |s| s.cum_waf),
            steady: detect_steady_state(&curve, window, tol),
            storms: storms_of(samples)
                .into_iter()
                .map(|s| StormWindow {
                    start_ns: rebase(s.start_ns),
                    end_ns: rebase(s.end_ns),
                    ..s
                })
                .collect(),
            gc_debt: debts_of(samples)
                .into_iter()
                .map(|d| DebtWindow {
                    start_ns: rebase(d.start_ns),
                    end_ns: rebase(d.end_ns),
                    ..d
                })
                .collect(),
        });
    }
    a
}

fn ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

impl fmt::Display for TimelineAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "timeline: {} point(s) (schema v{}, window {}, tol {:.0}%)",
            self.points.len(),
            self.schema_version,
            self.window,
            self.tol * 100.0
        )?;
        for p in &self.points {
            writeln!(f)?;
            writeln!(
                f,
                "point {} — {} samples over {} virtual ms",
                p.key,
                p.samples,
                ms(p.span_ns)
            )?;
            match &p.steady {
                Some(s) => {
                    writeln!(
                        f,
                        "  steady state from sample {} (burn-in horizon {} ms); \
                         converged WAF {:.3}, final WAF {:.3}",
                        s.start_idx,
                        ms(s.start_ns),
                        s.converged_waf,
                        p.final_waf
                    )?;
                }
                None => writeln!(
                    f,
                    "  NOT CONVERGED — final WAF {:.3} still moving (or too few samples)",
                    p.final_waf
                )?,
            }
            writeln!(
                f,
                "  compaction storms: {}   gc-debt windows: {}",
                p.storms.len(),
                p.gc_debt.len()
            )?;
            for s in &p.storms {
                writeln!(
                    f,
                    "    storm {} – {} ms: {} bg vs {} fg programs",
                    ms(s.start_ns),
                    ms(s.end_ns),
                    s.bg_writes,
                    s.fg_writes
                )?;
            }
            for d in &p.gc_debt {
                writeln!(
                    f,
                    "    debt  {} – {} ms: +{} stale bytes, −{} free blocks",
                    ms(d.start_ns),
                    ms(d.end_ns),
                    d.stale_growth,
                    d.free_block_drop
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, ts: u64, waf: f64) -> StateSample {
        StateSample {
            seq,
            ts_ns: ts,
            interval_ops: 100,
            interval_iops: 12345.5,
            interval_read_p99_ns: 900,
            interval_write_p99_ns: 950,
            host_reads: 10 * (seq + 1),
            host_writes: 5 * (seq + 1),
            comp_writes: 2 * seq,
            gc_writes: seq,
            erases: seq,
            cum_waf: waf,
            cum_raf: 1.25,
            dram_capacity: 1 << 16,
            dram_used: 1 << 14,
            level_list_bytes: 512,
            group_count: 4,
            value_log_live_bytes: 4096,
            value_log_stale_bytes: 128 * seq,
            free_blocks: 100 - seq,
            wear_max: 3,
            wear_total: 7,
            levels: vec![LevelSample {
                level: 0,
                entries: 4,
                kv_bytes: 1 << 14,
                phys_bytes: 1 << 15,
                meta_bytes: 512,
            }],
            ..StateSample::default()
        }
    }

    fn doc() -> Vec<(String, Vec<StateSample>)> {
        vec![(
            "fig10/ZippyDB/AnyKey+".to_string(),
            (0..4).map(|i| sample(i, i * 1_000_000, 2.5)).collect(),
        )]
    }

    #[test]
    fn jsonl_roundtrips_byte_identically() {
        let points = doc();
        let text = write_jsonl(&points);
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.schema_version, TIMELINE_SCHEMA_VERSION);
        assert_eq!(parsed.points, points);
        assert_eq!(write_jsonl(&parsed.points), text);
    }

    #[test]
    fn jsonl_escapes_point_keys() {
        let text = write_jsonl(&[("we\"ird\nkey".to_string(), Vec::new())]);
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed.points[0].0, "we\"ird\nkey");
    }

    #[test]
    fn parse_rejects_missing_header_and_wrong_schema() {
        let err = parse_jsonl("{\"event\":\"point\",\"key\":\"x\"}\n").unwrap_err();
        assert!(err.msg.contains("header"), "{err}");
        let err = parse_jsonl("{\"event\":\"header\",\"schema_version\":99}\n").unwrap_err();
        assert!(err.msg.contains("unsupported"), "{err}");
    }

    #[test]
    fn parse_rejects_orphan_sample_and_level() {
        let text = format!("{}\n{}\n", jsonl_header(), jsonl_sample(&sample(0, 0, 1.0)));
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.msg.contains("point marker"), "{err}");

        let text = format!(
            "{}\n{}\n{}\n",
            jsonl_header(),
            jsonl_point("p"),
            jsonl_level(3, &LevelSample::default())
        );
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.msg.contains("does not follow"), "{err}");
    }

    #[test]
    fn csv_has_header_and_one_row_per_sample() {
        let text = write_csv(&doc());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("point,seq,ts_ns,"));
        assert_eq!(lines[0].split(',').count(), CSV_COLUMNS.len());
        assert!(lines[1].starts_with("fig10/ZippyDB/AnyKey+,0,0,100,12345.500000,"));
    }

    #[test]
    fn steady_state_detects_burn_in_boundary() {
        // WAF climbs for 6 samples, then flattens at 3.0.
        let curve: Vec<(u64, f64)> = (0..20)
            .map(|i| {
                let waf = if i < 6 { 0.5 * i as f64 } else { 3.0 };
                (i * 10, waf)
            })
            .collect();
        let s = detect_steady_state(&curve, 4, 0.05).expect("converged");
        assert_eq!(s.start_idx, 6);
        assert_eq!(s.start_ns, 60);
        assert!((s.converged_waf - 3.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_rejects_unsettled_and_short_curves() {
        let rising: Vec<(u64, f64)> = (0..20).map(|i| (i, 1.0 + i as f64)).collect();
        assert_eq!(detect_steady_state(&rising, 4, 0.05), None);
        let short = [(0u64, 1.0), (1, 1.0)];
        assert_eq!(detect_steady_state(&short, 4, 0.05), None);
    }

    #[test]
    fn flat_zero_curve_is_steady_from_the_start() {
        let flat: Vec<(u64, f64)> = (0..10).map(|i| (i, 0.0)).collect();
        let s = detect_steady_state(&flat, 4, 0.05).expect("flat is steady");
        assert_eq!(s.start_idx, 0);
        assert_eq!(s.converged_waf, 0.0);
    }

    #[test]
    fn analysis_flags_storms_and_debt() {
        let mut samples: Vec<StateSample> = (0..6u64)
            .map(|i| StateSample {
                seq: i,
                ts_ns: i * 100,
                cum_waf: 2.0,
                host_writes: 10 * i,
                free_blocks: 50,
                ..StateSample::default()
            })
            .collect();
        // Samples 2→3: compaction burst with no host writes.
        samples[3].comp_writes = 500;
        samples[3].host_writes = samples[2].host_writes;
        for s in &mut samples[4..] {
            s.comp_writes = 500;
        }
        // Samples 4→5: stale bytes grow and free blocks drop with GC idle.
        samples[5].value_log_stale_bytes = 4096;
        samples[5].free_blocks = 40;

        let t = ParsedTimeline {
            schema_version: TIMELINE_SCHEMA_VERSION,
            points: vec![("p".to_string(), samples)],
        };
        let a = analyze(&t, 4, 0.05);
        assert_eq!(a.points.len(), 1);
        let p = &a.points[0];
        assert_eq!(p.storms.len(), 1);
        assert_eq!(p.storms[0].bg_writes, 500);
        assert_eq!(p.gc_debt.len(), 1);
        assert_eq!(p.gc_debt[0].stale_growth, 4096);
        assert_eq!(p.gc_debt[0].free_block_drop, 10);
        // Flat WAF converges; the report renders and mentions the verdict.
        assert!(p.steady.is_some());
        assert!(a.all_converged());
        let text = a.to_string();
        assert!(text.contains("steady state"));
        assert!(text.contains("storm"));
    }

    #[test]
    fn assert_converged_ignores_short_points_but_fails_unsettled_ones() {
        let short = ParsedTimeline {
            schema_version: TIMELINE_SCHEMA_VERSION,
            points: vec![("p".to_string(), vec![sample(0, 0, 1.0)])],
        };
        assert!(analyze(&short, 8, 0.05).all_converged());

        let rising: Vec<StateSample> = (0..16u64)
            .map(|i| StateSample {
                seq: i,
                ts_ns: i * 100,
                cum_waf: 1.0 + i as f64,
                ..StateSample::default()
            })
            .collect();
        let t = ParsedTimeline {
            schema_version: TIMELINE_SCHEMA_VERSION,
            points: vec![("p".to_string(), rising)],
        };
        let a = analyze(&t, 8, 0.05);
        assert!(!a.all_converged());
        assert!(a.to_string().contains("NOT CONVERGED"));
    }
}
