#!/usr/bin/env sh
# Tier-1 verification: everything here must pass offline, with no
# dependencies outside this repository. All scratch output lands under
# target/verify/ (covered by .gitignore's /target).
set -eu

cd "$(dirname "$0")/.."

VERIFY_DIR=target/verify
rm -rf "$VERIFY_DIR"
mkdir -p "$VERIFY_DIR"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> fault-injection determinism suite"
cargo test -q --test fault_determinism

echo "==> scheduler determinism suite"
cargo test -q --test scheduler_determinism

echo "==> trace determinism suite"
cargo test -q --test trace_determinism

echo "==> timeline determinism suite"
cargo test -q --test timeline_determinism

echo "==> bench smoke: fault sweep at --jobs 1 and --jobs 2 must agree"
cargo run -q --release -p anykey-bench -- fault --quick --jobs 1 \
    --out "$VERIFY_DIR/j1" --trace "$VERIFY_DIR/j1/trace.jsonl" \
    --timeline "$VERIFY_DIR/j1/timeline.jsonl"
cargo run -q --release -p anykey-bench -- fault --quick --jobs 2 \
    --out "$VERIFY_DIR/j2" --trace "$VERIFY_DIR/j2/trace.jsonl" \
    --timeline "$VERIFY_DIR/j2/timeline.jsonl"
cmp "$VERIFY_DIR/j1/fault.csv" "$VERIFY_DIR/j2/fault.csv"
cargo run -q --release -p xtask -- bench-diff \
    "$VERIFY_DIR/j1/summary.json" "$VERIFY_DIR/j2/summary.json"

echo "==> trace smoke: --jobs 1 and --jobs 2 traces must be byte-identical"
cmp "$VERIFY_DIR/j1/trace.jsonl" "$VERIFY_DIR/j2/trace.jsonl"
cargo run -q -p xtask -- trace "$VERIFY_DIR/j1/trace.jsonl" \
    > "$VERIFY_DIR/trace-report.txt"
head -n 5 "$VERIFY_DIR/trace-report.txt"

echo "==> timeline smoke: --jobs 1 and --jobs 2 timelines must be byte-identical"
cmp "$VERIFY_DIR/j1/timeline.jsonl" "$VERIFY_DIR/j2/timeline.jsonl"
cargo run -q -p xtask -- timeline "$VERIFY_DIR/j1/timeline.jsonl" \
    > "$VERIFY_DIR/timeline-report.txt"
head -n 5 "$VERIFY_DIR/timeline-report.txt"

echo "==> xtask lint"
cargo run -q -p xtask -- lint

echo "==> xtask lint --deps (hermeticity)"
cargo run -q -p xtask -- lint --deps

echo "verify: OK"
