#!/usr/bin/env sh
# Tier-1 verification: everything here must pass offline, with no
# dependencies outside this repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> fault-injection determinism suite"
cargo test -q --test fault_determinism

echo "==> scheduler determinism suite"
cargo test -q --test scheduler_determinism

echo "==> bench smoke: fault sweep at --jobs 1 and --jobs 2 must agree"
cargo run -q --release -p anykey-bench -- fault --quick --jobs 1 --out target/verify-results/j1
cargo run -q --release -p anykey-bench -- fault --quick --jobs 2 --out target/verify-results/j2
cmp target/verify-results/j1/fault.csv target/verify-results/j2/fault.csv
cargo run -q --release -p xtask -- bench-diff \
    target/verify-results/j1/summary.json target/verify-results/j2/summary.json

echo "==> xtask lint"
cargo run -q -p xtask -- lint

echo "==> xtask lint --deps (hermeticity)"
cargo run -q -p xtask -- lint --deps

echo "verify: OK"
