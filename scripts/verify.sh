#!/usr/bin/env sh
# Tier-1 verification: everything here must pass offline, with no
# dependencies outside this repository.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> fault-injection determinism suite"
cargo test -q --test fault_determinism

echo "==> fault bench smoke (tiny device)"
cargo run -q --release -p anykey-bench -- fault --quick --out target/verify-results

echo "==> xtask lint"
cargo run -q -p xtask -- lint

echo "==> xtask lint --deps (hermeticity)"
cargo run -q -p xtask -- lint --deps

echo "verify: OK"
