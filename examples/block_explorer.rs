//! A Bitcoin block-explorer index (the paper's Crypto1 workload:
//! BlockStream's store — 76-byte keys *larger than* its 50-byte values)
//! with both point lookups and range scans over adjacent chain entries.
//!
//! ```sh
//! cargo run --release --example block_explorer
//! ```

use anykey::core::{warm_up, DeviceConfig, EngineKind};
use anykey::metrics::report::fmt_ns;
use anykey::metrics::LatencyHist;
use anykey::workload::{spec, SplitMix64};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let crypto = spec::by_name("Crypto1").expect("Crypto1 is a Table 2 workload");
    let capacity: u64 = 64 << 20;
    let keyspace = capacity * 2 / 5 / crypto.pair_bytes();

    println!("block explorer index: {crypto}");
    println!("keys larger than values: the adversarial case for per-pair metadata\n");

    for kind in [EngineKind::Pink, EngineKind::AnyKeyPlus] {
        let cfg = DeviceConfig::builder()
            .capacity_bytes(capacity)
            .engine(kind)
            .key_len(crypto.key_len as u16)
            .build();
        let mut dev = cfg.build_engine();
        warm_up(dev.as_mut(), crypto, keyspace, 11)?;

        // Point lookups of random chain entries.
        let mut rng = SplitMix64::new(3);
        let mut gets = LatencyHist::new();
        for _ in 0..20_000 {
            let id = rng.next_bounded(keyspace);
            gets.record(dev.get(id).latency());
        }

        // Range scans: 50 consecutive entries (e.g. a block's transactions).
        let mut scans = LatencyHist::new();
        let mut scanned = 0usize;
        for _ in 0..500 {
            let start = rng.next_bounded(keyspace - 50);
            let at = dev.horizon();
            let (keys, outcome) = dev.scan_keys(start, 50, at);
            scanned += keys.len();
            scans.record(outcome.latency());
        }

        let meta = dev.metadata();
        println!("{}:", kind.label());
        println!(
            "  GET  p50 {:>9}  p95 {:>9}",
            fmt_ns(gets.p50()),
            fmt_ns(gets.p95())
        );
        println!(
            "  SCAN p50 {:>9}  p95 {:>9}  ({} entries returned)",
            fmt_ns(scans.p50()),
            fmt_ns(scans.p95()),
            scanned
        );
        println!(
            "  metadata wanting DRAM: {} KB (DRAM budget {} KB)\n",
            meta.metadata_bytes() >> 10,
            meta.dram_capacity >> 10
        );
    }
    Ok(())
}
