//! A two-tenant cache box (the paper's Section 6.9 scenario): one partition
//! serves a high-v/k tenant (W-PinK: 32 B keys, 1 KiB values), the other a
//! low-v/k tenant (ZippyDB: 48 B keys, 43 B values). Each partition is an
//! independent half-capacity device; we compare running both partitions on
//! PinK vs on AnyKey+.
//!
//! ```sh
//! cargo run --release --example cache_cluster
//! ```

use anykey::core::runner::DEFAULT_QUEUE_DEPTH;
use anykey::core::{run, warm_up, DeviceConfig, EngineKind};
use anykey::metrics::report::fmt_ns;
use anykey::workload::{spec, OpStreamBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity: u64 = 128 << 20;
    let half = capacity / 2;
    let tenants = [
        spec::by_name("W-PinK").expect("Table 2"),
        spec::by_name("ZippyDB").expect("Table 2"),
    ];

    println!(
        "two-tenant partitioned KV-SSD ({} MiB per partition)\n",
        half >> 20
    );
    println!(
        "{:>8} {:>9}  {:>10} {:>10}  {:>9}",
        "tenant", "system", "p95 read", "p99 read", "kIOPS"
    );

    for tenant in tenants {
        let mut p95 = [0u64; 2];
        for (i, kind) in [EngineKind::Pink, EngineKind::AnyKeyPlus]
            .into_iter()
            .enumerate()
        {
            let cfg = DeviceConfig::builder()
                .capacity_bytes(half)
                .engine(kind)
                .key_len(tenant.key_len as u16)
                .build();
            let mut dev = cfg.build_engine();
            let keyspace = half * 2 / 5 / tenant.pair_bytes();
            warm_up(dev.as_mut(), tenant, keyspace, 21)?;
            let ops = OpStreamBuilder::new(tenant, keyspace).seed(22).build();
            let n = (half / tenant.pair_bytes()).max(50_000);
            let report = run(dev.as_mut(), ops, n, DEFAULT_QUEUE_DEPTH)?;
            p95[i] = report.reads.p95();
            println!(
                "{:>8} {:>9}  {:>10} {:>10}  {:>9.1}",
                tenant.name,
                kind.label(),
                fmt_ns(report.reads.p95()),
                fmt_ns(report.reads.p99()),
                report.iops() / 1000.0
            );
        }
        println!(
            "{:>8} {:>9}  p95 improvement: {:.2}x\n",
            "",
            "",
            p95[0] as f64 / p95[1].max(1) as f64
        );
    }
    Ok(())
}
