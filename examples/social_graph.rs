//! A social-graph storage tier (the paper's UDB workload: Facebook's
//! storage layer for the social graph — 27-byte keys, 127-byte values, a
//! *low-v/k* workload) served by each of the three KV-SSD designs, with a
//! tail-latency report.
//!
//! ```sh
//! cargo run --release --example social_graph
//! ```

use anykey::core::runner::DEFAULT_QUEUE_DEPTH;
use anykey::core::{run, warm_up, DeviceConfig, EngineKind};
use anykey::metrics::report::fmt_ns;
use anykey::workload::{spec, OpStreamBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let udb = spec::by_name("UDB").expect("UDB is a Table 2 workload");
    let capacity: u64 = 64 << 20;
    let keyspace = capacity * 2 / 5 / udb.pair_bytes(); // ~40% fill

    println!("social-graph tier: {udb}");
    println!(
        "device 64 MiB, {} unique objects, Zipfian(0.99), 20% writes\n",
        keyspace
    );
    println!(
        "{:>8}  {:>10} {:>10} {:>10} {:>10} {:>9}",
        "system", "p50", "p95", "p99", "max", "kIOPS"
    );

    for kind in EngineKind::EVALUATED {
        let cfg = DeviceConfig::builder()
            .capacity_bytes(capacity)
            .engine(kind)
            .key_len(udb.key_len as u16)
            .build();
        let mut dev = cfg.build_engine();

        // Warm-up: load every object, then measure a steady-state mix.
        warm_up(dev.as_mut(), udb, keyspace, 7)?;
        let ops = OpStreamBuilder::new(udb, keyspace).seed(99).build();
        let report = run(dev.as_mut(), ops, 400_000, DEFAULT_QUEUE_DEPTH)?;

        println!(
            "{:>8}  {:>10} {:>10} {:>10} {:>10} {:>9.1}",
            kind.label(),
            fmt_ns(report.reads.p50()),
            fmt_ns(report.reads.p95()),
            fmt_ns(report.reads.p99()),
            fmt_ns(report.reads.max()),
            report.iops() / 1000.0,
        );
    }
    println!(
        "\nLow-v/k keys blow up PinK's per-pair metadata past DRAM; AnyKey's\n\
         group-granular level lists keep every lookup at <=2 flash reads."
    );
    Ok(())
}
