//! Quickstart: build an AnyKey device, insert, read, scan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use anykey::core::{DeviceConfig, EngineKind};
use anykey::metrics::report::fmt_ns;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64 MiB AnyKey+ device with the paper's geometry: 8 channels × 8
    // chips, 8 KiB pages, DRAM at 0.1 % of capacity.
    let cfg = DeviceConfig::builder()
        .capacity_bytes(64 << 20)
        .engine(EngineKind::AnyKeyPlus)
        .key_len(32)
        .build();
    let mut dev = cfg.build_engine();

    // Insert 50k keys with 100-byte values.
    for id in 0..50_000u64 {
        dev.put(id, 100)?;
    }

    // Point lookups. Outcomes carry virtual-time latency and the number of
    // flash reads on the critical path.
    let hit = dev.get(1_234);
    assert!(hit.found);
    println!(
        "GET k1234: found in {} with {} flash read(s)",
        fmt_ns(hit.latency()),
        hit.flash_reads
    );
    let miss = dev.get(999_999_999);
    assert!(!miss.found);
    println!(
        "GET absent key: correctly not found ({})",
        fmt_ns(miss.latency())
    );

    // Updates supersede, deletes tombstone.
    dev.put(42, 500)?;
    dev.delete(43)?;
    assert!(dev.get(42).found);
    assert!(!dev.get(43).found);

    // Range scan: 10 consecutive keys starting at 100 (43 was not deleted
    // in this range).
    let horizon = dev.horizon();
    let (keys, outcome) = dev.scan_keys(100, 10, horizon);
    println!(
        "SCAN 100..: {keys:?} in {} ({} flash reads)",
        fmt_ns(outcome.latency()),
        outcome.flash_reads
    );
    assert_eq!(keys, (100..110).collect::<Vec<u64>>());

    // Device introspection: metadata placement (the paper's Table 1 view).
    let m = dev.metadata();
    println!(
        "metadata: level lists {} B, hash lists {}/{} B resident, DRAM {}/{} B, {} levels",
        m.level_list_bytes,
        m.hash_list_resident_bytes,
        m.hash_list_total_bytes,
        m.dram_used,
        m.dram_capacity,
        m.levels
    );
    Ok(())
}
